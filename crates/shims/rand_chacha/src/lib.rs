//! # rand_chacha (offline shim)
//!
//! A self-contained implementation of the ChaCha stream cipher used as a
//! deterministic random number generator, exposing the [`ChaCha8Rng`] /
//! [`ChaCha20Rng`] names this workspace uses. The build environment has no
//! network access to crates.io, so the real crate cannot be vendored.
//!
//! The core is a faithful ChaCha block function (Bernstein 2008) with the
//! round count as a const generic; seeding follows `rand`'s
//! `seed_from_u64` convention of expanding the 64-bit state through
//! splitmix64 into the 256-bit key. The exact output stream is not
//! guaranteed to match the `rand_chacha` crate bit-for-bit (the workspace
//! only relies on determinism, which holds: same seed ⇒ same stream).

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ChaCha-based RNG with `R` double-rounds worth of mixing (`R = 4` gives
/// ChaCha8, `R = 10` gives ChaCha20).
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    /// Key (8 words), counter (2 words) and nonce (2 words) — the non-constant
    /// 12 words of the ChaCha input block.
    key: [u32; 8],
    counter: u64,
    nonce: [u32; 2],
    /// Buffered keystream block and the number of words already consumed.
    buffer: [u32; 16],
    consumed: usize,
}

/// ChaCha with 8 rounds — the generator every seeded component of the
/// workspace uses.
pub type ChaCha8Rng = ChaChaRng<4>;

/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;

/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    /// Builds a generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        ChaChaRng {
            key,
            counter: 0,
            nonce: [0, 0],
            buffer: [0; 16],
            consumed: 16, // force a refill on first use
        }
    }

    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.consumed = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.consumed >= 16 {
            self.refill();
        }
        let word = self.buffer[self.consumed];
        self.consumed += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = splitmix64(&mut sm);
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaChaRng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} of 64 matched");
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.02, "bit bias {frac}");
    }

    #[test]
    fn chacha20_also_works() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }
}
