//! # rand (offline shim)
//!
//! A minimal drop-in replacement for the parts of the `rand` 0.8 API this
//! workspace uses: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! `gen`/`gen_bool`/`gen_range`, and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). The build environment has no network access to crates.io, so
//! the real crate cannot be vendored.
//!
//! The shim is API-compatible but **not stream-compatible** with the real
//! `rand`: nothing in this workspace depends on the exact byte stream of a
//! given seed, only on determinism (same seed ⇒ same stream) and reasonable
//! statistical quality, both of which hold. The concrete generator lives in
//! the sibling `rand_chacha` shim.

/// Mirror of `rand::prelude`.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Low-level uniform random source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly "at standard" (rand's `Standard`
/// distribution): `rng.gen::<T>()`.
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that `gen_range` accepts; mirrors `rand::distributions::uniform::SampleRange<T>`.
///
/// Generic over the output type `T` (rather than using an associated type)
/// so that integer literals in ranges infer `T` from the call site, exactly
/// as with the real `rand` crate: `let n: usize = rng.gen_range(2..30);`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, span)` via Lemire's widening-multiply method.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // One widening multiply is unbiased enough for simulation workloads; the
    // rejection step removes the residual modulo bias entirely.
    let threshold = span.wrapping_neg() % span;
    loop {
        let wide = (rng.next_u64() as u128) * (span as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + sample_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Bit-level equivalent of `f64::next_down`, which is only stable since
/// Rust 1.86 (the workspace MSRV is older): the largest float strictly
/// below `x`, with NaN/-∞ passed through.
fn next_down(x: f64) -> f64 {
    if x.is_nan() || x == f64::NEG_INFINITY {
        return x;
    }
    if x == 0.0 {
        return -f64::from_bits(1);
    }
    let bits = x.to_bits();
    f64::from_bits(if x > 0.0 { bits - 1 } else { bits + 1 })
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        let x = self.start + u * (self.end - self.start);
        // `start + u * span` can round up to exactly `end` even though
        // u < 1; the range is half-open, so clamp just below the bound.
        if x >= self.end {
            next_down(self.end).max(self.start)
        } else {
            x
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Mirror of `rand::seq`.
pub mod seq {
    use crate::{Rng, RngCore};

    /// Random slice operations (`shuffle`, `choose`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// A tiny splitmix64 generator, enough to exercise the trait surface.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let x = rng.gen_range(2..30usize);
            assert!((2..30).contains(&x));
            let y = rng.gen_range(1.0..=2.0f64);
            assert!((1.0..=2.0).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_respects_emptiness() {
        let mut rng = SplitMix(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8, 8, 9];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }

    #[test]
    fn next_down_is_the_adjacent_float_below() {
        // (Spelled out rather than compared against `f64::next_down`, which
        // is stable only since 1.86 — newer than the workspace MSRV.)
        for x in [
            1.0,
            -1.0,
            1.5e308,
            -1.5e-308,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            std::f64::consts::PI,
        ] {
            let down = super::next_down(x);
            assert!(down < x, "next_down({x}) = {down} is not below");
            // Adjacent: nothing representable fits strictly in between.
            let mid = f64::from_bits(if down > 0.0 {
                down.to_bits() + 1
            } else {
                down.to_bits() - 1
            });
            assert!(mid >= x, "next_down({x}) skipped over {mid}");
        }
        // Both zeros step to the smallest negative subnormal.
        assert_eq!(super::next_down(0.0), -5e-324);
        assert_eq!(super::next_down(-0.0), -5e-324);
        // The edge cases pass through / saturate.
        assert_eq!(super::next_down(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(super::next_down(f64::INFINITY), f64::MAX);
        assert!(super::next_down(f64::NAN).is_nan());
    }
}
