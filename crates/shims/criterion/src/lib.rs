//! # criterion (offline shim)
//!
//! A minimal stand-in for the parts of the Criterion.rs benchmarking API the
//! workspace's `benches/` use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_with_input`, `Bencher::iter`). The build
//! environment has no network access to crates.io, so the real harness
//! cannot be vendored.
//!
//! Instead of statistical sampling it runs each benchmark for a small fixed
//! number of warm-up plus timed iterations and prints a one-line
//! median/min/max summary. That keeps `cargo bench` usable for coarse
//! regression spotting while the real dependency is unavailable; the API is
//! signature-compatible so swapping the real crate back needs only the root
//! manifest change.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a fixed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a closure taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (separator line only in the shim).
    pub fn finish(self) {
        println!();
    }
}

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value, e.g. `parallel/128`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over the configured number of iterations (after one
    /// warm-up call), recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut s = bencher.samples_ns;
    if s.is_empty() {
        println!("  {label:<40} (no samples)");
        return;
    }
    s.sort_unstable();
    let fmt = |ns: u128| -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else {
            format!("{:.3} µs", ns as f64 / 1e3)
        }
    };
    println!(
        "  {label:<40} median {:>12}   min {:>12}   max {:>12}   ({} iters)",
        fmt(s[s.len() / 2]),
        fmt(s[0]),
        fmt(*s.last().unwrap()),
        s.len()
    );
}

/// Mirror of `criterion::criterion_group!`: bundles benchmark functions into
/// one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generates `main` running the
/// given groups. Command-line arguments are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness flags (`--bench`, filters) passed by cargo.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_without_panicking() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
