//! # rayon (offline shim) — deterministic fork-join runtime
//!
//! A drop-in replacement for the parts of the `rayon` API this workspace
//! uses. The build environment has no network access to crates.io, so the
//! real work-stealing pool cannot be vendored; instead this crate implements
//! a real **multi-threaded** fork-join runtime on `std::thread::scope`:
//!
//! * parallel iterators (`par_iter` / `into_par_iter` / `par_chunks` /
//!   `par_chunks_mut` with `map`, `filter`, `filter_map`, `flat_map[_iter]`,
//!   `enumerate`, `zip`, `copied`, `cloned`, `take`, and the `collect`,
//!   `for_each`, `reduce`, `fold`, `count` consumers),
//! * parallel sorts (`par_sort`, `par_sort_by`, `par_sort_unstable[_by]`),
//! * `scope`/`spawn` and `join`,
//! * a [`ThreadPoolBuilder`] whose `num_threads` is **honored**:
//!   [`ThreadPool::install`] runs its closure with parallel operations
//!   fanning out over that many threads, and
//!   [`ThreadPoolBuilder::build_global`] sets the process-wide default
//!   (also settable via the `RAYON_NUM_THREADS` environment variable).
//!
//! ## Determinism guarantee
//!
//! Every data-parallel operation splits its input at **fixed chunk
//! boundaries** — a pure function of the input length (see
//! [`deterministic_chunk_len`]), never of the thread count — and combines
//! per-chunk results strictly left-to-right. Threads only decide *who*
//! executes a chunk. Results are therefore byte-identical at 1 thread and at
//! N threads, including floating-point reductions, whose value depends on
//! association order. Parallel sorts always produce the canonical *stable*
//! permutation (ties resolve to original order), so they too are independent
//! of the pool size. The `scope` task queue makes no ordering promises, as
//! under real rayon.
//!
//! Differences from real rayon worth knowing about: data-parallel regions
//! run on a process-wide set of persistent workers (spawned lazily, parked
//! on a condvar between regions) rather than a work-stealing deque pool,
//! while `scope` and `join` spawn scoped threads per call; nested parallel
//! calls inside a worker run inline instead of work-stealing; and
//! `into_par_iter()` is implemented for the owned sources the workspace
//! actually uses (`Range<usize>`, `Vec<T: Clone>`) rather than every
//! `IntoIterator`. Swapping the real `rayon` back in (via the root
//! `Cargo.toml`, once a registry is reachable) additionally requires a home
//! for [`deterministic_chunk_len`], which `parfaclo-matrixops` calls to
//! mirror the parallel combine structure sequentially — and it forfeits the
//! byte-identical-across-thread-counts guarantee, which real rayon's
//! thread-count-dependent splits do not provide, so the thread-invariance
//! tests would need to be relaxed to tolerance-based comparisons.

mod iter;
mod pool;
mod sort;
mod task;

pub use iter::{
    IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    ParallelSlice, ParallelSliceMut, Producer,
};
pub use pool::{
    current_num_threads, deterministic_chunk_len, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};
pub use task::{join, scope, Scope};

/// Re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Deterministic pseudo-random f64s (LCG) — varied enough to expose any
    /// chunking/order bug in reductions and sorts.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2000.0 - 1000.0
            })
            .collect()
    }

    fn pool(threads: usize) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
    }

    const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

    #[test]
    fn par_iter_chains_match_sequential() {
        let v: Vec<i64> = (0..5000).collect();
        let expected: Vec<i64> = v.iter().map(|&x| x * 2).filter(|x| x % 3 == 0).collect();
        for t in THREAD_COUNTS {
            let got: Vec<i64> = pool(t).install(|| {
                v.par_iter()
                    .map(|&x| x * 2)
                    .filter(|x| x % 3 == 0)
                    .collect()
            });
            assert_eq!(got, expected, "threads = {t}");
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_thread_counts() {
        let v = noise(50_000, 42);
        let reference: f64 = pool(1).install(|| v.par_iter().copied().reduce(|| 0.0, |a, b| a + b));
        for t in THREAD_COUNTS {
            let sum: f64 = pool(t).install(|| v.par_iter().copied().reduce(|| 0.0, |a, b| a + b));
            assert_eq!(sum.to_bits(), reference.to_bits(), "threads = {t}");
        }
        // And the sequential mirror: folding fixed chunks reproduces it.
        let chunk = deterministic_chunk_len(v.len(), 1);
        let mirrored = v.chunks(chunk).fold(0.0, |acc, c| {
            acc + c.iter().copied().fold(0.0, |a, b| a + b)
        });
        assert_eq!(mirrored.to_bits(), reference.to_bits());
    }

    #[test]
    fn reduce_with_identity_and_enumerate() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        for t in THREAD_COUNTS {
            pool(t).install(|| {
                let s = v.par_iter().copied().reduce(|| 0.0, |a, b| a + b);
                assert_eq!(s, 55.0);
                let max = v.par_iter().copied().enumerate().reduce(
                    || (usize::MAX, f64::NEG_INFINITY),
                    |a, b| if b.1 > a.1 { b } else { a },
                );
                assert_eq!(max, (9, 10.0));
            });
        }
    }

    #[test]
    fn fold_then_reduce_matches_reduce() {
        let v = noise(20_000, 7);
        let direct = pool(4).install(|| v.par_iter().copied().reduce(|| 0.0, |a, b| a + b));
        let folded = pool(4).install(|| {
            v.par_iter()
                .copied()
                .fold(|| 0.0, |acc, x| acc + x)
                .reduce(|| 0.0, |a, b| a + b)
        });
        assert_eq!(direct.to_bits(), folded.to_bits());
    }

    #[test]
    fn filter_map_flat_map_count_take_zip() {
        let v: Vec<u32> = (0..10_000).collect();
        let seq_fm: Vec<u32> = v
            .iter()
            .filter_map(|&x| if x % 7 == 0 { Some(x / 7) } else { None })
            .collect();
        let seq_flat: Vec<u32> = v.iter().flat_map(|&x| [x, x + 1]).collect();
        for t in THREAD_COUNTS {
            pool(t).install(|| {
                let fm: Vec<u32> = v
                    .par_iter()
                    .filter_map(|&x| if x % 7 == 0 { Some(x / 7) } else { None })
                    .collect();
                assert_eq!(fm, seq_fm);
                let flat: Vec<u32> = v.par_iter().flat_map_iter(|&x| [x, x + 1]).collect();
                assert_eq!(flat, seq_flat);
                assert_eq!(v.par_iter().filter(|&&x| x % 2 == 0).count(), 5000);
                let taken: Vec<u32> = v.par_iter().copied().take(17).collect();
                assert_eq!(taken, (0..17).collect::<Vec<u32>>());
                let zipped: Vec<u32> = v
                    .par_iter()
                    .zip(v[1..].par_iter())
                    .map(|(&a, &b)| a + b)
                    .collect();
                assert_eq!(zipped.len(), v.len() - 1);
                assert_eq!(zipped[0], 1);
                assert_eq!(zipped[9998], 9999 + 9998);
            });
        }
    }

    #[test]
    fn chunks_zip_for_each_mutates_disjointly() {
        let data: Vec<f64> = (0..10_000).map(|x| x as f64).collect();
        for t in THREAD_COUNTS {
            let mut out = vec![0.0f64; data.len()];
            pool(t).install(|| {
                out.par_chunks_mut(97)
                    .zip(data.par_chunks(97))
                    .for_each(|(o, i)| {
                        for (a, b) in o.iter_mut().zip(i) {
                            *a = *b + 1.0;
                        }
                    });
            });
            assert!(out.iter().enumerate().all(|(k, &x)| x == k as f64 + 1.0));
        }
    }

    #[test]
    fn par_iter_mut_touches_every_element_once() {
        let mut v = vec![0u64; 30_000];
        pool(4).install(|| v.par_iter_mut().for_each(|x| *x += 1));
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn sorts_match_std_stable_sort() {
        // Duplicate keys with distinct payloads expose stability violations.
        let base: Vec<(i64, usize)> = noise(30_000, 3)
            .into_iter()
            .enumerate()
            .map(|(i, x)| ((x as i64) % 50, i))
            .collect();
        let mut expected = base.clone();
        expected.sort_by_key(|a| a.0);
        for t in THREAD_COUNTS {
            let mut v = base.clone();
            pool(t).install(|| v.par_sort_by(|a, b| a.0.cmp(&b.0)));
            assert_eq!(v, expected, "stable sort, threads = {t}");
            let mut u = base.clone();
            pool(t).install(|| u.par_sort_unstable_by(|a, b| a.0.cmp(&b.0)));
            assert_eq!(u, expected, "unstable sort canonical, threads = {t}");
        }
        let mut w: Vec<i64> = base.iter().map(|p| p.0).collect();
        let mut w_expected = w.clone();
        w_expected.sort();
        pool(4).install(|| w.par_sort());
        assert_eq!(w, w_expected);
    }

    #[test]
    fn float_sort_matches_sequential() {
        let mut v = noise(20_000, 11);
        let mut expected = v.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pool(4).install(|| v.par_sort_by(|a, b| a.partial_cmp(b).unwrap()));
        assert_eq!(v, expected);
    }

    #[test]
    fn pool_honors_num_threads_and_really_runs_in_parallel() {
        for t in [1usize, 3, 8] {
            assert_eq!(pool(t).install(current_num_threads), t);
            assert_eq!(pool(t).current_num_threads(), t);
        }
        // With 4 requested threads and slow tasks, more than one OS thread
        // must participate.
        let seen = std::sync::Mutex::new(std::collections::HashSet::new());
        pool(4).install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                let begin = std::time::Instant::now();
                while begin.elapsed() < std::time::Duration::from_micros(500) {
                    std::hint::spin_loop();
                }
                seen.lock().unwrap().insert(std::thread::current().id());
            });
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected multiple worker threads to participate"
        );
    }

    #[test]
    fn nested_parallel_calls_run_inline_in_workers() {
        // A parallel region inside a parallel region must not explode the
        // thread count; inner calls see an effective thread count of 1.
        let inner_counts: Vec<usize> = pool(4).install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        assert!(inner_counts.iter().all(|&c| c == 1), "{inner_counts:?}");
    }

    #[test]
    fn install_restores_previous_thread_count() {
        let outer = current_num_threads();
        pool(3).install(|| {
            assert_eq!(current_num_threads(), 3);
            pool(5).install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn scope_runs_all_spawned_tasks_including_nested() {
        let hits = AtomicUsize::new(0);
        pool(4).install(|| {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|inner| {
                        hits.fetch_add(1, Ordering::Relaxed);
                        inner.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    });
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn join_returns_both_results() {
        for t in [1usize, 4] {
            let (a, b) = pool(t).install(|| join(|| 6 * 7, || "ok"));
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<f64> = Vec::new();
        pool(4).install(|| {
            let collected: Vec<f64> = empty.par_iter().copied().collect();
            assert!(collected.is_empty());
            assert_eq!(empty.par_iter().copied().reduce(|| 1.5, |a, b| a + b), 1.5);
            assert_eq!(empty.par_iter().count(), 0);
            let mut v: Vec<f64> = Vec::new();
            v.par_sort_by(|a, b| a.partial_cmp(b).unwrap());
        });
    }

    #[test]
    fn vec_into_par_iter_and_range() {
        let v = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = pool(4).install(|| v.into_par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let idx: Vec<usize> = pool(2).install(|| (10..15).into_par_iter().collect());
        assert_eq!(idx, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn deterministic_chunk_len_is_a_pure_function_of_len() {
        for len in [0usize, 1, 100, 2048, 1 << 20] {
            let a = deterministic_chunk_len(len, 1);
            let b = pool(1).install(|| deterministic_chunk_len(len, 1));
            let c = pool(16).install(|| deterministic_chunk_len(len, 1));
            assert_eq!(a, b);
            assert_eq!(a, c);
            assert!(a >= 1);
        }
        assert_eq!(deterministic_chunk_len(100, 64), 64);
    }
}
