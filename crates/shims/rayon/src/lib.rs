//! # rayon (offline shim)
//!
//! A minimal, **sequential** drop-in replacement for the parts of the `rayon`
//! API this workspace uses. The build environment has no network access to
//! crates.io, so the real work-stealing pool cannot be vendored; this shim
//! preserves the API surface (parallel iterators, `par_sort_*`, `scope`,
//! `ThreadPoolBuilder`) while executing everything on the calling thread.
//!
//! Correctness is unaffected by design: every algorithm in the workspace is
//! required to produce **identical results** under `ExecPolicy::Sequential`
//! and `ExecPolicy::Parallel` (the property tests assert it), so collapsing
//! the parallel path onto the sequential one changes wall-clock behaviour
//! only. Swapping the real `rayon` back in is a one-line change in the root
//! `Cargo.toml` once a registry is reachable.
//!
//! Implementation note: `into_par_iter()` and friends return a [`ParIter`]
//! wrapper that implements [`Iterator`] (so the whole std adapter surface
//! keeps working) and additionally provides *inherent* methods for the
//! adapters whose rayon signatures differ from std (`reduce` with an identity
//! closure, `flat_map_iter`, …). Inherent methods win method resolution, so
//! call sites written against real rayon compile unchanged.

use std::marker::PhantomData;

/// Re-exports mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// Sequential stand-in for rayon's parallel iterator.
///
/// Wraps any [`Iterator`]; the rayon-specific adapters are inherent methods
/// so they shadow the std ones where the signatures differ.
#[derive(Debug, Clone)]
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// Maps each element (rayon: `ParallelIterator::map`).
    #[inline]
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps elements matching the predicate.
    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Filter-and-map in one pass.
    #[inline]
    pub fn filter_map<B, F: FnMut(I::Item) -> Option<B>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each element to an iterator and flattens.
    #[inline]
    pub fn flat_map<B: IntoIterator, F: FnMut(I::Item) -> B>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, B, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// rayon's `flat_map_iter` (sequential flattening of per-element iterators).
    #[inline]
    pub fn flat_map_iter<B: IntoIterator, F: FnMut(I::Item) -> B>(
        self,
        f: F,
    ) -> ParIter<std::iter::FlatMap<I, B, F>> {
        ParIter(self.0.flat_map(f))
    }

    /// Pairs elements with their index.
    #[inline]
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another (parallel or plain) iterator.
    #[inline]
    pub fn zip<O: IntoIterator>(self, other: O) -> ParIter<std::iter::Zip<I, O::IntoIter>> {
        ParIter(self.0.zip(other))
    }

    /// Takes the first `n` elements.
    #[inline]
    pub fn take(self, n: usize) -> ParIter<std::iter::Take<I>> {
        ParIter(self.0.take(n))
    }

    /// Hint accepted for API compatibility; a no-op sequentially.
    #[inline]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Consumes the iterator, calling `f` on each element.
    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's `reduce`: folds with an identity-producing closure.
    ///
    /// Sequentially this is simply `fold(identity(), op)`.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Collects into any `FromIterator` collection.
    #[inline]
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

impl<'a, T: 'a + Copy, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copies referenced elements (rayon: `ParallelIterator::copied`).
    #[inline]
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

impl<'a, T: 'a + Clone, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Clones referenced elements (rayon: `ParallelIterator::cloned`).
    #[inline]
    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
        ParIter(self.0.cloned())
    }
}

/// Mirror of `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Converts `self` into a (sequentially executed) parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator {
    /// Iterates `&self` as a (sequentially executed) parallel iterator.
    fn par_iter<'a>(&'a self) -> ParIter<<&'a Self as IntoIterator>::IntoIter>
    where
        &'a Self: IntoIterator;
}

impl<T: ?Sized> IntoParallelRefIterator for T {
    fn par_iter<'a>(&'a self) -> ParIter<<&'a T as IntoIterator>::IntoIter>
    where
        &'a T: IntoIterator,
    {
        ParIter(self.into_iter())
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator {
    /// Iterates `&mut self` as a (sequentially executed) parallel iterator.
    fn par_iter_mut<'a>(&'a mut self) -> ParIter<<&'a mut Self as IntoIterator>::IntoIter>
    where
        &'a mut Self: IntoIterator;
}

impl<T: ?Sized> IntoParallelRefMutIterator for T {
    fn par_iter_mut<'a>(&'a mut self) -> ParIter<<&'a mut T as IntoIterator>::IntoIter>
    where
        &'a mut T: IntoIterator,
    {
        ParIter(self.into_iter())
    }
}

/// Mirror of `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Chunked view of the slice.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    /// Windowed view of the slice.
    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }

    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>> {
        ParIter(self.windows(window_size))
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Mutable chunked view of the slice.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Stable sort by comparator.
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    /// Unstable sort by comparator.
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    /// Stable natural-order sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Unstable natural-order sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }

    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_by(compare)
    }

    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare)
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort()
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
}

/// Number of threads the (virtual) pool runs on — always 1 in the shim.
pub fn current_num_threads() -> usize {
    1
}

/// Scoped task region; `spawn`ed closures run immediately on this thread.
pub struct Scope<'scope>(PhantomData<&'scope ()>);

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately (rayon runs it on the pool).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + 'scope,
    {
        body(self)
    }
}

/// Mirror of `rayon::scope`: creates a scope and runs `op` in it.
pub fn scope<'scope, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    op(&Scope(PhantomData))
}

/// Runs two closures (sequentially here; in parallel under real rayon).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`; thread count is recorded but
/// the shim always executes on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Records the requested thread count (informational only in the shim).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the (virtual) pool; infallible in practice.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// A virtual thread pool: `install` simply runs the closure on this thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool (directly, in the shim).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The nominal pool size requested at build time.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_chains_match_sequential() {
        let v: Vec<i64> = (0..100).collect();
        let a: Vec<i64> = v
            .par_iter()
            .map(|&x| x * 2)
            .filter(|x| x % 3 == 0)
            .collect();
        let b: Vec<i64> = v.iter().map(|&x| x * 2).filter(|x| x % 3 == 0).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_with_identity() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        let s = v.par_iter().copied().reduce(|| 0.0, |a, b| a + b);
        assert_eq!(s, 55.0);
        let max = v.par_iter().copied().enumerate().reduce(
            || (usize::MAX, f64::NEG_INFINITY),
            |a, b| if b.1 > a.1 { b } else { a },
        );
        assert_eq!(max, (9, 10.0));
    }

    #[test]
    fn chunks_zip_for_each() {
        let data = [1.0f64; 10];
        let mut out = [0.0f64; 10];
        out.par_chunks_mut(3)
            .zip(data.par_chunks(3))
            .for_each(|(o, i)| {
                for (a, b) in o.iter_mut().zip(i) {
                    *a = *b + 1.0;
                }
            });
        assert!(out.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn sorts_and_pool() {
        let mut v = vec![3.0, 1.0, 2.0];
        v.par_sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn scope_spawns_run() {
        let mut hits = 0;
        scope(|s| {
            s.spawn(|_| {});
            hits += 1;
        });
        assert_eq!(hits, 1);
    }
}
