//! The fork-join execution core: thread accounting, the persistent worker
//! pool, the chunked task driver, and the `ThreadPoolBuilder` / `ThreadPool`
//! surface.
//!
//! # Determinism contract
//!
//! Every data-parallel operation in this crate splits its input into chunks
//! whose boundaries are a **pure function of the input length** (see
//! [`deterministic_chunk_len`]) — never of the thread count. Threads only
//! decide *who executes* a chunk, not *what* the chunks are, and per-chunk
//! results are always combined left-to-right in chunk order. Consequently
//! every operation (including floating-point reductions, whose value depends
//! on association order) produces byte-identical results at 1 thread and at
//! N threads.
//!
//! # Execution model
//!
//! Worker threads are spawned lazily, kept parked on a condvar, and reused
//! across parallel regions (spawning OS threads per region costs tens of
//! microseconds, which dominates fine-grained primitives; waking a parked
//! worker costs a fraction of that). A region publishes a [`Job`] — a
//! lifetime-erased pointer to the task closure plus an atomic task counter —
//! to the shared queue; up to `threads - 1` workers attach to it and race
//! the submitting thread for task indices, and the submitter blocks on the
//! job's completion latch before returning, which is what makes the borrow
//! erasure sound: the closure cannot be dropped while any task is running.

use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Upper bound on the number of chunks a single parallel operation is split
/// into. Fixed (never derived from the thread count) so chunk boundaries —
/// and therefore reduction trees — are identical under any pool size.
const MAX_CHUNKS: usize = 128;

/// The fixed chunk length used for a data-parallel operation over `len`
/// items, with a minimum of `min_len` items per chunk.
///
/// This is exported so callers that need a *sequential* loop to reproduce the
/// parallel combine structure bit-for-bit (e.g. a policy-gated sequential
/// fallback of a floating-point reduction) can chunk the same way.
pub fn deterministic_chunk_len(len: usize, min_len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(min_len).max(1)
}

/// Process-wide thread-count override installed by
/// [`ThreadPoolBuilder::build_global`]; `0` means "not set".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] (and set to
    /// `1` inside pool workers so nested parallel calls run inline instead of
    /// spawning threads recursively); `0` means "no override".
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

pub(crate) fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Default pool size: the `RAYON_NUM_THREADS` environment variable if set to
/// a positive integer (read once), otherwise the hardware parallelism.
fn default_threads() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
    .unwrap_or_else(hardware_threads)
}

fn resolved_global() -> usize {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Number of threads parallel operations on this thread currently use:
/// the innermost [`ThreadPool::install`] override, else the global pool size.
pub fn current_num_threads() -> usize {
    match LOCAL_THREADS.with(Cell::get) {
        0 => resolved_global(),
        n => n,
    }
}

/// RAII guard that overrides the calling thread's effective thread count and
/// restores the previous value on drop (panic-safe).
pub(crate) struct ThreadCountGuard {
    prev: usize,
}

impl ThreadCountGuard {
    pub(crate) fn set(n: usize) -> Self {
        let prev = LOCAL_THREADS.with(|c| c.replace(n));
        ThreadCountGuard { prev }
    }
}

impl Drop for ThreadCountGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        LOCAL_THREADS.with(|c| c.set(prev));
    }
}

// ---------------------------------------------------------------------------
// The persistent worker pool
// ---------------------------------------------------------------------------

/// One parallel region: a type-erased task closure plus claim/completion
/// accounting. Lives behind an `Arc` in the shared queue so a worker can
/// never observe a dangling `Job`; only the closure pointer is borrowed from
/// the submitting stack frame, and it is dereferenced exclusively for task
/// indices `< n_tasks`, all of which complete before the submitter's
/// [`Job::wait_done`] returns.
struct Job {
    /// Pointer to the submitting frame's task closure.
    data: *const (),
    /// Monomorphized trampoline invoking `data` as the concrete closure type.
    ///
    /// # Safety
    /// Must only be called while the submitting frame is alive, i.e. for a
    /// task index claimed from `next` before `pending` reached zero.
    call: unsafe fn(*const (), usize),
    /// Next unclaimed task index (may overshoot `n_tasks`).
    next: AtomicUsize,
    /// Total number of task indices.
    n_tasks: usize,
    /// Tasks not yet finished; the transition to zero opens the latch.
    pending: AtomicUsize,
    /// Helper slots still available to pool workers (the submitter itself is
    /// not counted): enforces the region's `threads` budget even when more
    /// persistent workers exist from an earlier, larger pool.
    helper_slots: AtomicUsize,
    /// Completion latch.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First panic payload observed in a task, rethrown by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `data`/`call` are only dereferenced under the claim protocol
// documented on `Job`; all other fields are thread-safe primitives.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs task indices until none remain. Sound to call from
    /// any thread as long as the job was obtained from the queue (workers)
    /// or is the caller's own (submitter).
    fn help(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            // SAFETY: `i < n_tasks` was claimed exactly once, so the
            // submitter is still blocked on the latch and the closure is
            // alive; no other thread runs this index.
            let result =
                std::panic::catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, i) }));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().expect("latch poisoned");
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n_tasks
    }

    /// Takes a helper slot; `false` means the region's thread budget is full.
    fn try_attach(&self) -> bool {
        self.helper_slots
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |slots| {
                slots.checked_sub(1)
            })
            .is_ok()
    }

    fn wait_done(&self) {
        let mut done = self.done.lock().expect("latch poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("latch poisoned");
        }
    }
}

struct PoolState {
    /// Active (not yet exhausted) jobs, oldest first.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signalled on every job publication; parked workers re-scan the queue.
    work_cv: Condvar,
    /// Number of persistent workers ever spawned (a high-water mark of the
    /// `threads - 1` values requested so far).
    workers: AtomicUsize,
}

fn pool() -> &'static PoolState {
    static POOL: OnceLock<PoolState> = OnceLock::new();
    POOL.get_or_init(|| PoolState {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        workers: AtomicUsize::new(0),
    })
}

/// Spawns persistent workers until at least `want` exist. Workers are
/// detached and live for the process lifetime, parked on the queue condvar
/// when idle.
fn ensure_workers(want: usize) {
    let state = pool();
    loop {
        let have = state.workers.load(Ordering::Relaxed);
        if have >= want {
            return;
        }
        if state
            .workers
            .compare_exchange(have, have + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            std::thread::Builder::new()
                .name("parfaclo-pool-worker".to_string())
                .spawn(worker_loop)
                .expect("spawning a pool worker");
        }
    }
}

fn worker_loop() {
    // Workers run nested parallel calls inline — no recursive fan-out.
    let _inline = ThreadCountGuard::set(1);
    let state = pool();
    loop {
        let job: Arc<Job> = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                queue.retain(|job| !job.exhausted());
                if let Some(job) = queue.iter().find(|job| job.try_attach()) {
                    break job.clone();
                }
                queue = state.work_cv.wait(queue).expect("pool queue poisoned");
            }
        };
        job.help();
    }
}

/// Shared result slots, written disjointly (slot `i` exactly once, by the
/// thread that claimed task `i`) and read only after the region's latch.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

// SAFETY: disjoint-index writes, reads strictly after the completion latch.
unsafe impl<R: Send> Sync for Slots<R> {}

unsafe fn call_closure<F: Fn(usize) + Sync>(data: *const (), i: usize) {
    (*(data as *const F))(i)
}

/// Runs `f(0), f(1), …, f(n_tasks - 1)` and returns the results **in task
/// order**, distributing tasks over up to `current_num_threads()` threads
/// (the calling thread plus parked pool workers) via an atomic work counter.
///
/// The assignment of tasks to threads is nondeterministic; the returned
/// vector is not — slot `i` always holds `f(i)`. Every task runs with its
/// effective thread count pinned to 1, so parallel operations nested inside
/// `f` execute inline rather than fanning out recursively.
pub(crate) fn run_tasks<R, F>(n_tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n_tasks);
    if threads <= 1 {
        return (0..n_tasks).map(f).collect();
    }

    let mut slots: Slots<R> = Slots(Vec::with_capacity(n_tasks));
    slots.0.resize_with(n_tasks, || UnsafeCell::new(None));
    {
        let slots = &slots;
        let runner = move |i: usize| {
            let _inline = ThreadCountGuard::set(1);
            let r = f(i);
            // SAFETY: task index `i` is claimed exactly once (see `Job`),
            // so this is the only write to slot `i`, and no reads happen
            // until after the latch.
            unsafe { *slots.0[i].get() = Some(r) };
        };
        // Fixes the trampoline's closure type to `runner`'s without naming it.
        fn trampoline_for<F2: Fn(usize) + Sync>(_f: &F2) -> unsafe fn(*const (), usize) {
            call_closure::<F2>
        }
        let job = Arc::new(Job {
            data: &runner as *const _ as *const (),
            call: trampoline_for(&runner),
            next: AtomicUsize::new(0),
            n_tasks,
            pending: AtomicUsize::new(n_tasks),
            helper_slots: AtomicUsize::new(threads - 1),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        ensure_workers(threads - 1);
        let state = pool();
        {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            queue.push_back(job.clone());
        }
        // Wake only as many workers as this region can seat; waking the
        // whole park would cost a useless scan-and-repark per extra worker.
        for _ in 0..threads - 1 {
            state.work_cv.notify_one();
        }

        job.help();
        job.wait_done();

        // Tidy the queue eagerly (workers also drop exhausted jobs lazily).
        {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            queue.retain(|other| !Arc::ptr_eq(other, &job));
        }
        let panic_payload = job.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }
    slots
        .0
        .into_iter()
        .map(|cell| cell.into_inner().expect("work counter covered every task"))
        .collect()
}

// ---------------------------------------------------------------------------
// ThreadPoolBuilder / ThreadPool
// ---------------------------------------------------------------------------

/// Error type returned by [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`. The requested `num_threads`
/// is honored: operations run inside [`ThreadPool::install`] fan out over
/// that many threads.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (`num_threads` = hardware
    /// parallelism, overridable via `RAYON_NUM_THREADS`).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool size; `0` means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds a pool handle; infallible in practice.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Installs this configuration as the process-wide default pool size
    /// (`0` resets to the hardware/env default). Unlike real rayon this can
    /// be called repeatedly; the latest call wins.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// A pool handle: [`ThreadPool::install`] runs a closure with the effective
/// thread count set to this pool's size. The actual worker threads are
/// shared process-wide (spawned lazily, parked when idle); a `ThreadPool` is
/// a thread-count token, and each parallel region respects the token of the
/// innermost `install`.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with parallel operations using this pool's thread count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = ThreadCountGuard::set(self.current_num_threads());
        op()
    }

    /// The pool size (resolving `0` to the global/hardware default).
    pub fn current_num_threads(&self) -> usize {
        match self.num_threads {
            0 => resolved_global(),
            n => n,
        }
    }
}
