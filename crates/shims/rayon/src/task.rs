//! `scope` and `join`: the task-parallel half of the rayon surface.

use crate::pool::{current_num_threads, ThreadCountGuard};
use std::marker::PhantomData;
use std::sync::Mutex;

type Task<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scoped task region: closures passed to [`Scope::spawn`] are queued and
/// executed — on real worker threads when the effective thread count allows —
/// before the enclosing [`scope`] call returns. Tasks may spawn further
/// tasks; execution order is unspecified, as under real rayon.
pub struct Scope<'scope> {
    tasks: Mutex<Vec<Task<'scope>>>,
    // Invariant in 'scope (like rayon's Scope), while staying Send + Sync.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `body` for execution within this scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks
            .lock()
            .expect("scope task queue poisoned")
            .push(Box::new(body));
    }

    fn drain(&self) {
        loop {
            let batch = std::mem::take(&mut *self.tasks.lock().expect("scope task queue poisoned"));
            if batch.is_empty() {
                return;
            }
            let workers = current_num_threads().min(batch.len());
            if workers <= 1 {
                for task in batch {
                    task(self);
                }
                continue;
            }
            let queue = Mutex::new(batch);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let _inline = ThreadCountGuard::set(1);
                        loop {
                            let task = queue.lock().expect("scope task queue poisoned").pop();
                            match task {
                                Some(task) => task(self),
                                None => break,
                            }
                        }
                    });
                }
            });
        }
    }
}

/// Mirror of `rayon::scope`: runs `op`, then executes everything it spawned
/// (including transitively spawned tasks) before returning.
pub fn scope<'scope, F, R>(op: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let sc = Scope {
        tasks: Mutex::new(Vec::new()),
        marker: PhantomData,
    };
    let result = op(&sc);
    sc.drain();
    result
}

/// Mirror of `rayon::join`: runs the two closures, potentially in parallel
/// (`b` on a scoped worker thread when more than one thread is available),
/// and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let _inline = ThreadCountGuard::set(1);
            b()
        });
        let ra = a();
        match handle.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}
