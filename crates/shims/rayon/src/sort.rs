//! Deterministic parallel merge sort.
//!
//! Strategy: compute the *stable sorting permutation* in parallel (sort index
//! chunks, then merge pairs of sorted runs in parallel rounds, breaking
//! comparator ties towards the smaller original index), then apply the
//! permutation in place with cycle-following swaps. Because ties always
//! resolve to original order, the resulting permutation is the canonical
//! stable-sort permutation — identical to `slice::sort_by` and independent of
//! both the chunking and the thread count.
//!
//! That canonicality is what allows free algorithm choice: the sequential
//! fallback (std's stable sort) is used whenever it would win — small inputs,
//! a 1-thread pool, or a machine without real hardware parallelism (index
//! sorting pays an indirection tax that only multi-core execution can
//! repay) — and the output is byte-identical either way.
//! `par_sort_unstable_*` reuses the same routine: stability is a permitted
//! strengthening of the unstable contract and keeps the output canonical.

use crate::pool::{current_num_threads, hardware_threads, run_tasks};
use std::cmp::Ordering;

/// Below this length the std stable sort on the calling thread wins.
const SEQ_SORT_CUTOFF: usize = 1 << 14;

pub(crate) fn par_merge_sort_by<T, F>(v: &mut [T], compare: F)
where
    T: Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    // Only the effective *hardware* parallelism makes the index-based
    // parallel sort profitable; an oversubscribed pool (threads > cores)
    // would pay the indirection tax without the speedup. Output is the
    // canonical stable permutation on every path, so this choice is
    // unobservable in the results.
    let threads = current_num_threads().min(hardware_threads());
    if n <= SEQ_SORT_CUTOFF || threads <= 1 || n > u32::MAX as usize {
        v.sort_by(|a, b| compare(a, b));
        return;
    }
    let perm = stable_sort_permutation(v, &compare, threads);
    apply_permutation(v, perm);
}

/// The permutation `perm` with `perm[dst] = src`: the element that belongs at
/// position `dst` of the sorted slice currently sits at `src`. Indices are
/// `u32` (guarded by the caller) to halve memory traffic in the merge rounds.
fn stable_sort_permutation<T, F>(data: &[T], compare: &F, threads: usize) -> Vec<u32>
where
    T: Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    // Chunking here MAY depend on the thread count: the canonical stable
    // permutation is unique, so the merge structure cannot affect the output.
    let chunk = n.div_ceil(threads * 4).max(1);
    let mut runs: Vec<Vec<u32>> = run_tasks(n.div_ceil(chunk), |c| {
        let start = c * chunk;
        let end = (start + chunk).min(n);
        let mut idx: Vec<u32> = (start as u32..end as u32).collect();
        idx.sort_unstable_by(|&a, &b| {
            compare(&data[a as usize], &data[b as usize]).then(a.cmp(&b))
        });
        idx
    });
    while runs.len() > 1 {
        let mut pairs: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(runs.len() / 2 + 1);
        let mut leftover: Option<Vec<u32>> = None;
        let mut iter = runs.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => pairs.push((left, right)),
                None => leftover = Some(left),
            }
        }
        let mut merged: Vec<Vec<u32>> = run_tasks(pairs.len(), |i| {
            let (left, right) = &pairs[i];
            merge_runs(data, left, right, compare)
        });
        if let Some(run) = leftover {
            merged.push(run);
        }
        runs = merged;
    }
    runs.pop().unwrap_or_default()
}

/// Stable merge of two sorted index runs; every index in `left` is smaller
/// than every index in `right` (runs cover contiguous, ascending chunks), so
/// taking from `left` on comparator ties preserves stability.
fn merge_runs<T, F>(data: &[T], left: &[u32], right: &[u32], compare: &F) -> Vec<u32>
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if compare(&data[left[i] as usize], &data[right[j] as usize]) == Ordering::Greater {
            out.push(right[j]);
            j += 1;
        } else {
            out.push(left[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&left[i..]);
    out.extend_from_slice(&right[j..]);
    out
}

/// Applies `perm` (with `perm[dst] = src`) to `v` in place by walking each
/// cycle with swaps; `perm` entries are overwritten with a sentinel as they
/// are consumed. O(n) moves, no `T: Clone` required.
fn apply_permutation<T>(v: &mut [T], mut perm: Vec<u32>) {
    const DONE: u32 = u32::MAX;
    for start in 0..v.len() {
        if perm[start] == DONE {
            continue;
        }
        let mut dst = start;
        loop {
            let src = perm[dst] as usize;
            perm[dst] = DONE;
            if src == start {
                break;
            }
            v.swap(dst, src);
            dst = src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_keys(n: usize) -> Vec<(i64, usize)> {
        let mut state = 0x9E3779B97F4A7C15u64;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 33) % 64) as i64, i)
            })
            .collect()
    }

    /// Drives the permutation machinery directly (the public entry point
    /// falls back to std's sort on single-core machines, so CI boxes with
    /// one CPU would otherwise never execute this path).
    #[test]
    fn permutation_path_matches_std_stable_sort() {
        let base = noise_keys(100_000);
        let cmp = |a: &(i64, usize), b: &(i64, usize)| a.0.cmp(&b.0);
        let mut expected = base.clone();
        expected.sort_by(cmp);
        for threads in [2usize, 4, 7] {
            let mut v = base.clone();
            let perm = stable_sort_permutation(&v, &cmp, threads);
            apply_permutation(&mut v, perm);
            assert_eq!(v, expected, "threads = {threads}");
        }
    }

    #[test]
    fn permutation_path_handles_degenerate_shapes() {
        let cmp = |a: &i64, b: &i64| a.cmp(b);
        for n in [0usize, 1, 2, 3, 17] {
            let base: Vec<i64> = (0..n as i64).rev().collect();
            let mut expected = base.clone();
            expected.sort();
            let mut v = base;
            let perm = stable_sort_permutation(&v, &cmp, 4);
            apply_permutation(&mut v, perm);
            assert_eq!(v, expected, "n = {n}");
        }
    }
}
