//! Parallel iterators: a chunked, push-based pipeline model.
//!
//! A [`Producer`] describes a data source of `len()` *source indices* plus a
//! stack of per-element transforms; `emit_span` replays the transforms for a
//! contiguous index range, pushing outputs into a sink. Consumers
//! ([`ParIter::collect`], [`ParIter::reduce`], …) split the index space into
//! chunks with [`deterministic_chunk_len`] (a pure function of the length,
//! never the thread count), execute chunks on the pool via
//! [`run_tasks`](crate::pool::run_tasks), and combine per-chunk results
//! left-to-right — which is what makes every operation byte-identical across
//! thread counts.
//!
//! Adapters that produce exactly one output per source index additionally
//! implement the [`OneToOne`] marker, which is what `enumerate`/`zip`/`take`
//! require to assign global indices.

use crate::pool::{deterministic_chunk_len, run_tasks};
use std::marker::PhantomData;
use std::ops::Range;

/// A replayable, splittable description of a parallel computation.
///
/// `emit_span(start, end, out)` must push, in order, every output generated
/// by source indices `start..end`. Implementations must be pure: emitting a
/// span twice produces the same values, and disjoint spans are independent
/// (the driver emits each index exactly once, possibly from different
/// threads).
pub trait Producer: Sync {
    /// The element type this pipeline stage produces.
    type Item: Send;

    /// Number of source indices.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes the outputs of source indices `start..end` into `out`, in order.
    fn emit_span<F: FnMut(Self::Item)>(&self, start: usize, end: usize, out: &mut F);
}

/// Producers that emit exactly one item per source index
/// (sources, `map`, `copied`, `cloned`, `enumerate`, `zip`, `take` — but not
/// `filter` or `flat_map`), which therefore also support random access.
///
/// `at(i)` is subject to the same exactly-once discipline as
/// [`Producer::emit_span`]: a consuming operation asks for each index at
/// most once (this is what makes the `&mut`-yielding sources sound).
pub trait OneToOne: Producer {
    /// The single output of source index `index`.
    fn at(&self, index: usize) -> Self::Item;
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Source over a `Range<usize>`.
pub struct RangeSrc {
    start: usize,
    len: usize,
}

impl Producer for RangeSrc {
    type Item = usize;

    fn len(&self) -> usize {
        self.len
    }

    fn emit_span<F: FnMut(usize)>(&self, start: usize, end: usize, out: &mut F) {
        for i in start..end {
            out(self.start + i);
        }
    }
}

impl OneToOne for RangeSrc {
    fn at(&self, index: usize) -> usize {
        self.start + index
    }
}

/// Source over `&[T]`, yielding `&T`.
pub struct SliceSrc<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Producer for SliceSrc<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn emit_span<F: FnMut(&'a T)>(&self, start: usize, end: usize, out: &mut F) {
        for item in &self.slice[start..end] {
            out(item);
        }
    }
}

impl<'a, T: Sync> OneToOne for SliceSrc<'a, T> {
    fn at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// Source over an owned vector, yielding clones of its elements.
pub struct VecSrc<T> {
    items: Vec<T>,
}

impl<T: Clone + Send + Sync> Producer for VecSrc<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn emit_span<F: FnMut(T)>(&self, start: usize, end: usize, out: &mut F) {
        for item in &self.items[start..end] {
            out(item.clone());
        }
    }
}

impl<T: Clone + Send + Sync> OneToOne for VecSrc<T> {
    fn at(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

/// Source over the chunks of a shared slice (`par_chunks`).
pub struct ChunksSrc<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> Producer for ChunksSrc<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn emit_span<F: FnMut(&'a [T])>(&self, start: usize, end: usize, out: &mut F) {
        for i in start..end {
            let lo = i * self.chunk;
            let hi = (lo + self.chunk).min(self.slice.len());
            out(&self.slice[lo..hi]);
        }
    }
}

impl<'a, T: Sync> OneToOne for ChunksSrc<'a, T> {
    fn at(&self, index: usize) -> &'a [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Source over the windows of a shared slice (`par_windows`).
pub struct WindowsSrc<'a, T> {
    slice: &'a [T],
    window: usize,
}

impl<'a, T: Sync> Producer for WindowsSrc<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        (self.slice.len() + 1).saturating_sub(self.window)
    }

    fn emit_span<F: FnMut(&'a [T])>(&self, start: usize, end: usize, out: &mut F) {
        for i in start..end {
            out(&self.slice[i..i + self.window]);
        }
    }
}

impl<'a, T: Sync> OneToOne for WindowsSrc<'a, T> {
    fn at(&self, index: usize) -> &'a [T] {
        &self.slice[index..index + self.window]
    }
}

/// Source over the chunks of a mutable slice (`par_chunks_mut`).
///
/// Holds a raw pointer so disjoint `&mut [T]` chunks can be handed to
/// different worker threads. Soundness rests on the driver invariant stated
/// on [`Producer::emit_span`]: each source index is emitted exactly once per
/// consuming operation, so no two live `&mut` chunks alias.
pub struct ChunksMutSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the producer only hands out disjoint subslices (one per source
// index); with `T: Send` those may be created and used from any thread.
unsafe impl<T: Send> Send for ChunksMutSrc<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSrc<'_, T> {}

impl<'a, T: Send> Producer for ChunksMutSrc<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    fn emit_span<F: FnMut(&'a mut [T])>(&self, start: usize, end: usize, out: &mut F) {
        for i in start..end {
            let lo = i * self.chunk;
            let hi = (lo + self.chunk).min(self.len);
            // SAFETY: `lo..hi` ranges for distinct `i` are disjoint and in
            // bounds, and the driver emits each index exactly once, so each
            // mutable subslice is unique for the lifetime 'a of the borrow.
            out(unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) });
        }
    }
}

impl<'a, T: Send> OneToOne for ChunksMutSrc<'a, T> {
    fn at(&self, index: usize) -> &'a mut [T] {
        let lo = index * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        // SAFETY: in-bounds, and the consumer asks for each index at most
        // once (see `OneToOne::at`), so the mutable subslices are disjoint.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

/// Source over the elements of a mutable slice (`par_iter_mut`).
pub struct MutSliceSrc<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `ChunksMutSrc` — disjoint `&mut T`, one per source index.
unsafe impl<T: Send> Send for MutSliceSrc<'_, T> {}
unsafe impl<T: Send> Sync for MutSliceSrc<'_, T> {}

impl<'a, T: Send> Producer for MutSliceSrc<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    fn emit_span<F: FnMut(&'a mut T)>(&self, start: usize, end: usize, out: &mut F) {
        for i in start..end {
            // SAFETY: indices are in bounds and emitted exactly once, so the
            // mutable references are disjoint.
            out(unsafe { &mut *self.ptr.add(i) });
        }
    }
}

impl<'a, T: Send> OneToOne for MutSliceSrc<'a, T> {
    fn at(&self, index: usize) -> &'a mut T {
        assert!(index < self.len);
        // SAFETY: in-bounds, and the consumer asks for each index at most
        // once (see `OneToOne::at`), so the mutable references are disjoint.
        unsafe { &mut *self.ptr.add(index) }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Per-element transform (rayon: `map`).
pub struct Map<P, F> {
    p: P,
    f: F,
}

impl<P, B, F> Producer for Map<P, F>
where
    P: Producer,
    B: Send,
    F: Fn(P::Item) -> B + Sync,
{
    type Item = B;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(B)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| out((self.f)(x)));
    }
}

impl<P, B, F> OneToOne for Map<P, F>
where
    P: OneToOne,
    B: Send,
    F: Fn(P::Item) -> B + Sync,
{
    fn at(&self, index: usize) -> B {
        (self.f)(self.p.at(index))
    }
}

/// Keeps elements matching a predicate (rayon: `filter`).
pub struct Filter<P, F> {
    p: P,
    f: F,
}

impl<P, F> Producer for Filter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(P::Item)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| {
            if (self.f)(&x) {
                out(x);
            }
        });
    }
}

/// Filter-and-map in one pass (rayon: `filter_map`).
pub struct FilterMap<P, F> {
    p: P,
    f: F,
}

impl<P, B, F> Producer for FilterMap<P, F>
where
    P: Producer,
    B: Send,
    F: Fn(P::Item) -> Option<B> + Sync,
{
    type Item = B;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(B)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| {
            if let Some(y) = (self.f)(x) {
                out(y);
            }
        });
    }
}

/// Maps each element to an iterator and flattens (rayon: `flat_map` /
/// `flat_map_iter`; the per-element iterators are always consumed serially
/// within their source element, as with rayon's `flat_map_iter`).
pub struct FlatMapIter<P, F> {
    p: P,
    f: F,
}

impl<P, I, F> Producer for FlatMapIter<P, F>
where
    P: Producer,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(I::Item)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| {
            for y in (self.f)(x) {
                out(y);
            }
        });
    }
}

/// Copies referenced elements (rayon: `copied`).
pub struct Copied<P> {
    p: P,
}

impl<'a, T, P> Producer for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(T)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| out(*x));
    }
}

impl<'a, T, P> OneToOne for Copied<P>
where
    T: Copy + Send + Sync + 'a,
    P: OneToOne<Item = &'a T>,
{
    fn at(&self, index: usize) -> T {
        *self.p.at(index)
    }
}

/// Clones referenced elements (rayon: `cloned`).
pub struct Cloned<P> {
    p: P,
}

impl<'a, T, P> Producer for Cloned<P>
where
    T: Clone + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut(T)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, &mut |x| out(x.clone()));
    }
}

impl<'a, T, P> OneToOne for Cloned<P>
where
    T: Clone + Send + Sync + 'a,
    P: OneToOne<Item = &'a T>,
{
    fn at(&self, index: usize) -> T {
        self.p.at(index).clone()
    }
}

/// Pairs elements with their global index (rayon: `enumerate`).
///
/// Requires a [`OneToOne`] upstream so the global index equals the source
/// index.
pub struct Enumerate<P> {
    p: P,
}

impl<P: OneToOne> Producer for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.p.len()
    }

    fn emit_span<G: FnMut((usize, P::Item))>(&self, start: usize, end: usize, out: &mut G) {
        let mut index = start;
        self.p.emit_span(start, end, &mut |x| {
            out((index, x));
            index += 1;
        });
    }
}

impl<P: OneToOne> OneToOne for Enumerate<P> {
    fn at(&self, index: usize) -> (usize, P::Item) {
        (index, self.p.at(index))
    }
}

/// Zips two [`OneToOne`] pipelines index-by-index (rayon: `zip`).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: OneToOne, B: OneToOne> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn emit_span<G: FnMut((A::Item, B::Item))>(&self, start: usize, end: usize, out: &mut G) {
        // Lockstep random access — no per-span buffer.
        for i in start..end {
            out((self.a.at(i), self.b.at(i)));
        }
    }
}

impl<A: OneToOne, B: OneToOne> OneToOne for Zip<A, B> {
    fn at(&self, index: usize) -> (A::Item, B::Item) {
        (self.a.at(index), self.b.at(index))
    }
}

/// Takes the first `n` elements (rayon: `take`; [`OneToOne`] upstream only).
pub struct Take<P> {
    p: P,
    n: usize,
}

impl<P: OneToOne> Producer for Take<P> {
    type Item = P::Item;

    fn len(&self) -> usize {
        self.p.len().min(self.n)
    }

    fn emit_span<G: FnMut(P::Item)>(&self, start: usize, end: usize, out: &mut G) {
        self.p.emit_span(start, end, out);
    }
}

impl<P: OneToOne> OneToOne for Take<P> {
    fn at(&self, index: usize) -> P::Item {
        self.p.at(index)
    }
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing pipeline handle
// ---------------------------------------------------------------------------

/// A parallel iterator: a [`Producer`] pipeline plus a grain hint.
///
/// Unlike the historical sequential shim this type does **not** implement
/// [`Iterator`]; the rayon adapter/consumer subset the workspace uses is
/// provided as inherent methods, and consumers really execute on the pool.
pub struct ParIter<P> {
    p: P,
    min_len: usize,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(p: P) -> Self {
        ParIter { p, min_len: 1 }
    }

    /// Chunk plan: `(number_of_chunks, chunk_len)` for this pipeline's length.
    fn plan(&self) -> (usize, usize) {
        let len = self.p.len();
        if len == 0 {
            return (0, 1);
        }
        let chunk_len = deterministic_chunk_len(len, self.min_len);
        (len.div_ceil(chunk_len), chunk_len)
    }

    /// Sets the minimum number of source elements per task (grain size).
    /// Purely a scheduling hint for 1:1 operations; it also fixes the combine
    /// tree of `reduce`/`fold`, so use a consistent value there.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    /// Maps each element (rayon: `map`).
    pub fn map<B, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        B: Send,
        F: Fn(P::Item) -> B + Sync,
    {
        let min_len = self.min_len;
        ParIter {
            p: Map { p: self.p, f },
            min_len,
        }
    }

    /// Keeps elements matching the predicate (rayon: `filter`).
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: Fn(&P::Item) -> bool + Sync,
    {
        let min_len = self.min_len;
        ParIter {
            p: Filter { p: self.p, f },
            min_len,
        }
    }

    /// Filter-and-map in one pass (rayon: `filter_map`).
    pub fn filter_map<B, F>(self, f: F) -> ParIter<FilterMap<P, F>>
    where
        B: Send,
        F: Fn(P::Item) -> Option<B> + Sync,
    {
        let min_len = self.min_len;
        ParIter {
            p: FilterMap { p: self.p, f },
            min_len,
        }
    }

    /// Maps each element to an iterator and flattens (rayon: `flat_map`).
    pub fn flat_map<I, F>(self, f: F) -> ParIter<FlatMapIter<P, F>>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(P::Item) -> I + Sync,
    {
        let min_len = self.min_len;
        ParIter {
            p: FlatMapIter { p: self.p, f },
            min_len,
        }
    }

    /// rayon's `flat_map_iter` (the per-element iterators run serially).
    pub fn flat_map_iter<I, F>(self, f: F) -> ParIter<FlatMapIter<P, F>>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(P::Item) -> I + Sync,
    {
        self.flat_map(f)
    }

    // -- consumers ---------------------------------------------------------

    /// Collects into any `FromIterator` collection, in source order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C {
        let (chunks, chunk_len) = self.plan();
        let len = self.p.len();
        let p = &self.p;
        let parts: Vec<Vec<P::Item>> = run_tasks(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            let mut buf = Vec::with_capacity(end - start);
            p.emit_span(start, end, &mut |x| buf.push(x));
            buf
        });
        parts.into_iter().flatten().collect()
    }

    /// Consumes the pipeline, calling `f` on each element.
    pub fn for_each<F: Fn(P::Item) + Sync>(self, f: F) {
        let (chunks, chunk_len) = self.plan();
        let len = self.p.len();
        let p = &self.p;
        run_tasks(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            p.emit_span(start, end, &mut |x| f(x));
        });
    }

    /// rayon's `reduce`: folds each chunk from `identity()`, then combines
    /// the per-chunk accumulators left-to-right, again from `identity()`.
    ///
    /// The chunk boundaries depend only on the input length, so the combine
    /// tree — and hence the result, even for non-associative floating-point
    /// operators — is identical at every thread count. A sequential loop can
    /// reproduce it exactly by chunking with
    /// [`deterministic_chunk_len`](crate::deterministic_chunk_len).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let (chunks, chunk_len) = self.plan();
        let len = self.p.len();
        let p = &self.p;
        let parts: Vec<P::Item> = run_tasks(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            let mut acc = Some(identity());
            p.emit_span(start, end, &mut |x| {
                acc = Some(op(acc.take().expect("accumulator present"), x));
            });
            acc.expect("accumulator present")
        });
        parts.into_iter().fold(identity(), &op)
    }

    /// rayon's `fold`: folds each chunk from `identity()` and returns a
    /// parallel iterator over the per-chunk accumulators (in chunk order),
    /// typically consumed by a following `reduce` or `collect`.
    pub fn fold<B, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecSrc<B>>
    where
        B: Clone + Send + Sync,
        ID: Fn() -> B + Sync,
        F: Fn(B, P::Item) -> B + Sync,
    {
        let (chunks, chunk_len) = self.plan();
        let len = self.p.len();
        let p = &self.p;
        let accs: Vec<B> = run_tasks(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            let mut acc = Some(identity());
            p.emit_span(start, end, &mut |x| {
                acc = Some(fold_op(acc.take().expect("accumulator present"), x));
            });
            acc.expect("accumulator present")
        });
        ParIter::new(VecSrc { items: accs })
    }

    /// Number of elements the pipeline produces.
    pub fn count(self) -> usize {
        let (chunks, chunk_len) = self.plan();
        let len = self.p.len();
        let p = &self.p;
        run_tasks(chunks, |c| {
            let start = c * chunk_len;
            let end = (start + chunk_len).min(len);
            let mut n = 0usize;
            p.emit_span(start, end, &mut |_| n += 1);
            n
        })
        .into_iter()
        .sum()
    }
}

impl<P: OneToOne> ParIter<P> {
    /// Pairs elements with their index (rayon: `enumerate`).
    pub fn enumerate(self) -> ParIter<Enumerate<P>> {
        let q = Enumerate { p: self.p };
        ParIter {
            min_len: self.min_len,
            p: q,
        }
    }

    /// Zips with another parallel iterator index-by-index (rayon: `zip`).
    pub fn zip<Q: OneToOne>(self, other: ParIter<Q>) -> ParIter<Zip<P, Q>> {
        let min_len = self.min_len.max(other.min_len);
        ParIter {
            p: Zip {
                a: self.p,
                b: other.p,
            },
            min_len,
        }
    }

    /// Takes the first `n` elements (rayon: `take`).
    pub fn take(self, n: usize) -> ParIter<Take<P>> {
        let min_len = self.min_len;
        ParIter {
            p: Take { p: self.p, n },
            min_len,
        }
    }
}

impl<'a, T, P> ParIter<P>
where
    T: Copy + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    /// Copies referenced elements (rayon: `copied`).
    pub fn copied(self) -> ParIter<Copied<P>> {
        let min_len = self.min_len;
        ParIter {
            p: Copied { p: self.p },
            min_len,
        }
    }
}

impl<'a, T, P> ParIter<P>
where
    T: Clone + Send + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    /// Clones referenced elements (rayon: `cloned`).
    pub fn cloned(self) -> ParIter<Cloned<P>> {
        let min_len = self.min_len;
        ParIter {
            p: Cloned { p: self.p },
            min_len,
        }
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (mirroring rayon::prelude)
// ---------------------------------------------------------------------------

/// Mirror of `rayon::iter::IntoParallelIterator` for the owned sources the
/// workspace uses (`Range<usize>`, `Vec<T: Clone>`).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Backing producer.
    type Prod: Producer<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Prod>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Prod = RangeSrc;

    fn into_par_iter(self) -> ParIter<RangeSrc> {
        ParIter::new(RangeSrc {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        })
    }
}

impl<T: Clone + Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Prod = VecSrc<T>;

    fn into_par_iter(self) -> ParIter<VecSrc<T>> {
        ParIter::new(VecSrc { items: self })
    }
}

/// Mirror of `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (`&'data T`).
    type Item: Send;
    /// Backing producer.
    type Prod: Producer<Item = Self::Item>;
    /// Iterates `&self` in parallel.
    fn par_iter(&'data self) -> ParIter<Self::Prod>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Prod = SliceSrc<'data, T>;

    fn par_iter(&'data self) -> ParIter<SliceSrc<'data, T>> {
        ParIter::new(SliceSrc { slice: self })
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Prod = SliceSrc<'data, T>;

    fn par_iter(&'data self) -> ParIter<SliceSrc<'data, T>> {
        ParIter::new(SliceSrc { slice: self })
    }
}

/// Mirror of `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// Element type (`&'data mut T`).
    type Item: Send;
    /// Backing producer.
    type Prod: Producer<Item = Self::Item>;
    /// Iterates `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Prod>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Prod = MutSliceSrc<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIter<MutSliceSrc<'data, T>> {
        ParIter::new(MutSliceSrc {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        })
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Prod = MutSliceSrc<'data, T>;

    fn par_iter_mut(&'data mut self) -> ParIter<MutSliceSrc<'data, T>> {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Mirror of `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Chunked view of the slice.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSrc<'_, T>>;
    /// Windowed view of the slice.
    fn par_windows(&self, window_size: usize) -> ParIter<WindowsSrc<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSrc<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(ChunksSrc {
            slice: self,
            chunk: chunk_size,
        })
    }

    fn par_windows(&self, window_size: usize) -> ParIter<WindowsSrc<'_, T>> {
        assert!(window_size > 0, "window size must be positive");
        ParIter::new(WindowsSrc {
            slice: self,
            window: window_size,
        })
    }
}

/// Mirror of `rayon::slice::ParallelSliceMut` (chunking and sorting).
pub trait ParallelSliceMut<T> {
    /// Mutable chunked view of the slice.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSrc<'_, T>>
    where
        T: Send;
    /// Stable parallel sort by comparator.
    fn par_sort_by<F>(&mut self, compare: F)
    where
        T: Send + Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    /// Unstable parallel sort by comparator (implemented as the stable sort;
    /// stability is a permitted strengthening and keeps output canonical).
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Send + Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    /// Stable natural-order parallel sort.
    fn par_sort(&mut self)
    where
        T: Ord + Send + Sync;
    /// Unstable natural-order parallel sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send + Sync;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSrc<'_, T>>
    where
        T: Send,
    {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter::new(ChunksMutSrc {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk: chunk_size,
            _marker: PhantomData,
        })
    }

    fn par_sort_by<F>(&mut self, compare: F)
    where
        T: Send + Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_merge_sort_by(self, compare);
    }

    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        T: Send + Sync,
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        crate::sort::par_merge_sort_by(self, compare);
    }

    fn par_sort(&mut self)
    where
        T: Ord + Send + Sync,
    {
        crate::sort::par_merge_sort_by(self, T::cmp);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord + Send + Sync,
    {
        crate::sort::par_merge_sort_by(self, T::cmp);
    }
}
