//! SoA point storage and cache-blocked distance kernels.
//!
//! This crate is the single source of arithmetic truth for every distance the
//! workspace computes. It sits below both `parfaclo-metric` (which re-exports
//! [`DistanceKind`]) and `parfaclo-spatial` (which re-exports it as
//! `SpatialMetric`), so the dense matrix, the implicit oracle, the spatial
//! indexes and every solver all run the **same operations in the same order**
//! for a given point pair.
//!
//! Two layers:
//!
//! * [`DistanceKind`] — the scalar slice kernel plus the computed pruning
//!   bounds the spatial indexes use ([`DistanceKind::box_lower_bound`],
//!   [`DistanceKind::axis_lower_bound`]).
//! * [`SoaPoints`] + the [`block`] kernels — a structure-of-arrays layout
//!   (one contiguous `Vec<f64>` per dimension) and blocked batch kernels
//!   that compute one query point against a cache tile ([`block::TILE`]
//!   points) at a time. The inner loops are fixed-trip-count slices with no
//!   data-dependent control flow, so LLVM autovectorizes them; the
//!   per-point accumulation order over dimensions is exactly the scalar
//!   kernel's left-to-right fold, so every produced distance is
//!   **bit-identical** to the scalar path at any tile boundary and any
//!   thread count. No fast-math, no FMA contraction, no reassociation.

pub mod block;
mod kind;
mod soa;

pub use kind::DistanceKind;
pub use soa::SoaPoints;
