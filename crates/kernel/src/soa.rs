//! Structure-of-arrays point storage.
//!
//! [`SoaPoints`] stores `n` points in `R^d` as `d` contiguous coordinate
//! vectors (one per dimension) instead of `n` per-point heap allocations.
//! The blocked kernels in [`crate::block`] stream one coordinate axis at a
//! time through a cache tile of points, which is the layout LLVM needs to
//! autovectorize the inner loops. Built once from flat row-major
//! coordinates and shared (`Arc`) wherever the matching AoS points are.

/// `n` points stored as one contiguous `Vec<f64>` per dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct SoaPoints {
    n: usize,
    dims: Vec<Vec<f64>>,
}

impl SoaPoints {
    /// Builds from flat row-major coordinates (`coords[i * dim + d]` is
    /// coordinate `d` of point `i`). `dim == 0` stores `n` zero-dimensional
    /// points (all distances are the empty fold: `0.0`).
    ///
    /// # Panics
    /// Panics if `coords.len() != n * dim`.
    pub fn from_flat(coords: &[f64], dim: usize, n: usize) -> Self {
        assert_eq!(
            coords.len(),
            n * dim,
            "flat coordinate buffer has wrong length"
        );
        let mut dims = vec![vec![0.0; n]; dim];
        for (d, axis) in dims.iter_mut().enumerate() {
            for (i, slot) in axis.iter_mut().enumerate() {
                *slot = coords[i * dim + d];
            }
        }
        SoaPoints { n, dims }
    }

    /// Builds from flat row-major coordinates with a slot permutation: slot
    /// `s` of the result holds point `perm[s]` of `coords`. Used by the
    /// spatial structures, whose scan order is a build-time permutation of
    /// the input points.
    ///
    /// # Panics
    /// Panics if any `perm[s] * dim + dim` exceeds `coords.len()`.
    pub fn from_flat_permuted(coords: &[f64], dim: usize, perm: &[u32]) -> Self {
        let n = perm.len();
        let mut dims = vec![vec![0.0; n]; dim];
        for (d, axis) in dims.iter_mut().enumerate() {
            for (s, slot) in axis.iter_mut().enumerate() {
                *slot = coords[perm[s] as usize * dim + d];
            }
        }
        SoaPoints { n, dims }
    }

    /// Gathers a subset: slot `s` of the result holds point `ids[s]` of
    /// `self`. Used to build the candidate-set side of `nearest_in_set`.
    pub fn gather(&self, ids: &[u32]) -> Self {
        let mut dims = vec![vec![0.0; ids.len()]; self.dims.len()];
        for (d, axis) in dims.iter_mut().enumerate() {
            let src = &self.dims[d];
            for (s, slot) in axis.iter_mut().enumerate() {
                *slot = src[ids[s] as usize];
            }
        }
        SoaPoints { n: ids.len(), dims }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Coordinate `d` of point `i`.
    #[inline]
    pub fn coord(&self, d: usize, i: usize) -> f64 {
        self.dims[d][i]
    }

    /// The contiguous coordinate vector of axis `d`.
    #[inline]
    pub fn axis(&self, d: usize) -> &[f64] {
        &self.dims[d]
    }

    /// Distance from the slice point `q` to stored point `i` — bit-identical
    /// to [`crate::DistanceKind::distance`] (same per-coordinate operations,
    /// same left-to-right fold), just strided across the axes.
    #[inline]
    pub fn dist_one(&self, kind: crate::DistanceKind, q: &[f64], i: usize) -> f64 {
        use crate::DistanceKind;
        debug_assert_eq!(q.len(), self.dim(), "points must have equal dimension");
        match kind {
            DistanceKind::Euclidean => self.sq_one(q, i).sqrt(),
            DistanceKind::SquaredEuclidean => self.sq_one(q, i),
            DistanceKind::Manhattan => q
                .iter()
                .enumerate()
                .map(|(d, &x)| (x - self.dims[d][i]).abs())
                .sum(),
            DistanceKind::Chebyshev => q
                .iter()
                .enumerate()
                .map(|(d, &x)| (x - self.dims[d][i]).abs())
                .fold(0.0, f64::max),
        }
    }

    #[inline]
    fn sq_one(&self, q: &[f64], i: usize) -> f64 {
        q.iter()
            .enumerate()
            .map(|(d, &x)| {
                let t = x - self.dims[d][i];
                t * t
            })
            .sum()
    }

    /// Heap bytes held by the coordinate vectors.
    pub fn memory_bytes(&self) -> usize {
        self.dims
            .iter()
            .map(|axis| axis.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistanceKind;

    const ALL: [DistanceKind; 4] = [
        DistanceKind::Euclidean,
        DistanceKind::SquaredEuclidean,
        DistanceKind::Manhattan,
        DistanceKind::Chebyshev,
    ];

    fn flat(n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 7.0 - 60.0)
            .collect()
    }

    #[test]
    fn from_flat_round_trips_coordinates() {
        let coords = flat(10, 3);
        let soa = SoaPoints::from_flat(&coords, 3, 10);
        assert_eq!(soa.len(), 10);
        assert_eq!(soa.dim(), 3);
        for i in 0..10 {
            for d in 0..3 {
                assert_eq!(soa.coord(d, i), coords[i * 3 + d]);
            }
        }
    }

    #[test]
    fn permuted_and_gather_pick_the_right_points() {
        let coords = flat(8, 2);
        let perm: Vec<u32> = vec![5, 0, 7, 2];
        let soa = SoaPoints::from_flat_permuted(&coords, 2, &perm);
        assert_eq!(soa.len(), 4);
        for (s, &p) in perm.iter().enumerate() {
            assert_eq!(soa.coord(0, s), coords[p as usize * 2]);
            assert_eq!(soa.coord(1, s), coords[p as usize * 2 + 1]);
        }
        let sub = SoaPoints::from_flat(&coords, 2, 8).gather(&perm);
        assert_eq!(sub, soa);
    }

    #[test]
    fn dist_one_matches_scalar_kernel_bitwise() {
        let coords = flat(9, 4);
        let soa = SoaPoints::from_flat(&coords, 4, 9);
        let q = [0.25, -3.0, 17.5, 0.0];
        for kind in ALL {
            for i in 0..9 {
                let scalar = kind.distance(&q, &coords[i * 4..i * 4 + 4]);
                assert_eq!(soa.dist_one(kind, &q, i).to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn zero_dimensional_points_are_allowed() {
        let soa = SoaPoints::from_flat(&[], 0, 5);
        assert_eq!(soa.len(), 5);
        assert_eq!(soa.dim(), 0);
        for kind in ALL {
            assert_eq!(soa.dist_one(kind, &[], 3), 0.0);
        }
    }

    #[test]
    fn memory_bytes_counts_every_axis() {
        let soa = SoaPoints::from_flat(&flat(6, 3), 3, 6);
        assert_eq!(soa.memory_bytes(), 3 * 6 * 8);
    }
}
