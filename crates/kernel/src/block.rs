//! Cache-blocked batch kernels: one query point × a tile of stored points.
//!
//! Every kernel here computes the **same per-point operation sequence** as
//! the scalar [`DistanceKind::distance`] — per-coordinate displacement,
//! square/abs, fold over dimensions from `0.0` in ascending-dimension order,
//! optional final sqrt — it only *interleaves* the folds of [`TILE`]
//! independent points so the inner loop is a fixed-trip-count slice walk
//! LLVM can autovectorize. Blocking never reorders any single point's
//! accumulation, so each produced distance is bit-identical to the scalar
//! path regardless of tile boundaries or thread count. There is no
//! fast-math and no reassociation anywhere.
//!
//! Reductions over the produced distances (`argmin`, `max`, `min-positive`,
//! membership) are exact order-respecting scans: positions are visited in
//! ascending order and ties resolve by a strict `<` (lowest position / id
//! wins), matching the scalar `min_by (d, id)` convention used everywhere
//! else. Sums ([`sum_gather`]) fold left-to-right in the caller's index
//! order, exactly like the scalar `.map(dist).sum()` they replace.

use crate::{DistanceKind, SoaPoints};

/// Number of points processed per block: the tile accumulator (`TILE` f64s =
/// 512 bytes) plus one axis slice stay resident in L1 while the inner loops
/// stream, and the trip count is a compile-time constant for all full tiles.
pub const TILE: usize = 64;

/// An index type a gather kernel can read point positions from (`u32` slot
/// ids from the spatial structures, `usize` node ids from the solvers).
pub trait SoaIndex: Copy {
    /// The position this index refers to.
    fn index(self) -> usize;
}

impl SoaIndex for u32 {
    #[inline(always)]
    fn index(self) -> usize {
        self as usize
    }
}

impl SoaIndex for usize {
    #[inline(always)]
    fn index(self) -> usize {
        self
    }
}

/// One tile of squared-L2 accumulation: `tile[j] += (q[d] - axis_d[j])²`
/// over all dimensions, starting from `0.0`.
#[inline]
fn sq_tile(q: &[f64], pts: &SoaPoints, pos: usize, tile: &mut [f64]) {
    tile.fill(0.0);
    for (d, &qd) in q.iter().enumerate() {
        let col = &pts.axis(d)[pos..pos + tile.len()];
        for (o, &c) in tile.iter_mut().zip(col) {
            let t = qd - c;
            *o += t * t;
        }
    }
}

#[inline]
fn l1_tile(q: &[f64], pts: &SoaPoints, pos: usize, tile: &mut [f64]) {
    tile.fill(0.0);
    for (d, &qd) in q.iter().enumerate() {
        let col = &pts.axis(d)[pos..pos + tile.len()];
        for (o, &c) in tile.iter_mut().zip(col) {
            *o += (qd - c).abs();
        }
    }
}

#[inline]
fn linf_tile(q: &[f64], pts: &SoaPoints, pos: usize, tile: &mut [f64]) {
    tile.fill(0.0);
    for (d, &qd) in q.iter().enumerate() {
        let col = &pts.axis(d)[pos..pos + tile.len()];
        for (o, &c) in tile.iter_mut().zip(col) {
            *o = o.max((qd - c).abs());
        }
    }
}

/// Distances from `q` to the contiguous point range
/// `pts[start .. start + out.len()]`, written into `out`.
pub fn dist_range(kind: DistanceKind, q: &[f64], pts: &SoaPoints, start: usize, out: &mut [f64]) {
    debug_assert_eq!(q.len(), pts.dim(), "points must have equal dimension");
    debug_assert!(start + out.len() <= pts.len(), "range exceeds point count");
    let mut pos = start;
    for tile in out.chunks_mut(TILE) {
        match kind {
            DistanceKind::Euclidean => {
                sq_tile(q, pts, pos, tile);
                for v in tile.iter_mut() {
                    *v = v.sqrt();
                }
            }
            DistanceKind::SquaredEuclidean => sq_tile(q, pts, pos, tile),
            DistanceKind::Manhattan => l1_tile(q, pts, pos, tile),
            DistanceKind::Chebyshev => linf_tile(q, pts, pos, tile),
        }
        pos += tile.len();
    }
}

/// Distances from `q` to the gathered points `pts[idxs[j]]`, written into
/// `out[j]`. The per-dimension inner loop reads through the index slice
/// (a gather), so this is for *small or irregular* candidate sets; for
/// contiguous ranges use [`dist_range`].
pub fn dist_gather<I: SoaIndex>(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    idxs: &[I],
    out: &mut [f64],
) {
    debug_assert_eq!(q.len(), pts.dim(), "points must have equal dimension");
    debug_assert_eq!(idxs.len(), out.len(), "index/output length mismatch");
    for (chunk, tile) in idxs.chunks(TILE).zip(out.chunks_mut(TILE)) {
        tile.fill(0.0);
        match kind {
            DistanceKind::Euclidean | DistanceKind::SquaredEuclidean => {
                for (d, &qd) in q.iter().enumerate() {
                    let axis = pts.axis(d);
                    for (o, &i) in tile.iter_mut().zip(chunk) {
                        let t = qd - axis[i.index()];
                        *o += t * t;
                    }
                }
                if kind == DistanceKind::Euclidean {
                    for v in tile.iter_mut() {
                        *v = v.sqrt();
                    }
                }
            }
            DistanceKind::Manhattan => {
                for (d, &qd) in q.iter().enumerate() {
                    let axis = pts.axis(d);
                    for (o, &i) in tile.iter_mut().zip(chunk) {
                        *o += (qd - axis[i.index()]).abs();
                    }
                }
            }
            DistanceKind::Chebyshev => {
                for (d, &qd) in q.iter().enumerate() {
                    let axis = pts.axis(d);
                    for (o, &i) in tile.iter_mut().zip(chunk) {
                        *o = o.max((qd - axis[i.index()]).abs());
                    }
                }
            }
        }
    }
}

/// Position and distance of the point closest to `q` in
/// `pts[start .. start + len]`; ties resolve to the **lowest position**
/// (strict `<` over an ascending scan). `None` iff `len == 0`.
pub fn argmin_range(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    len: usize,
) -> Option<(usize, f64)> {
    if len == 0 {
        return None;
    }
    let mut buf = [0.0f64; TILE];
    let mut best_pos = start;
    let mut best_d = f64::INFINITY;
    let (mut pos, end) = (start, start + len);
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, pts, pos, &mut buf[..w]);
        for (j, &d) in buf[..w].iter().enumerate() {
            if d < best_d {
                best_d = d;
                best_pos = pos + j;
            }
        }
        pos += w;
    }
    // An all-infinite range never updates: (start, ∞) is then exactly the
    // lexicographic minimum of (distance, position).
    Some((best_pos, best_d))
}

/// Id and distance of the candidate closest to `q`, where slot `j` of the
/// gathered set `sub` holds the point labelled `ids[j]`; ties resolve to the
/// **lowest id** — the lexicographic minimum of `(distance, id)`, matching
/// the scalar `min_by` convention. `None` iff `ids` is empty.
pub fn argmin_ids(
    kind: DistanceKind,
    q: &[f64],
    sub: &SoaPoints,
    ids: &[u32],
) -> Option<(u32, f64)> {
    debug_assert_eq!(sub.len(), ids.len(), "gathered set / id length mismatch");
    if ids.is_empty() {
        return None;
    }
    let mut buf = [0.0f64; TILE];
    let mut best_id = ids[0];
    let mut best_d = f64::INFINITY;
    let (mut pos, end) = (0, ids.len());
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, sub, pos, &mut buf[..w]);
        for (j, &d) in buf[..w].iter().enumerate() {
            let id = ids[pos + j];
            if d < best_d || (d == best_d && id < best_id) {
                best_d = d;
                best_id = id;
            }
        }
        pos += w;
    }
    Some((best_id, best_d))
}

/// Appends (in ascending order) every position in `pts[start .. start + len]`
/// whose distance to `q` is `<= radius`.
pub fn collect_within(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    len: usize,
    radius: f64,
    out: &mut Vec<usize>,
) {
    let mut buf = [0.0f64; TILE];
    let (mut pos, end) = (start, start + len);
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, pts, pos, &mut buf[..w]);
        for (j, &d) in buf[..w].iter().enumerate() {
            if d <= radius {
                out.push(pos + j);
            }
        }
        pos += w;
    }
}

/// Number of positions in `pts[start .. start + len]` within `radius` of `q`.
pub fn count_within(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    len: usize,
    radius: f64,
) -> usize {
    let mut buf = [0.0f64; TILE];
    let mut count = 0;
    let (mut pos, end) = (start, start + len);
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, pts, pos, &mut buf[..w]);
        count += buf[..w].iter().filter(|&&d| d <= radius).count();
        pos += w;
    }
    count
}

/// Largest distance from `q` to `pts[start .. start + len]`
/// (`-∞` for an empty range). `max` is an exact reduction, so the blocked
/// scan equals any scalar fold over the same values.
pub fn max_in_range(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    len: usize,
) -> f64 {
    let mut buf = [0.0f64; TILE];
    let mut best = f64::NEG_INFINITY;
    let (mut pos, end) = (start, start + len);
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, pts, pos, &mut buf[..w]);
        for &d in &buf[..w] {
            best = best.max(d);
        }
        pos += w;
    }
    best
}

/// Smallest strictly-positive distance from `q` to
/// `pts[start .. start + len]`, if any.
pub fn min_positive_in_range(
    kind: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    len: usize,
) -> Option<f64> {
    let mut buf = [0.0f64; TILE];
    let mut best = f64::INFINITY;
    let mut found = false;
    let (mut pos, end) = (start, start + len);
    while pos < end {
        let w = TILE.min(end - pos);
        dist_range(kind, q, pts, pos, &mut buf[..w]);
        for &d in &buf[..w] {
            if d > 0.0 && d < best {
                best = d;
                found = true;
            }
        }
        pos += w;
    }
    found.then_some(best)
}

/// Sum of the distances from `q` to the gathered points `pts[idxs[j]]`,
/// folded **left-to-right in `idxs` order** from `0.0` — bit-identical to
/// the scalar `idxs.iter().map(|&i| dist(q, i)).sum()` it replaces (the
/// distances themselves come from the blocked gather kernel; only their
/// production is vectorized, never the fold).
pub fn sum_gather<I: SoaIndex>(kind: DistanceKind, q: &[f64], pts: &SoaPoints, idxs: &[I]) -> f64 {
    let mut buf = [0.0f64; TILE];
    let mut sum = 0.0;
    for chunk in idxs.chunks(TILE) {
        dist_gather(kind, q, pts, chunk, &mut buf[..chunk.len()]);
        for &d in &buf[..chunk.len()] {
            sum += d;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DistanceKind; 4] = [
        DistanceKind::Euclidean,
        DistanceKind::SquaredEuclidean,
        DistanceKind::Manhattan,
        DistanceKind::Chebyshev,
    ];

    /// Deterministic pseudo-random coordinates with duplicates sprinkled in
    /// so ties are exercised.
    fn coords(n: usize, dim: usize) -> Vec<f64> {
        (0..n * dim)
            .map(|i| {
                if i % 7 == 3 {
                    2.5
                } else {
                    ((i.wrapping_mul(2654435761)) % 1009) as f64 / 13.0 - 38.0
                }
            })
            .collect()
    }

    fn scalar_dist(kind: DistanceKind, q: &[f64], flat: &[f64], dim: usize, i: usize) -> f64 {
        kind.distance(q, &flat[i * dim..(i + 1) * dim])
    }

    #[test]
    fn dist_range_is_bitwise_scalar_at_tile_boundaries() {
        for dim in [1usize, 2, 3, 10] {
            for n in [TILE - 1, TILE, TILE + 1, 2 * TILE + 3] {
                let flat = coords(n, dim);
                let pts = SoaPoints::from_flat(&flat, dim, n);
                let q: Vec<f64> = (0..dim).map(|d| d as f64 * 1.5 - 2.0).collect();
                for kind in ALL {
                    let mut out = vec![0.0; n];
                    dist_range(kind, &q, &pts, 0, &mut out);
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(
                            v.to_bits(),
                            scalar_dist(kind, &q, &flat, dim, i).to_bits(),
                            "{kind:?} dim {dim} n {n} i {i}"
                        );
                    }
                    // Also from an unaligned interior start.
                    let start = 5.min(n - 1);
                    let mut out2 = vec![0.0; n - start];
                    dist_range(kind, &q, &pts, start, &mut out2);
                    assert_eq!(out2[..], out[start..]);
                }
            }
        }
    }

    #[test]
    fn gather_matches_range_on_identity_and_subsets() {
        let n = 2 * TILE + 3;
        let dim = 3;
        let flat = coords(n, dim);
        let pts = SoaPoints::from_flat(&flat, dim, n);
        let q = [0.1, -7.0, 3.5];
        let idxs: Vec<usize> = (0..n).rev().step_by(3).collect();
        for kind in ALL {
            let mut out = vec![0.0; idxs.len()];
            dist_gather(kind, &q, &pts, &idxs, &mut out);
            for (j, &i) in idxs.iter().enumerate() {
                assert_eq!(
                    out[j].to_bits(),
                    scalar_dist(kind, &q, &flat, dim, i).to_bits()
                );
            }
            // u32 indices give the same answers.
            let idxs32: Vec<u32> = idxs.iter().map(|&i| i as u32).collect();
            let mut out32 = vec![0.0; idxs.len()];
            dist_gather(kind, &q, &pts, &idxs32, &mut out32);
            assert_eq!(out, out32);
        }
    }

    #[test]
    fn argmin_prefers_lowest_position_on_exact_ties() {
        // Three copies of the same closest point at positions 10, 40, 90.
        let n = 2 * TILE;
        let dim = 2;
        let mut flat = coords(n, dim);
        for &i in &[10usize, 40, 90] {
            flat[i * dim] = 0.5;
            flat[i * dim + 1] = 0.5;
        }
        let pts = SoaPoints::from_flat(&flat, dim, n);
        let q = [0.5, 0.5];
        for kind in ALL {
            let (pos, d) = argmin_range(kind, &q, &pts, 0, n).unwrap();
            assert_eq!(pos, 10, "{kind:?}");
            assert_eq!(d, 0.0);
            // Starting past the first duplicate finds the second.
            let (pos, _) = argmin_range(kind, &q, &pts, 11, n - 11).unwrap();
            assert_eq!(pos, 40, "{kind:?}");
        }
        assert_eq!(argmin_range(DistanceKind::Euclidean, &q, &pts, 0, 0), None);
    }

    #[test]
    fn argmin_ids_prefers_lowest_id_even_when_scanned_later() {
        let n = TILE + 5;
        let dim = 2;
        let mut flat = coords(n, dim);
        // Two identical points; the one scanned later carries the lower id.
        flat[3 * dim] = 1.0;
        flat[3 * dim + 1] = 1.0;
        flat[66 * dim] = 1.0;
        flat[66 * dim + 1] = 1.0;
        let pts = SoaPoints::from_flat(&flat, dim, n);
        // Candidate set visits position 3 (id 9) before position 66 (id 2).
        let set: Vec<u32> = vec![3, 66];
        let ids: Vec<u32> = vec![9, 2];
        let sub = pts.gather(&set);
        for kind in ALL {
            let (id, d) = argmin_ids(kind, &[1.0, 1.0], &sub, &ids).unwrap();
            assert_eq!(id, 2, "{kind:?}");
            assert_eq!(d, 0.0);
        }
        assert_eq!(
            argmin_ids(DistanceKind::Euclidean, &[1.0, 1.0], &pts.gather(&[]), &[]),
            None
        );
    }

    #[test]
    fn within_scans_match_scalar_filtering() {
        for n in [TILE - 1, TILE, TILE + 1, 2 * TILE + 3] {
            let dim = 2;
            let flat = coords(n, dim);
            let pts = SoaPoints::from_flat(&flat, dim, n);
            let q = [0.0, 0.0];
            for kind in ALL {
                let radius = 25.0;
                let expect: Vec<usize> = (0..n)
                    .filter(|&i| scalar_dist(kind, &q, &flat, dim, i) <= radius)
                    .collect();
                let mut got = Vec::new();
                collect_within(kind, &q, &pts, 0, n, radius, &mut got);
                assert_eq!(got, expect, "{kind:?} n {n}");
                assert_eq!(count_within(kind, &q, &pts, 0, n, radius), expect.len());
            }
        }
    }

    #[test]
    fn range_reductions_match_scalar_folds() {
        let n = 2 * TILE + 3;
        let dim = 3;
        let flat = coords(n, dim);
        let pts = SoaPoints::from_flat(&flat, dim, n);
        let q = [1.0, 2.0, 3.0];
        for kind in ALL {
            let all: Vec<f64> = (0..n)
                .map(|i| scalar_dist(kind, &q, &flat, dim, i))
                .collect();
            let max = all.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            assert_eq!(max_in_range(kind, &q, &pts, 0, n), max);
            let minpos = all
                .iter()
                .copied()
                .filter(|&d| d > 0.0)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(min_positive_in_range(kind, &q, &pts, 0, n), Some(minpos));
        }
        assert_eq!(
            max_in_range(DistanceKind::Euclidean, &q, &pts, 4, 0),
            f64::NEG_INFINITY
        );
        assert_eq!(
            min_positive_in_range(DistanceKind::Euclidean, &q, &pts, 4, 0),
            None
        );
    }

    #[test]
    fn sum_gather_folds_left_to_right_in_index_order() {
        let n = 3 * TILE + 7;
        let dim = 2;
        let flat = coords(n, dim);
        let pts = SoaPoints::from_flat(&flat, dim, n);
        let q = [0.7, -0.3];
        let idxs: Vec<usize> = (0..n).filter(|i| i % 2 == 0).rev().collect();
        for kind in ALL {
            let expect: f64 = idxs
                .iter()
                .map(|&i| scalar_dist(kind, &q, &flat, dim, i))
                .sum();
            assert_eq!(
                sum_gather(kind, &q, &pts, &idxs).to_bits(),
                expect.to_bits()
            );
        }
    }

    #[test]
    fn zero_dimensional_ranges_fold_to_zero() {
        let pts = SoaPoints::from_flat(&[], 0, 10);
        for kind in ALL {
            let mut out = vec![7.0; 10];
            dist_range(kind, &[], &pts, 0, &mut out);
            assert!(out.iter().all(|&d| d == 0.0), "{kind:?}");
            assert_eq!(argmin_range(kind, &[], &pts, 0, 10), Some((0, 0.0)));
        }
    }
}
