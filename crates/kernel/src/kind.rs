//! The scalar slice kernel: one distance function shared by every layer.
//!
//! Every point-to-point distance in the workspace — the dense matrix
//! materialisation, the implicit oracle, the spatial index scans, the blocked
//! batch kernels — is computed by [`DistanceKind::distance`] (or an exact
//! reordering of its per-coordinate operations, see [`crate::block`]), so the
//! values are bit-identical no matter which layer produced them.
//!
//! The pruning bounds ([`DistanceKind::box_lower_bound`],
//! [`DistanceKind::axis_lower_bound`]) are *computed* lower bounds, not just
//! mathematical ones: each bound is evaluated with the same shape of rounded
//! IEEE operations as the distance itself (per-coordinate displacement →
//! square/abs → left-to-right sum or max → optional sqrt). Because every one
//! of those operations is monotone under rounding, the computed bound of a
//! box/half-space never exceeds the computed distance of any point inside
//! it. Searches therefore prune only on a **strict** `bound > best`
//! comparison and remain exact — including ties, which are always resolved
//! towards the lowest point id.

/// Which point-to-point distance function to use.
///
/// `Euclidean`, `Manhattan` and `Chebyshev` are metrics. `SquaredEuclidean` is **not** a
/// metric (it violates the triangle inequality) but is provided because the k-means
/// objective of the paper sums squared distances; the k-means algorithms treat it as a
/// cost function, never as a metric. It is still per-coordinate monotone, which is all
/// the spatial pruning bounds need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistanceKind {
    /// Standard L2 distance.
    #[default]
    Euclidean,
    /// Squared L2 distance (k-means cost; not a metric).
    SquaredEuclidean,
    /// L1 distance.
    Manhattan,
    /// L-infinity distance.
    Chebyshev,
}

impl DistanceKind {
    /// Distance between two coordinate slices: per-coordinate displacement,
    /// square/abs, left-to-right fold from `0.0`, optional final sqrt.
    ///
    /// The subtraction direction does not matter: IEEE-754 guarantees
    /// `(a - b)` and `(b - a)` are exact negations (equal operands give
    /// `+0.0`), so after squaring or `abs` the per-coordinate terms are
    /// bitwise symmetric.
    ///
    /// # Panics
    /// Debug-asserts equal dimensions; mismatched slices are a caller bug.
    #[inline]
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
        match self {
            DistanceKind::Euclidean => Self::squared_l2(a, b).sqrt(),
            DistanceKind::SquaredEuclidean => Self::squared_l2(a, b),
            DistanceKind::Manhattan => a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum(),
            DistanceKind::Chebyshev => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    #[inline]
    fn squared_l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Computed lower bound on the distance from `q` to any point inside the
    /// axis-aligned box `[lo, hi]`: per-coordinate clamp displacement,
    /// combined exactly like [`DistanceKind::distance`] combines
    /// displacements. Never exceeds the computed distance of a point whose
    /// coordinates lie within the (exact) bounds.
    pub fn box_lower_bound(self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        // clamp(c) = how far q[c] sits outside [lo[c], hi[c]], as the same
        // rounded subtraction a distance computation would produce.
        let clamp = |c: usize| -> f64 {
            if q[c] < lo[c] {
                lo[c] - q[c]
            } else if q[c] > hi[c] {
                q[c] - hi[c]
            } else {
                0.0
            }
        };
        match self {
            DistanceKind::Euclidean => (0..q.len())
                .map(|c| {
                    let d = clamp(c);
                    d * d
                })
                .sum::<f64>()
                .sqrt(),
            DistanceKind::SquaredEuclidean => (0..q.len())
                .map(|c| {
                    let d = clamp(c);
                    d * d
                })
                .sum(),
            DistanceKind::Manhattan => (0..q.len()).map(clamp).sum(),
            DistanceKind::Chebyshev => (0..q.len()).map(clamp).fold(0.0, f64::max),
        }
    }

    /// Computed lower bound on the distance from `q` to any point beyond a
    /// splitting plane at signed axis displacement `signed` (`q[axis] −
    /// split`): the distance of a hypothetical point differing from `q` only
    /// along that axis, computed with the same rounded operations.
    #[inline]
    pub fn axis_lower_bound(self, signed: f64) -> f64 {
        match self {
            DistanceKind::Euclidean => (signed * signed).sqrt(),
            DistanceKind::SquaredEuclidean => signed * signed,
            DistanceKind::Manhattan | DistanceKind::Chebyshev => signed.abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(DistanceKind::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(DistanceKind::SquaredEuclidean.distance(&a, &b), 25.0);
        assert_eq!(DistanceKind::Manhattan.distance(&a, &b), 7.0);
        assert_eq!(DistanceKind::Chebyshev.distance(&a, &b), 4.0);
    }

    #[test]
    fn subtraction_direction_is_bitwise_irrelevant() {
        let a = [1.0e-17, -3.5, 0.1, 7.25];
        let b = [2.0e-17, 3.5, 0.1, -0.3];
        for kind in [
            DistanceKind::Euclidean,
            DistanceKind::SquaredEuclidean,
            DistanceKind::Manhattan,
            DistanceKind::Chebyshev,
        ] {
            assert_eq!(
                kind.distance(&a, &b).to_bits(),
                kind.distance(&b, &a).to_bits(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn box_bound_is_zero_inside_and_tight_on_faces() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 2.0];
        for m in [
            DistanceKind::Euclidean,
            DistanceKind::SquaredEuclidean,
            DistanceKind::Manhattan,
            DistanceKind::Chebyshev,
        ] {
            assert_eq!(m.box_lower_bound(&[0.5, 1.0], &lo, &hi), 0.0);
            // Directly left of the box: the bound equals the face distance.
            let d = m.box_lower_bound(&[-2.0, 1.0], &lo, &hi);
            let expect = m.distance(&[-2.0, 1.0], &[0.0, 1.0]);
            assert_eq!(d, expect);
        }
    }

    #[test]
    fn box_bound_never_exceeds_any_contained_point_distance() {
        // Deterministic pseudo-grid of queries/points; the computed-bound
        // property must hold exactly (<=, not approximately).
        let lo = [-1.25, 0.5, 3.0];
        let hi = [0.75, 2.5, 3.0];
        let inside = [
            [-1.25, 0.5, 3.0],
            [0.75, 2.5, 3.0],
            [0.0, 1.75, 3.0],
            [-0.5, 2.5, 3.0],
        ];
        let queries = [
            [5.0, -2.0, 3.5],
            [-3.0, 1.0, 3.0],
            [0.1, 0.9, 2.0],
            [0.75, 2.5, 3.0],
        ];
        for m in [
            DistanceKind::Euclidean,
            DistanceKind::SquaredEuclidean,
            DistanceKind::Manhattan,
            DistanceKind::Chebyshev,
        ] {
            for q in &queries {
                let bound = m.box_lower_bound(q, &lo, &hi);
                for p in &inside {
                    assert!(
                        bound <= m.distance(q, p),
                        "{m:?}: bound {bound} exceeds distance to {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn axis_bound_matches_single_axis_distance() {
        for m in [
            DistanceKind::Euclidean,
            DistanceKind::SquaredEuclidean,
            DistanceKind::Manhattan,
            DistanceKind::Chebyshev,
        ] {
            let signed = -1.5_f64;
            assert_eq!(
                m.axis_lower_bound(signed),
                m.distance(&[0.0], &[1.5]),
                "{m:?}"
            );
        }
    }
}
