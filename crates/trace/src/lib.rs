//! Deterministic span/event tracing for the solver stack.
//!
//! A [`Tracer`] records a tree of named spans (RAII [`Span`] guards) plus
//! per-round [`RoundEvent`]s, split the same way the `Run` JSON splits its
//! record:
//!
//! - **canonical** — span topology, per-span *round* deltas, and round
//!   events `{round, frontier}`. These are a pure function of the workload:
//!   byte-identical across distance backends (dense/implicit/spatial),
//!   event engines (scan/bucket), and thread counts, which is what the
//!   trace-conformance tests compare. Only the `rounds` counter rides here
//!   because the scan and bucket engines legitimately charge different
//!   element-op/sort profiles for the same result.
//! - **timing metadata** — wall-clock timestamps, the full
//!   [`CostReport`] delta per span, and the memory high-water. These ride
//!   only in the Chrome-trace export ([`Tracer::chrome_json`], loadable in
//!   `chrome://tracing` / Perfetto).
//!
//! Solvers do not thread a tracer handle through their signatures: the
//! harness [`install`]s a tracer into a thread-local, and instrumentation
//! sites call the free functions [`span`] / [`round`], which are no-ops
//! when no tracer is installed. Spans must only be opened on the solver's
//! driving thread (never inside `par_iter` closures) so the span stack
//! stays a deterministic LIFO; the repository's inline `install` shim
//! guarantees the thread-local survives `ThreadPool::install`.

#![warn(missing_docs)]

use parfaclo_matrixops::{CostMeter, CostReport};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version tag emitted in every trace artifact; bump on schema changes.
pub const TRACE_SCHEMA: &str = "parfaclo.trace.v1";

/// How much a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceDetail {
    /// Spans only — cheap enough that the registry wrapper attaches one to
    /// every run for `phase_wall_ms` attribution.
    Phases,
    /// Spans plus per-round events. Round-event call sites compute frontier
    /// sizes lazily (an `O(n)` count per round in the dominator loops), so
    /// this level is opted into by `--trace` / `--progress` only.
    Rounds,
}

/// One per-round progress event, attached to the innermost open span.
#[derive(Debug, Clone)]
pub struct RoundEvent {
    /// Index of the enclosing span, if any.
    pub span: Option<usize>,
    /// Round number within the enclosing phase (1-based at the call sites).
    pub round: u64,
    /// Frontier size at the start of the round (remaining clients, alive
    /// vertices, candidate radii, …) — canonical, workload-pure.
    pub frontier: u64,
    /// Milliseconds since the tracer's origin (timing metadata).
    pub at_ms: f64,
    /// Cumulative meter snapshot at the event (timing metadata; per-round
    /// work deltas are derived at serialisation time).
    pub work: CostReport,
}

/// One closed (or still-open) span.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: String,
    parent: Option<usize>,
    start_ms: f64,
    end_ms: f64,
    /// Meter snapshot at open; `work` is the delta computed at close.
    open_work: CostReport,
    work: CostReport,
    /// Tracer-wide memory high-water observed by the time the span closed.
    mem_bytes: u64,
    closed: bool,
    /// Timing-only spans ([`timing_span`]) are excluded from the canonical
    /// projection: their existence depends on configuration the canonical
    /// trace must be invariant to (e.g. the spatial-index build only runs
    /// under `--backend spatial`).
    canonical: bool,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    events: Vec<RoundEvent>,
    stack: Vec<usize>,
}

/// Aggregated per-phase summary row (all closed spans sharing a name).
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Span name.
    pub name: String,
    /// Number of spans aggregated under this name.
    pub count: u64,
    /// Summed wall-clock milliseconds.
    pub wall_ms: f64,
    /// Summed element-op delta.
    pub element_ops: u64,
    /// Summed round delta.
    pub rounds: u64,
    /// `wall_ms` as a fraction of the total traced duration.
    pub share: f64,
}

/// Records a span tree plus round events; shared via `Arc` and installed
/// into a thread-local so instrumentation sites need no handle.
#[derive(Debug)]
pub struct Tracer {
    detail: TraceDetail,
    progress: bool,
    origin: Instant,
    mem_high: AtomicU64,
    state: Mutex<TraceState>,
}

impl Tracer {
    /// Creates an empty tracer at the given detail level.
    pub fn new(detail: TraceDetail) -> Self {
        Tracer {
            detail,
            progress: false,
            origin: Instant::now(),
            mem_high: AtomicU64::new(0),
            state: Mutex::new(TraceState::default()),
        }
    }

    /// Streams round events to stderr as they are recorded (for `--progress`).
    pub fn with_progress(mut self) -> Self {
        self.progress = true;
        self
    }

    /// The detail level this tracer records at.
    pub fn detail(&self) -> TraceDetail {
        self.detail
    }

    fn now_ms(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e3
    }

    /// Raises the memory high-water mark (oracle/instance `memory_bytes`
    /// probes); timing metadata only.
    pub fn note_memory(&self, bytes: u64) {
        self.mem_high.fetch_max(bytes, Ordering::Relaxed);
    }

    /// The memory high-water mark observed so far.
    pub fn memory_high_water(&self) -> u64 {
        self.mem_high.load(Ordering::Relaxed)
    }

    fn open_span(&self, name: &str, open_work: CostReport, canonical: bool) -> usize {
        let at = self.now_ms();
        let mut st = self.state.lock().expect("trace state poisoned");
        let idx = st.spans.len();
        let parent = st.stack.last().copied();
        st.spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            start_ms: at,
            end_ms: at,
            open_work,
            work: CostReport::default(),
            mem_bytes: 0,
            closed: false,
            canonical,
        });
        st.stack.push(idx);
        idx
    }

    fn close_span(&self, idx: usize, close_work: Option<CostReport>) {
        let at = self.now_ms();
        let mem = self.memory_high_water();
        let mut st = self.state.lock().expect("trace state poisoned");
        // Spans close LIFO by RAII construction; tolerate (and repair) a
        // mismatched stack rather than poisoning the whole trace.
        if let Some(pos) = st.stack.iter().rposition(|&i| i == idx) {
            st.stack.truncate(pos);
        }
        let span = &mut st.spans[idx];
        span.end_ms = at;
        span.mem_bytes = mem;
        span.closed = true;
        if let Some(now) = close_work {
            span.work = now.since(&span.open_work);
        }
    }

    fn record_round(&self, round: u64, frontier: u64, work: CostReport) {
        let at = self.now_ms();
        let mut st = self.state.lock().expect("trace state poisoned");
        let span = st.stack.last().copied();
        if self.progress {
            let name = span
                .map(|i| st.spans[i].name.as_str())
                .unwrap_or("(no span)");
            eprintln!(
                "[progress] {name} round={round} frontier={frontier} work={} t={at:.1}ms",
                work.element_ops
            );
        }
        st.events.push(RoundEvent {
            span,
            round,
            frontier,
            at_ms: at,
            work,
        });
    }

    /// Wall-clock milliseconds per direct child phase of the span `root`,
    /// aggregated by name in first-encounter order. This is what the
    /// registry wrapper stamps into `Run`'s timing metadata as
    /// `phase_wall_ms`.
    pub fn phase_walls(&self, root: usize) -> Vec<(String, f64)> {
        let st = self.state.lock().expect("trace state poisoned");
        let mut out: Vec<(String, f64)> = Vec::new();
        for span in st
            .spans
            .iter()
            .filter(|s| s.parent == Some(root) && s.closed)
        {
            let wall = span.end_ms - span.start_ms;
            match out.iter_mut().find(|(name, _)| *name == span.name) {
                Some((_, acc)) => *acc += wall,
                None => out.push((span.name.clone(), wall)),
            }
        }
        out
    }

    /// Aggregated per-name summary over all closed spans, in
    /// first-encounter order. `share` is relative to the latest span end
    /// time (the total traced duration).
    pub fn phase_summary(&self) -> Vec<PhaseSummary> {
        let st = self.state.lock().expect("trace state poisoned");
        let total = st
            .spans
            .iter()
            .filter(|s| s.closed)
            .map(|s| s.end_ms)
            .fold(0.0_f64, f64::max);
        let mut out: Vec<PhaseSummary> = Vec::new();
        for span in st.spans.iter().filter(|s| s.closed) {
            let wall = span.end_ms - span.start_ms;
            let row = match out.iter_mut().find(|r| r.name == span.name) {
                Some(row) => row,
                None => {
                    out.push(PhaseSummary {
                        name: span.name.clone(),
                        count: 0,
                        wall_ms: 0.0,
                        element_ops: 0,
                        rounds: 0,
                        share: 0.0,
                    });
                    out.last_mut().expect("just pushed")
                }
            };
            row.count += 1;
            row.wall_ms += wall;
            row.element_ops += span.work.element_ops;
            row.rounds += span.work.rounds;
        }
        if total > 0.0 {
            for row in &mut out {
                row.share = row.wall_ms / total;
            }
        }
        out
    }

    /// Full trace as Chrome trace-event JSON (`chrome://tracing` /
    /// Perfetto loadable): complete spans as `ph:"X"` events with the full
    /// counter deltas in `args`, round events as `ph:"i"` instants, plus a
    /// `summary` array (per-phase wall/work/share) and the memory
    /// high-water. Extra top-level keys are ignored by the viewers.
    pub fn chrome_json(&self) -> String {
        let st = self.state.lock().expect("trace state poisoned");
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str("\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for span in st.spans.iter().filter(|s| s.closed) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":1,\
                 \"args\":{{\"element_ops\":{},\"primitive_calls\":{},\"sort_calls\":{},\
                 \"rounds\":{},\"mem_bytes\":{}}}}}",
                escape(&span.name),
                fmt_num(span.start_ms * 1e3),
                fmt_num((span.end_ms - span.start_ms) * 1e3),
                span.work.element_ops,
                span.work.primitive_calls,
                span.work.sort_calls,
                span.work.rounds,
                span.mem_bytes,
            ));
        }
        for (i, ev) in st.events.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            // Per-round work delta: cumulative snapshot minus the previous
            // event in the same span (or the span's open snapshot).
            let base = st.events[..i]
                .iter()
                .rev()
                .find(|p| p.span == ev.span)
                .map(|p| p.work)
                .or_else(|| ev.span.map(|s| st.spans[s].open_work))
                .unwrap_or_default();
            let delta = ev.work.since(&base);
            out.push_str(&format!(
                "{{\"name\":\"round\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":1,\"s\":\"t\",\
                 \"args\":{{\"round\":{},\"frontier\":{},\"work_delta\":{}}}}}",
                fmt_num(ev.at_ms * 1e3),
                ev.round,
                ev.frontier,
                delta.element_ops,
            ));
        }
        out.push_str("],\"memory_bytes\":");
        out.push_str(&self.memory_high_water().to_string());
        out.push_str(",\"summary\":[");
        drop(st);
        for (i, row) in self.phase_summary().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"wall_ms\":{},\"element_ops\":{},\
                 \"rounds\":{},\"share\":{}}}",
                escape(&row.name),
                row.count,
                fmt_num(row.wall_ms),
                row.element_ops,
                row.rounds,
                fmt_num(row.share),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Canonical projection: span topology + per-span round deltas + round
    /// events `{round, frontier}`, all timestamps/work/memory stripped.
    /// Timing-only spans ([`timing_span`]) are filtered out (parents are
    /// remapped to the nearest canonical ancestor, events under them are
    /// dropped). Byte-identical across backends, event engines, and thread
    /// counts for the same workload and configuration — what the
    /// determinism tests and the CI smoke step compare.
    pub fn canonical_json(&self) -> String {
        let st = self.state.lock().expect("trace state poisoned");
        // Map original span indices to canonical-only indices; timing-only
        // spans map to None.
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(st.spans.len());
        let mut kept = 0usize;
        for span in &st.spans {
            if span.canonical {
                remap.push(Some(kept));
                kept += 1;
            } else {
                remap.push(None);
            }
        }
        // Nearest canonical ancestor of a span, walking through any
        // timing-only links in the parent chain.
        let canon_ancestor = |mut idx: Option<usize>| -> Option<usize> {
            while let Some(i) = idx {
                if let Some(mapped) = remap[i] {
                    return Some(mapped);
                }
                idx = st.spans[i].parent;
            }
            None
        };
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"");
        out.push_str(TRACE_SCHEMA);
        out.push_str(".canonical\",\"spans\":[");
        let mut first = true;
        for span in st.spans.iter().filter(|s| s.canonical) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"parent\":{},\"rounds\":{}}}",
                escape(&span.name),
                match canon_ancestor(span.parent) {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                },
                span.work.rounds,
            ));
        }
        out.push_str("],\"events\":[");
        first = true;
        for ev in &st.events {
            // Events on timing-only spans are themselves configuration
            // artifacts; drop them rather than re-parenting.
            let span = match ev.span {
                Some(s) => match remap[s] {
                    Some(mapped) => Some(mapped),
                    None => continue,
                },
                None => None,
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"span\":{},\"round\":{},\"frontier\":{}}}",
                match span {
                    Some(s) => s.to_string(),
                    None => "null".to_string(),
                },
                ev.round,
                ev.frontier,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers; this keeps
/// the output valid even if one ever isn't).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a finite f64 as JSON (Rust's `Display` for `f64` never emits
/// exponent notation, so the output is always a valid JSON number).
fn fmt_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

thread_local! {
    /// Installed tracers, innermost last. A stack so nested harnesses
    /// (bench driving the registry wrapper) restore cleanly.
    static CURRENT: RefCell<Vec<Arc<Tracer>>> = const { RefCell::new(Vec::new()) };
}

/// Uninstalls the tracer pushed by the matching [`install`] on drop.
#[derive(Debug)]
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Installs `tracer` as the current thread's tracer until the returned
/// guard drops. Instrumentation sites ([`span`], [`round`]) pick it up via
/// the thread-local; nothing is recorded while no tracer is installed.
#[must_use = "dropping the guard uninstalls the tracer"]
pub fn install(tracer: Arc<Tracer>) -> InstallGuard {
    CURRENT.with(|c| c.borrow_mut().push(tracer));
    InstallGuard { _private: () }
}

/// The currently installed tracer, if any.
pub fn current() -> Option<Arc<Tracer>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Whether any tracer is installed on this thread.
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// Whether the installed tracer records per-round events. Call sites use
/// this (or the closure form of [`round`]) to skip frontier-size
/// computations that would otherwise cost `O(n)` per round.
pub fn rounds_enabled() -> bool {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .is_some_and(|t| t.detail() == TraceDetail::Rounds)
    })
}

/// RAII span guard: opens a span on construction, closes it (recording the
/// meter delta) on drop. A no-op when no tracer is installed.
#[derive(Debug)]
#[must_use = "binding the span to `_` closes it immediately"]
pub struct Span<'a> {
    tracer: Option<Arc<Tracer>>,
    idx: usize,
    meter: Option<&'a CostMeter>,
}

impl<'a> Span<'a> {
    /// The span's index in the tracer's span list, if one was recorded
    /// (used by the registry wrapper to aggregate child phases).
    pub fn index(&self) -> Option<usize> {
        self.tracer.as_ref().map(|_| self.idx)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer.take() {
            tracer.close_span(self.idx, self.meter.map(|m| m.report()));
        }
    }
}

/// Opens a span named `name` under the innermost open span. The meter, when
/// given, is snapshotted at open and the counter *delta* is recorded at
/// close, so nested spans never double-count (each span's delta is
/// inclusive of its children, like inclusive time in a profiler).
pub fn span<'a>(name: &str, meter: Option<&'a CostMeter>) -> Span<'a> {
    open(name, meter, true)
}

/// Opens a timing-only span: it appears in the Chrome export and the phase
/// summary but is excluded from the canonical projection. Use for phases
/// whose *existence* depends on configuration the canonical trace must be
/// invariant to — e.g. the spatial-index build only runs under
/// `--backend spatial`.
pub fn timing_span(name: &str) -> Span<'static> {
    open(name, None, false)
}

fn open<'a>(name: &str, meter: Option<&'a CostMeter>, canonical: bool) -> Span<'a> {
    match current() {
        Some(tracer) => {
            let open = meter.map(|m| m.report()).unwrap_or_default();
            let idx = tracer.open_span(name, open, canonical);
            Span {
                tracer: Some(tracer),
                idx,
                meter,
            }
        }
        None => Span {
            tracer: None,
            idx: 0,
            meter: None,
        },
    }
}

/// Records a per-round event on the innermost open span. The frontier size
/// is computed by the closure only when the installed tracer records
/// rounds, so `O(n)` counts (alive vertices, unfrozen clients) cost nothing
/// on untraced runs.
pub fn round<F: FnOnce() -> u64>(round: u64, frontier: F, meter: &CostMeter) {
    let tracer = CURRENT.with(|c| {
        c.borrow()
            .last()
            .filter(|t| t.detail() == TraceDetail::Rounds)
            .cloned()
    });
    if let Some(tracer) = tracer {
        tracer.record_round(round, frontier(), meter.report());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_tracer_means_no_ops() {
        assert!(!enabled());
        let meter = CostMeter::new();
        let s = span("solo", Some(&meter));
        assert_eq!(s.index(), None);
        drop(s);
        round(
            1,
            || panic!("frontier must not be computed untraced"),
            &meter,
        );
    }

    #[test]
    fn span_tree_topology_and_deltas() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Rounds));
        let guard = install(Arc::clone(&tracer));
        let meter = CostMeter::new();
        {
            let root = span("solve", Some(&meter));
            assert_eq!(root.index(), Some(0));
            {
                let _a = span("build", Some(&meter));
                meter.add_primitive(10);
            }
            {
                let _b = span("rounds", Some(&meter));
                meter.add_round();
                round(1, || 42, &meter);
                meter.add_round();
                round(2, || 17, &meter);
            }
        }
        drop(guard);
        let canonical = tracer.canonical_json();
        assert_eq!(
            canonical,
            "{\"schema\":\"parfaclo.trace.v1.canonical\",\"spans\":[\
             {\"name\":\"solve\",\"parent\":null,\"rounds\":2},\
             {\"name\":\"build\",\"parent\":0,\"rounds\":0},\
             {\"name\":\"rounds\",\"parent\":0,\"rounds\":2}],\
             \"events\":[{\"span\":2,\"round\":1,\"frontier\":42},\
             {\"span\":2,\"round\":2,\"frontier\":17}]}"
        );
        let phases = tracer.phase_walls(0);
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "build");
        assert_eq!(phases[1].0, "rounds");
        let chrome = tracer.chrome_json();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"name\":\"solve\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"frontier\":42"));
        assert!(chrome.contains(TRACE_SCHEMA));
    }

    #[test]
    fn nested_spans_do_not_double_count() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Phases));
        let guard = install(Arc::clone(&tracer));
        let meter = CostMeter::new();
        {
            let _outer = span("outer", Some(&meter));
            meter.add_work(5);
            {
                let _inner = span("inner", Some(&meter));
                meter.add_work(100);
            }
            meter.add_work(7);
        }
        drop(guard);
        let st = tracer.state.lock().unwrap();
        let outer = &st.spans[0];
        let inner = &st.spans[1];
        assert_eq!(inner.work.element_ops, 100, "inner sees only its own work");
        assert_eq!(
            outer.work.element_ops, 112,
            "outer is inclusive of the nested span, charged exactly once"
        );
    }

    #[test]
    fn phases_detail_skips_round_events_and_frontier_closures() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Phases));
        let guard = install(Arc::clone(&tracer));
        assert!(enabled());
        assert!(!rounds_enabled());
        let meter = CostMeter::new();
        let _s = span("loop", Some(&meter));
        round(
            1,
            || panic!("frontier closure must not run at Phases detail"),
            &meter,
        );
        drop(_s);
        drop(guard);
        assert!(tracer.canonical_json().contains("\"events\":[]"));
    }

    #[test]
    fn timing_spans_are_chrome_only_and_parents_remap_through_them() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Rounds));
        let guard = install(Arc::clone(&tracer));
        let meter = CostMeter::new();
        {
            let _root = span("solve", Some(&meter));
            {
                let _idx = timing_span("spatial-index");
                // A canonical span nested under a timing-only one must
                // re-parent to the nearest canonical ancestor.
                let _leaf = span("leaf", Some(&meter));
                round(1, || 7, &meter);
            }
        }
        drop(guard);
        let canonical = tracer.canonical_json();
        assert_eq!(
            canonical,
            "{\"schema\":\"parfaclo.trace.v1.canonical\",\"spans\":[\
             {\"name\":\"solve\",\"parent\":null,\"rounds\":0},\
             {\"name\":\"leaf\",\"parent\":0,\"rounds\":0}],\
             \"events\":[{\"span\":1,\"round\":1,\"frontier\":7}]}"
        );
        let chrome = tracer.chrome_json();
        assert!(chrome.contains("\"name\":\"spatial-index\""));
    }

    #[test]
    fn events_under_timing_spans_are_dropped_from_canonical() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Rounds));
        let guard = install(Arc::clone(&tracer));
        let meter = CostMeter::new();
        {
            let _t = timing_span("index-build");
            round(1, || 99, &meter);
        }
        drop(guard);
        let canonical = tracer.canonical_json();
        assert!(canonical.contains("\"spans\":[]"));
        assert!(canonical.contains("\"events\":[]"));
        assert!(tracer.chrome_json().contains("\"frontier\":99"));
    }

    #[test]
    fn install_guard_restores_previous_tracer() {
        let a = Arc::new(Tracer::new(TraceDetail::Phases));
        let b = Arc::new(Tracer::new(TraceDetail::Rounds));
        let ga = install(Arc::clone(&a));
        {
            let _gb = install(Arc::clone(&b));
            assert!(rounds_enabled());
        }
        assert!(enabled());
        assert!(!rounds_enabled(), "outer tracer restored");
        drop(ga);
        assert!(!enabled());
    }

    #[test]
    fn canonical_is_timestamp_free_and_memory_free() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Rounds));
        let guard = install(Arc::clone(&tracer));
        tracer.note_memory(123_456);
        let meter = CostMeter::new();
        {
            let _s = span("work", Some(&meter));
            std::thread::sleep(std::time::Duration::from_millis(2));
            meter.add_work(9);
        }
        drop(guard);
        let canonical = tracer.canonical_json();
        assert!(!canonical.contains("ms"));
        assert!(!canonical.contains("123456"));
        assert!(!canonical.contains("element_ops"));
        let chrome = tracer.chrome_json();
        assert!(chrome.contains("\"memory_bytes\":123456"));
        assert!(chrome.contains("\"element_ops\":9"));
    }

    #[test]
    fn summary_aggregates_repeated_names() {
        let tracer = Arc::new(Tracer::new(TraceDetail::Phases));
        let guard = install(Arc::clone(&tracer));
        let meter = CostMeter::new();
        for _ in 0..3 {
            let _s = span("probe", Some(&meter));
            meter.add_round();
        }
        drop(guard);
        let summary = tracer.phase_summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].name, "probe");
        assert_eq!(summary[0].count, 3);
        assert_eq!(summary[0].rounds, 3);
        assert!(summary[0].share > 0.0 && summary[0].share <= 1.0 + 1e-9);
    }
}
