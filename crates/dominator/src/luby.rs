//! Luby's maximal independent set algorithm on an explicit graph.
//!
//! This is the classical algorithm the paper builds on (Algorithm 3.1): in each round
//! every live node draws a random priority, nodes that hold a local minimum among their
//! live neighbours enter the independent set, and selected nodes plus their neighbours
//! are removed. The expected number of rounds is `O(log n)`.
//!
//! The round body runs on the frontier engine of [`parfaclo_graph`]: the set of live
//! nodes is a [`VertexSubset`], the neighbour minimum is one [`edge_map_min`], and the
//! removal wave is one [`edge_map`]. The algorithm is therefore generic over any
//! [`Neighbors`] representation — dense bit matrix or CSR — and produces identical
//! output on either, because dead nodes carry priority `+∞` (an unfiltered neighbour
//! minimum equals the live-filtered one) and `min` / set-union combines are
//! order-independent.
//!
//! The cost meter still charges the paper's dense PRAM model (`O(n²)` per round)
//! whatever the representation: the model prices the *algorithm*, not the container,
//! and keeping the charge representation-independent is what lets canonical run JSON
//! stay byte-identical across graph backends.
//!
//! The dominator-set variants in [`crate::maxdom`] and [`crate::maxudom`] simulate this
//! algorithm on the *square* of a graph without materialising it; this explicit version
//! is used as the reference implementation in tests (run it on an explicitly squared
//! graph and compare invariants) and is exposed because it is useful in its own right.

use crate::graph::DenseGraph;
use crate::DominatorResult;
use parfaclo_graph::{edge_map, edge_map_min, Neighbors, VertexSubset};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use parfaclo_trace as trace;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Draws one distinct priority per node: the high 32 bits are random, the low 32 bits
/// are the node index, so priorities never collide (the paper instead draws from
/// `{1, ..., 2n^4}` and accepts a small collision probability).
pub(crate) fn draw_priorities(rng: &mut ChaCha8Rng, n: usize, alive: &[bool]) -> Vec<u64> {
    (0..n)
        .map(|i| {
            if alive[i] {
                ((rng.gen::<u32>() as u64) << 32) | i as u64
            } else {
                u64::MAX
            }
        })
        .collect()
}

/// Computes a maximal independent set of `g` using Luby's algorithm.
///
/// Deterministic for a fixed `seed`. Returns the selected nodes (sorted) and the number
/// of rounds executed.
pub fn maximal_independent_set<G: Neighbors>(
    g: &G,
    seed: u64,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> DominatorResult {
    let n = g.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut alive = vec![true; n];
    let mut selected = vec![false; n];
    let mut rounds = 0usize;

    while alive.iter().any(|&a| a) {
        rounds += 1;
        meter.add_round();
        // Luby-round frontier = live vertices; counted only when traced.
        trace::round(
            rounds as u64,
            || alive.iter().filter(|&&a| a).count() as u64,
            meter,
        );
        let pri = draw_priorities(&mut rng, n, &alive);
        meter.add_primitive(n as u64);
        let alive_set = VertexSubset::from_mask(&alive);

        // Select step: node i is selected if it is alive and its priority is
        // strictly smaller than every live neighbour's priority. Dead nodes
        // hold priority +∞, so the unfiltered neighbour minimum the engine
        // computes equals the live-filtered minimum.
        meter.add_primitive((n * n) as u64);
        let min_nb = edge_map_min(g, &alive_set, &pri, false, policy);
        let newly: Vec<bool> = (0..n).map(|i| alive[i] && pri[i] < min_nb[i]).collect();

        // Removal step: selected nodes and their neighbours leave the graph.
        meter.add_primitive((n * n) as u64);
        let newly_set = VertexSubset::from_mask(&newly);
        let killed = newly_set.union(&edge_map(g, &newly_set, |_| true, policy));
        let kill_mask = killed.to_mask();

        for i in 0..n {
            if newly[i] {
                selected[i] = true;
            }
            if kill_mask[i] {
                alive[i] = false;
            }
        }
    }

    DominatorResult {
        selected: (0..n).filter(|&i| selected[i]).collect(),
        rounds,
    }
}

/// Checks that `set` is an independent set of `g` (no two members adjacent).
pub fn is_independent_set(g: &DenseGraph, set: &[usize]) -> bool {
    for (idx, &a) in set.iter().enumerate() {
        for &b in &set[idx + 1..] {
            if g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

/// Checks that `set` is a *maximal* independent set of `g`: independent, and every
/// non-member has a neighbour in the set.
pub fn is_maximal_independent_set(g: &DenseGraph, set: &[usize]) -> bool {
    if !is_independent_set(g, set) {
        return false;
    }
    let in_set = {
        let mut v = vec![false; g.n()];
        for &i in set {
            v[i] = true;
        }
        v
    };
    (0..g.n()).all(|i| in_set[i] || g.neighbors(i).iter().any(|&j| in_set[j]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_graph::CsrGraph;

    fn meter() -> CostMeter {
        CostMeter::new()
    }

    #[test]
    fn empty_graph_selects_everything() {
        let g = DenseGraph::new(5);
        let r = maximal_independent_set(&g, 1, ExecPolicy::Sequential, &meter());
        assert_eq!(r.selected, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn complete_graph_selects_one() {
        let mut g = DenseGraph::new(6);
        for a in 0..6 {
            for b in (a + 1)..6 {
                g.add_edge(a, b);
            }
        }
        let r = maximal_independent_set(&g, 2, ExecPolicy::Sequential, &meter());
        assert_eq!(r.selected.len(), 1);
        assert!(is_maximal_independent_set(&g, &r.selected));
    }

    #[test]
    fn path_graph_mis_is_valid() {
        let g = DenseGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        for seed in 0..10 {
            let r = maximal_independent_set(&g, seed, ExecPolicy::Sequential, &meter());
            assert!(is_maximal_independent_set(&g, &r.selected), "seed {seed}");
            // A maximal independent set of P6 has between 2 and 3 nodes.
            assert!(r.selected.len() >= 2 && r.selected.len() <= 3);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = DenseGraph::from_edges(8, &[(0, 1), (2, 3), (4, 5), (6, 7), (1, 2), (5, 6)]);
        let a = maximal_independent_set(&g, 99, ExecPolicy::Sequential, &meter());
        let b = maximal_independent_set(&g, 99, ExecPolicy::Parallel, &meter());
        assert_eq!(a, b, "parallel and sequential must agree for the same seed");
    }

    #[test]
    fn dense_and_csr_representations_agree() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for trial in 0..10 {
            let n = rng.gen_range(2..40);
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.25) {
                        edges.push((a, b));
                    }
                }
            }
            let d = DenseGraph::from_edges(n, &edges);
            let c = CsrGraph::from_edges(n, &edges);
            for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                assert_eq!(
                    maximal_independent_set(&d, trial, policy, &meter()),
                    maximal_independent_set(&c, trial, policy, &meter()),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn random_graphs_produce_valid_mis() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for trial in 0..20 {
            let n = rng.gen_range(2..30);
            let mut g = DenseGraph::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.3) {
                        g.add_edge(a, b);
                    }
                }
            }
            let r = maximal_independent_set(&g, trial, ExecPolicy::Sequential, &meter());
            assert!(is_maximal_independent_set(&g, &r.selected), "trial {trial}");
        }
    }

    #[test]
    fn round_count_is_recorded() {
        let g = DenseGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let m = meter();
        let r = maximal_independent_set(&g, 3, ExecPolicy::Sequential, &m);
        assert!(r.rounds >= 1);
        assert_eq!(m.report().rounds as usize, r.rounds);
    }

    #[test]
    fn independence_checkers() {
        let g = DenseGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_maximal_independent_set(&g, &[0, 2]));
        assert!(!is_maximal_independent_set(&g, &[0]));
    }
}
