//! [`Solver`] adapters for the dominator-set routines.
//!
//! The dominator-set algorithms operate on graphs, while the unified runner
//! deals in metric instances; following the way the paper's own callers use
//! them (k-center's feasibility probe, primal-dual's conflict resolution),
//! these adapters *threshold* a [`ClusterInstance`] into a [`ThresholdGraph`]
//! (nodes adjacent when within distance `t`) and run the set computation on
//! that. The threshold comes from [`RunConfig::threshold`], defaulting to
//! the median distinct pairwise distance, and the reported "cost" is the
//! selected-set size (the natural objective for maximal-set outputs).
//!
//! The graph representation comes from [`RunConfig::graph`]: `Dense` keeps
//! the paper's bit matrix (and errors past its 4 GiB cap, pointing at
//! `--graph csr`); `Csr` stores only the edges present, which is what lets
//! the dominator family run on million-node sparse metrics. Canonical run
//! output is byte-identical between the two wherever both can run.

use crate::graph::ThresholdGraph;
use crate::luby::maximal_independent_set;
use crate::maxdom::max_dom;
use crate::DominatorResult;
use parfaclo_api::{ProblemKind, Run, RunConfig, Solver};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use parfaclo_metric::{ClusterInstance, DistanceOracle};
use parfaclo_trace as trace;

/// Deriving the default threshold sorts all `n²` pairwise distances —
/// `8n²` bytes of scratch. Past this bound (the same 4 GiB ceiling the
/// dense structures use) the derivation is refused and the caller must
/// pass an explicit threshold.
const THRESHOLD_DERIVE_BYTES_CAP: u64 = 4 << 30;

/// The distance threshold used to build the graph: explicit if configured,
/// otherwise the median of the distinct pairwise distances (deterministic,
/// and dense enough to make the set computation non-trivial).
///
/// Deriving the median materialises and sorts all pairwise distances, so on
/// instances where that scratch would exceed 4 GiB an explicit
/// `--threshold` is required (the whole point of the CSR backend at that
/// scale is *not* to touch all `n²` pairs).
pub(crate) fn resolve_threshold(inst: &ClusterInstance, cfg: &RunConfig) -> Result<f64, String> {
    if let Some(t) = cfg.threshold {
        return Ok(t);
    }
    let n = inst.n() as u64;
    let bytes = 8 * n * n;
    if bytes > THRESHOLD_DERIVE_BYTES_CAP {
        return Err(format!(
            "deriving the default threshold sorts all n² pairwise distances \
             ({:.1} GiB of scratch for n = {}); pass an explicit --threshold \
             for instances this large",
            bytes as f64 / (1u64 << 30) as f64,
            n
        ));
    }
    let distances = inst.distances().sorted_distinct_values();
    Ok(distances[distances.len() / 2])
}

pub(crate) fn threshold_graph(
    inst: &ClusterInstance,
    threshold: f64,
    cfg: &RunConfig,
) -> Result<ThresholdGraph, String> {
    ThresholdGraph::build(inst.distances(), threshold, cfg.graph)
}

/// Shared envelope for the set computations: threshold the instance into a
/// graph, run `algorithm`, report the selected-set size as the cost.
fn dominator_run(
    solver: &(impl Solver + ?Sized),
    inst: &ClusterInstance,
    cfg: &RunConfig,
    algorithm: impl Fn(&ThresholdGraph, u64, ExecPolicy, &CostMeter) -> DominatorResult,
) -> Result<Run, String> {
    let meter = CostMeter::new();
    let threshold = {
        let _span = trace::span("derive-threshold", Some(&meter));
        resolve_threshold(inst, cfg)?
    };
    let g = {
        let _span = trace::span("threshold-graph", Some(&meter));
        threshold_graph(inst, threshold, cfg)?
    };
    let result = {
        let _span = trace::span("luby-rounds", Some(&meter));
        algorithm(&g, cfg.seed, cfg.policy, &meter)
    };
    Ok(Run::new(Solver::name(solver), ProblemKind::DominatorSet)
        .with_guarantee(Solver::guarantee(solver))
        .with_instance_size(inst.n(), inst.n() * inst.n())
        .with_cost(result.selected.len() as f64)
        .with_selected(result.selected)
        .with_rounds(result.rounds, 0)
        .with_work(meter.report())
        .with_extra("threshold", threshold)
        .with_extra("graph_edges", g.num_edges() as f64)
        .with_config_echo(cfg))
}

/// `MaxDom` (Section 3) on the threshold graph of a metric instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxDomSolver;

impl Solver for MaxDomSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "maxdom"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::DominatorSet
    }

    fn paper_ref(&self) -> &str {
        "Section 3, Lemma 3.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        dominator_run(self, inst, cfg, max_dom)
    }
}

/// Luby's maximal independent set on the threshold graph of a metric
/// instance (the reference algorithm the dominator variants simulate).
#[derive(Debug, Clone, Copy, Default)]
pub struct MisSolver;

impl Solver for MisSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "mis"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::DominatorSet
    }

    fn paper_ref(&self) -> &str {
        "Algorithm 3.1 (Luby)"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        dominator_run(self, inst, cfg, maximal_independent_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DenseGraph;
    use crate::maxdom::is_maximal_dominator_set;
    use parfaclo_graph::GraphBackend;
    use parfaclo_metric::gen::{self, GenParams};

    fn tiny() -> ClusterInstance {
        gen::clustering(GenParams::uniform_square(20, 20).with_seed(8))
    }

    fn dense_graph(inst: &ClusterInstance, threshold: f64) -> DenseGraph {
        DenseGraph::from_threshold_oracle(inst.distances(), threshold)
    }

    #[test]
    fn maxdom_run_is_a_valid_dominator_set() {
        let inst = tiny();
        let cfg = RunConfig::new(0.1).with_seed(4);
        let run = MaxDomSolver.solve(&inst, &cfg).expect("feasible");
        run.validate().expect("valid envelope");
        let threshold = resolve_threshold(&inst, &cfg).unwrap();
        let g = dense_graph(&inst, threshold);
        assert!(is_maximal_dominator_set(&g, &run.selected));
        assert_eq!(run.cost, run.selected.len() as f64);
    }

    #[test]
    fn explicit_threshold_is_respected() {
        let inst = tiny();
        let cfg = RunConfig::new(0.1).with_threshold(5.0);
        let run = MaxDomSolver.solve(&inst, &cfg).expect("feasible");
        assert_eq!(
            run.extra.iter().find(|(k, _)| k == "threshold").unwrap().1,
            5.0
        );
    }

    #[test]
    fn mis_is_independent_in_threshold_graph() {
        let inst = tiny();
        let cfg = RunConfig::new(0.1).with_seed(2);
        let run = MisSolver.solve(&inst, &cfg).expect("feasible");
        run.validate().expect("valid envelope");
        let g = dense_graph(&inst, resolve_threshold(&inst, &cfg).unwrap());
        for (idx, &a) in run.selected.iter().enumerate() {
            for &b in &run.selected[idx + 1..] {
                assert!(!g.has_edge(a, b), "selected nodes {a},{b} adjacent");
            }
        }
    }

    #[test]
    fn csr_and_dense_graph_backends_agree_on_canonical_json() {
        let inst = tiny();
        for seed in [2, 9] {
            let base = RunConfig::new(0.1).with_seed(seed);
            let dense = MaxDomSolver
                .solve(&inst, &base.clone().with_graph(GraphBackend::Dense))
                .expect("dense feasible");
            let csr = MaxDomSolver
                .solve(&inst, &base.clone().with_graph(GraphBackend::Csr))
                .expect("csr feasible");
            assert_eq!(
                dense.canonical_json(),
                csr.canonical_json(),
                "seed {seed}: graph backend leaked into canonical output"
            );
        }
    }
}
