//! # parfaclo-dominator
//!
//! Maximal independent set and the two dominator-set variants of Section 3 of
//! *Blelloch & Tangwongsan, SPAA 2010*.
//!
//! The paper introduces two variants of maximal independent set (MIS) that are used by
//! nearly every algorithm in the paper:
//!
//! * **Dominator set** `MaxDom(G)`: a maximal set `I ⊆ V(G)` such that no two selected
//!   nodes are adjacent *or share a common neighbour* — equivalently, a maximal
//!   independent set of the square graph `G²`.
//! * **U-dominator set** `MaxUDom(H)`: for a bipartite graph `H = (U, V, E)`, a maximal
//!   set `I ⊆ U` such that no two selected `U`-nodes share a `V`-side neighbour —
//!   equivalently, a maximal independent set of `H' = (U, {uw : ∃z ∈ V, uz, zw ∈ E})`.
//!
//! The crucial implementation point (and the reason the paper gets work-efficient
//! bounds) is that `G²` and `H'` are **never materialised**: Luby's select step is
//! simulated *in place* by propagating each node's random priority to its neighbours
//! twice, taking minima — a constant number of "basic matrix operations" per round
//! (Lemma 3.1).
//!
//! This crate provides:
//!
//! * [`luby::maximal_independent_set`] — classic Luby MIS on an explicit graph (used as
//!   a reference implementation in tests);
//! * [`maxdom::max_dom`] — `MaxDom(G)` without constructing `G²`;
//! * [`maxudom::max_u_dom`] — `MaxUDom(H)` without constructing `H'`.
//!
//! All three run on the frontier engine of [`parfaclo_graph`] and are generic over its
//! graph representations — the dense bit matrices ([`graph::DenseGraph`],
//! [`graph::BipartiteGraph`], re-exported here for compatibility) or the CSR sparse
//! forms ([`graph::CsrGraph`], [`graph::CsrBipartite`]) — with byte-identical output on
//! either.
//!
//! All routines are deterministic given a seed, return the number of Luby rounds
//! executed (so the experiments can check the `O(log n)` round bound), and record their
//! work in a [`parfaclo_matrixops::CostMeter`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod graph;
pub mod luby;
pub mod maxdom;
pub mod maxudom;
pub mod solvers;

pub use graph::{BipartiteGraph, CsrBipartite, CsrGraph, DenseGraph, ThresholdGraph};
pub use luby::maximal_independent_set;
pub use maxdom::max_dom;
pub use maxudom::max_u_dom;
pub use solvers::{MaxDomSolver, MisSolver};

/// Result of a dominator-set (or MIS) computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominatorResult {
    /// The selected node indices, sorted ascending.
    pub selected: Vec<usize>,
    /// Number of Luby rounds the computation took.
    pub rounds: usize,
}
