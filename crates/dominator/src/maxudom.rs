//! `MaxUDom(H)`: maximal U-dominator set of a bipartite graph, computed in place.
//!
//! Given `H = (U, V, E)`, a U-dominator set is a set `I ⊆ U` such that no two members
//! share a `V`-side neighbour; a *maximal* such set is a maximal independent set of the
//! implicit graph `H' = (U, {uw : ∃z ∈ V, uz, zw ∈ E})` (Section 3). The facility-location
//! algorithms use it to make sure each client "pays" for at most one opened facility:
//! the primal-dual post-processing (Section 5), the LP-rounding clean-up step
//! (Section 6.2) and, in spirit, the greedy subselection all call it.
//!
//! As with [`crate::maxdom`], Luby's select step is simulated with two min-propagation
//! passes — U → V and back V → U — so `H'` is never materialised. The passes run on the
//! bipartite frontier primitives of [`parfaclo_graph`], generic over the dense matrix or
//! CSR representation: dead U-nodes carry priority `+∞`, so the unfiltered V-side
//! minimum equals the live-filtered one, and restricting each gather to the frontier's
//! neighbourhood skips only values nothing reads. The cost meter keeps charging the
//! paper's dense `O(|U||V|)`-per-round model regardless of representation.

use crate::graph::BipartiteGraph;
use crate::luby::draw_priorities;
use crate::DominatorResult;
use parfaclo_graph::{
    bi_edge_map_u, bi_edge_map_v, bi_min_into_u, bi_min_into_v, BipartiteNeighbors, VertexSubset,
};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use parfaclo_trace as trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Computes a maximal U-dominator set of the bipartite graph `h`.
///
/// U-side nodes with no `V`-neighbours are always selected (they conflict with nothing,
/// so maximality requires them). Deterministic for a fixed `seed`.
pub fn max_u_dom<H: BipartiteNeighbors>(
    h: &H,
    seed: u64,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> DominatorResult {
    let nu = h.nu();
    let nv = h.nv();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut alive = vec![true; nu];
    let mut selected = vec![false; nu];
    let mut rounds = 0usize;

    while alive.iter().any(|&a| a) {
        rounds += 1;
        meter.add_round();
        // Luby-round frontier = live U-nodes; counted only when traced.
        trace::round(
            rounds as u64,
            || alive.iter().filter(|&&a| a).count() as u64,
            meter,
        );

        // Random priorities for live U-nodes.
        let pri = draw_priorities(&mut rng, nu, &alive);
        meter.add_primitive(nu as u64);
        let alive_set = VertexSubset::from_mask(&alive);

        // V-side minimum: mv[v] = min over U-neighbours u of pri[u]. Dead
        // U-nodes hold +∞, so the unfiltered minimum is the live-filtered
        // one; V-nodes outside the live set's neighbourhood get +∞ — the
        // same value the dense scan produced for them — and are never read.
        meter.add_primitive((nu * nv) as u64);
        let touched_v = bi_edge_map_u(h, &alive_set, policy);
        let mv = bi_min_into_v(h, &touched_v, &pri, policy);

        // Back to U: closed H'-neighbourhood minimum of u.
        meter.add_primitive((nu * nv) as u64);
        let mu = bi_min_into_u(h, &alive_set, &mv, &pri, policy);

        // Select live local minima of H' (distinct priorities ⇒ equality test works).
        let newly: Vec<bool> = (0..nu).map(|u| alive[u] && pri[u] == mu[u]).collect();
        meter.add_primitive(nu as u64);

        // Removal: a V-node covered by a selected U-node blocks all its U-neighbours.
        let newly_set = VertexSubset::from_mask(&newly);
        meter.add_primitive((nu * nv) as u64);
        let v_blocked = bi_edge_map_u(h, &newly_set, policy);
        meter.add_primitive((nu * nv) as u64);
        let blocked_u = bi_edge_map_v(h, &v_blocked, policy);
        let blocked_mask = blocked_u.to_mask();

        for u in 0..nu {
            if newly[u] {
                selected[u] = true;
            }
            if newly[u] || blocked_mask[u] {
                alive[u] = false;
            }
        }
    }

    DominatorResult {
        selected: (0..nu).filter(|&u| selected[u]).collect(),
        rounds,
    }
}

/// Checks that no two members of `set` share a `V`-side neighbour.
pub fn is_u_dominator_independent(h: &BipartiteGraph, set: &[usize]) -> bool {
    for (idx, &a) in set.iter().enumerate() {
        for &b in &set[idx + 1..] {
            if h.share_v_neighbor(a, b) {
                return false;
            }
        }
    }
    true
}

/// Checks that `set` is a **maximal** U-dominator set: valid, and every U-node outside
/// the set shares a `V`-neighbour with some member (so nothing can be added).
pub fn is_maximal_u_dominator_set(h: &BipartiteGraph, set: &[usize]) -> bool {
    if !is_u_dominator_independent(h, set) {
        return false;
    }
    let in_set = {
        let mut v = vec![false; h.nu()];
        for &i in set {
            v[i] = true;
        }
        v
    };
    (0..h.nu()).all(|u| in_set[u] || set.iter().any(|&s| h.share_v_neighbor(u, s)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn meter() -> CostMeter {
        CostMeter::new()
    }

    #[test]
    fn empty_bipartite_graph_selects_all_u() {
        let h = BipartiteGraph::new(4, 3);
        let r = max_u_dom(&h, 0, ExecPolicy::Sequential, &meter());
        assert_eq!(r.selected, vec![0, 1, 2, 3]);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn single_shared_v_node_selects_one_u() {
        // All U-nodes attached to the single V-node: only one can be selected.
        let h = BipartiteGraph::from_edges(5, 1, &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        for seed in 0..5 {
            let r = max_u_dom(&h, seed, ExecPolicy::Sequential, &meter());
            assert_eq!(r.selected.len(), 1, "seed {seed}");
            assert!(is_maximal_u_dominator_set(&h, &r.selected));
        }
    }

    #[test]
    fn disjoint_stars_select_one_each() {
        // U {0,1} share V0; U {2,3} share V1.
        let h = BipartiteGraph::from_edges(4, 2, &[(0, 0), (1, 0), (2, 1), (3, 1)]);
        for seed in 0..5 {
            let r = max_u_dom(&h, seed, ExecPolicy::Sequential, &meter());
            assert_eq!(r.selected.len(), 2, "seed {seed}");
            assert!(is_maximal_u_dominator_set(&h, &r.selected));
        }
    }

    #[test]
    fn isolated_u_nodes_are_always_selected() {
        // U-node 2 has no edges — it must be in every maximal U-dominator set.
        let h = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        for seed in 0..5 {
            let r = max_u_dom(&h, seed, ExecPolicy::Sequential, &meter());
            assert!(r.selected.contains(&2), "seed {seed}: {:?}", r.selected);
            assert!(is_maximal_u_dominator_set(&h, &r.selected));
        }
    }

    #[test]
    fn random_bipartite_graphs_produce_valid_results() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        for trial in 0..20 {
            let nu = rng.gen_range(1..20);
            let nv = rng.gen_range(1..20);
            let mut h = BipartiteGraph::new(nu, nv);
            for u in 0..nu {
                for v in 0..nv {
                    if rng.gen_bool(0.2) {
                        h.add_edge(u, v);
                    }
                }
            }
            let r = max_u_dom(&h, trial, ExecPolicy::Sequential, &meter());
            assert!(
                is_maximal_u_dominator_set(&h, &r.selected),
                "trial {trial} invalid: {:?}",
                r.selected
            );
        }
    }

    #[test]
    fn parallel_matches_sequential_for_same_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (nu, nv) = (60, 50);
        let mut h = BipartiteGraph::new(nu, nv);
        for u in 0..nu {
            for v in 0..nv {
                if rng.gen_bool(0.08) {
                    h.add_edge(u, v);
                }
            }
        }
        let a = max_u_dom(&h, 123, ExecPolicy::Sequential, &meter());
        let b = max_u_dom(&h, 123, ExecPolicy::Parallel, &meter());
        assert_eq!(a, b);
    }

    #[test]
    fn dense_and_csr_representations_agree() {
        use parfaclo_graph::CsrBipartite;
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        for trial in 0..10 {
            let nu = rng.gen_range(1..25);
            let nv = rng.gen_range(1..25);
            let mut edges = Vec::new();
            for u in 0..nu {
                for v in 0..nv {
                    if rng.gen_bool(0.15) {
                        edges.push((u, v));
                    }
                }
            }
            let d = BipartiteGraph::from_edges(nu, nv, &edges);
            let c = CsrBipartite::from_edges(nu, nv, &edges);
            for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                assert_eq!(
                    max_u_dom(&d, trial, policy, &meter()),
                    max_u_dom(&c, trial, policy, &meter()),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn checkers_reject_bad_sets() {
        let h = BipartiteGraph::from_edges(3, 1, &[(0, 0), (1, 0)]);
        assert!(!is_u_dominator_independent(&h, &[0, 1]));
        assert!(is_u_dominator_independent(&h, &[0, 2]));
        assert!(is_maximal_u_dominator_set(&h, &[0, 2]));
        assert!(!is_maximal_u_dominator_set(&h, &[2]));
    }

    #[test]
    fn rounds_are_logarithmic_in_practice() {
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let (nu, nv) = (300, 200);
        let mut h = BipartiteGraph::new(nu, nv);
        for u in 0..nu {
            for v in 0..nv {
                if rng.gen_bool(0.02) {
                    h.add_edge(u, v);
                }
            }
        }
        let r = max_u_dom(&h, 5, ExecPolicy::Parallel, &meter());
        assert!(is_maximal_u_dominator_set(&h, &r.selected));
        assert!(r.rounds <= 25, "expected few rounds, got {}", r.rounds);
    }
}
