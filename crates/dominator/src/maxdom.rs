//! `MaxDom(G)`: maximal dominator set — a maximal independent set of `G²` computed
//! **in place**, i.e. without constructing `G²` (Section 3, Lemma 3.1).
//!
//! Per Luby round the algorithm performs a constant number of frontier operations:
//!
//! 1. every live node draws a random priority;
//! 2. the priorities are propagated to neighbours taking minima, **twice** — after the
//!    second propagation every node knows the minimum priority within its closed radius-2
//!    ball in `G`, which is exactly its closed neighbourhood in `G²`;
//! 3. a live node whose own priority equals that minimum joins the dominator set
//!    (priorities are distinct, so "equals the closed-ball minimum" is the same as
//!    "strictly smaller than every `G²`-neighbour");
//! 4. selection flags are propagated twice the same way, and every live node within
//!    radius 2 of a selected node (including the selected nodes themselves) is removed.
//!
//! Note that the *intermediate* node of a length-2 path may already be dead: edges of
//! `G²` between live nodes persist even when the common neighbour that induced them has
//! been removed, so the propagation in steps 2 and 4 deliberately flows through dead
//! nodes (their own priorities are treated as `+∞` / not-selected, but they still relay).
//! On the frontier engine this means the first min-propagation targets the *closed
//! neighbourhood* of the live set (live nodes plus their relays), not just the live set —
//! the only values the second propagation reads. Values outside that set are never read,
//! so skipping them changes no output byte.
//!
//! The round body is generic over any [`Neighbors`] representation and the cost meter
//! still charges the paper's dense PRAM model (`O(n²)` per propagation) regardless —
//! see [`crate::luby`] for why.

use crate::graph::DenseGraph;
use crate::luby::draw_priorities;
use crate::DominatorResult;
use parfaclo_graph::{edge_map, edge_map_min, Neighbors, VertexSubset};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use parfaclo_trace as trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Computes a maximal dominator set of `g` (maximal independent set of `G²`) without
/// constructing `G²`.
///
/// Deterministic for a fixed `seed`. The returned [`DominatorResult`] carries the number
/// of Luby rounds, which is `O(log n)` in expectation (Lemma 3.1 charges
/// `O(|V|² log |V|)` work in total).
pub fn max_dom<G: Neighbors>(
    g: &G,
    seed: u64,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> DominatorResult {
    let n = g.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut alive = vec![true; n];
    let mut selected = vec![false; n];
    let mut rounds = 0usize;

    while alive.iter().any(|&a| a) {
        rounds += 1;
        meter.add_round();
        // Luby-round frontier = live vertices; the count is only computed
        // when a rounds-level tracer is installed.
        trace::round(
            rounds as u64,
            || alive.iter().filter(|&&a| a).count() as u64,
            meter,
        );

        // Step 1: random priorities for live nodes (+∞ for dead ones).
        let pri = draw_priorities(&mut rng, n, &alive);
        meter.add_primitive(n as u64);
        let alive_set = VertexSubset::from_mask(&alive);

        // Step 2: two min-propagations give the closed radius-2-ball minimum.
        // The first targets N[alive] — live nodes plus the dead relays the
        // second propagation will read through; the second targets only the
        // live nodes whose minima step 3 inspects.
        let relay = alive_set.union(&edge_map(g, &alive_set, |_| true, policy));
        let m1 = edge_map_min(g, &relay, &pri, true, policy);
        let m2 = edge_map_min(g, &alive_set, &m1, true, policy);
        meter.add_primitive((n * n) as u64);
        meter.add_primitive((n * n) as u64);

        // Step 3: select live local minima of G².
        let newly: Vec<bool> = (0..n).map(|i| alive[i] && pri[i] == m2[i]).collect();
        meter.add_primitive(n as u64);

        // Step 4: remove everything within radius 2 of a selected node.
        let newly_set = VertexSubset::from_mask(&newly);
        let s1 = newly_set.union(&edge_map(g, &newly_set, |_| true, policy));
        let s2 = s1.union(&edge_map(g, &s1, |_| true, policy));
        meter.add_primitive((n * n) as u64);
        meter.add_primitive((n * n) as u64);
        let s2_mask = s2.to_mask();

        for i in 0..n {
            if newly[i] {
                selected[i] = true;
            }
            if s2_mask[i] {
                alive[i] = false;
            }
        }
    }

    DominatorResult {
        selected: (0..n).filter(|&i| selected[i]).collect(),
        rounds,
    }
}

/// Checks that `set` is a valid **dominator set** of `g`: no two members are adjacent in
/// `G²` (i.e. adjacent in `G` or sharing a common neighbour).
pub fn is_dominator_independent(g: &DenseGraph, set: &[usize]) -> bool {
    for (idx, &a) in set.iter().enumerate() {
        for &b in &set[idx + 1..] {
            if g.adjacent_in_square(a, b) {
                return false;
            }
        }
    }
    true
}

/// Checks that `set` is a **maximal** dominator set of `g`: valid, and no node outside
/// the set could be added (every outside node is adjacent in `G²` to some member).
pub fn is_maximal_dominator_set(g: &DenseGraph, set: &[usize]) -> bool {
    if !is_dominator_independent(g, set) {
        return false;
    }
    let in_set = {
        let mut v = vec![false; g.n()];
        for &i in set {
            v[i] = true;
        }
        v
    };
    (0..g.n()).all(|i| in_set[i] || set.iter().any(|&s| g.adjacent_in_square(i, s)))
}

/// Builds `G²` explicitly (quadratic work per node pair). Only used by tests to compare
/// the in-place algorithm against running plain MIS on the materialised square.
pub fn explicit_square(g: &DenseGraph) -> DenseGraph {
    let n = g.n();
    let mut sq = DenseGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if g.adjacent_in_square(a, b) {
                sq.add_edge(a, b);
            }
        }
    }
    sq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::luby::{is_maximal_independent_set, maximal_independent_set};
    use parfaclo_graph::CsrGraph;
    use rand::Rng;

    fn meter() -> CostMeter {
        CostMeter::new()
    }

    #[test]
    fn empty_graph_selects_everything() {
        let g = DenseGraph::new(4);
        let r = max_dom(&g, 0, ExecPolicy::Sequential, &meter());
        assert_eq!(r.selected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn star_graph_selects_single_node() {
        // Star centred at 0: every pair of leaves shares neighbour 0, and every leaf is
        // adjacent to 0, so the dominator set has exactly one node.
        let g = DenseGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        for seed in 0..5 {
            let r = max_dom(&g, seed, ExecPolicy::Sequential, &meter());
            assert_eq!(r.selected.len(), 1, "seed {seed}");
            assert!(is_maximal_dominator_set(&g, &r.selected));
        }
    }

    #[test]
    fn path_graph_dominators_are_spaced() {
        // P9: nodes selected in MaxDom must be at distance >= 3 apart.
        let edges: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 1)).collect();
        let g = DenseGraph::from_edges(9, &edges);
        for seed in 0..10 {
            let r = max_dom(&g, seed, ExecPolicy::Sequential, &meter());
            assert!(is_maximal_dominator_set(&g, &r.selected), "seed {seed}");
            for w in r.selected.windows(2) {
                assert!(w[1] - w[0] >= 3, "seed {seed}: {:?}", r.selected);
            }
        }
    }

    #[test]
    fn matches_explicit_square_mis_invariants() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for trial in 0..15 {
            let n = rng.gen_range(3..25);
            let mut g = DenseGraph::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.25) {
                        g.add_edge(a, b);
                    }
                }
            }
            // In-place algorithm.
            let r = max_dom(&g, trial, ExecPolicy::Sequential, &meter());
            assert!(
                is_maximal_dominator_set(&g, &r.selected),
                "trial {trial}: in-place result invalid"
            );
            // Reference: plain MIS on the explicit square gives a valid MIS of G².
            let sq = explicit_square(&g);
            let reference = maximal_independent_set(&sq, trial, ExecPolicy::Sequential, &meter());
            assert!(is_maximal_independent_set(&sq, &reference.selected));
            // Our in-place result must also be a valid MIS of the explicit square.
            assert!(is_maximal_independent_set(&sq, &r.selected));
        }
    }

    #[test]
    fn parallel_matches_sequential_for_same_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 40;
        let mut g = DenseGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.1) {
                    g.add_edge(a, b);
                }
            }
        }
        let a = max_dom(&g, 77, ExecPolicy::Sequential, &meter());
        let b = max_dom(&g, 77, ExecPolicy::Parallel, &meter());
        assert_eq!(a, b);
    }

    #[test]
    fn dense_and_csr_representations_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for trial in 0..10 {
            let n = rng.gen_range(3..35);
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(0.2) {
                        edges.push((a, b));
                    }
                }
            }
            let d = DenseGraph::from_edges(n, &edges);
            let c = CsrGraph::from_edges(n, &edges);
            for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                assert_eq!(
                    max_dom(&d, trial, policy, &meter()),
                    max_dom(&c, trial, policy, &meter()),
                    "trial {trial}"
                );
            }
        }
    }

    #[test]
    fn rounds_grow_slowly() {
        // A graph with 200 isolated edges finishes in very few rounds.
        let n = 400;
        let edges: Vec<(usize, usize)> = (0..200).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = DenseGraph::from_edges(n, &edges);
        let r = max_dom(&g, 1, ExecPolicy::Parallel, &meter());
        assert_eq!(r.selected.len(), 200, "one endpoint of each isolated edge");
        assert!(r.rounds <= 20, "expected O(log n) rounds, got {}", r.rounds);
    }

    #[test]
    fn dominator_checkers_reject_bad_sets() {
        let g = DenseGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        // 0 and 2 share neighbour 1 → not a valid dominator set.
        assert!(!is_dominator_independent(&g, &[0, 2]));
        // {0, 3}: distance 3 apart → valid and maximal.
        assert!(is_maximal_dominator_set(&g, &[0, 3]));
        // {0} alone is not maximal (3 could be added).
        assert!(!is_maximal_dominator_set(&g, &[0]));
    }
}
