//! Graph representations, re-exported from [`parfaclo_graph`].
//!
//! The dense adjacency types this crate originally owned now live in the
//! `parfaclo-graph` crate alongside their CSR counterparts and the frontier
//! engine; this module keeps the historical `parfaclo_dominator::graph::*`
//! paths working.

pub use parfaclo_graph::{BipartiteGraph, CsrBipartite, CsrGraph, DenseGraph, ThresholdGraph};
