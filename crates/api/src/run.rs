//! The unified result envelope.

use crate::config::RunConfig;
use crate::json::{JsonObject, JsonValue};
use crate::trial::TrialStats;
use parfaclo_matrixops::CostReport;
use parfaclo_metric::Backend;

/// Version tag emitted in every JSON run record; bump on schema changes.
pub const RUN_SCHEMA: &str = "parfaclo.run.v1";

/// The problem family a solver addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Metric (uncapacitated) facility location — Sections 4–6.2.
    FacilityLocation,
    /// k-center / k-median / k-means over a symmetric metric — Sections 6.1, 7.
    KClustering,
    /// Dominator-set / MIS computations on a threshold graph — Section 3.
    DominatorSet,
}

impl ProblemKind {
    /// Stable string form used in JSON output and CLI tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ProblemKind::FacilityLocation => "facility-location",
            ProblemKind::KClustering => "k-clustering",
            ProblemKind::DominatorSet => "dominator-set",
        }
    }
}

impl std::fmt::Display for ProblemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The result of one solver invocation, in the shape every experiment shares.
///
/// `Run` unifies `FlSolution`, the k-clustering solution types and the
/// dominator results: objective cost, certified lower bound (0 when the
/// algorithm provides no certificate), the selected facility/center/node
/// set, round counts, the [`CostReport`] work accounting, and wall time.
/// Solver-specific metrics that have no common slot (k-center radius
/// threshold, local-search initial cost, …) ride in [`Run::extra`].
#[derive(Debug, Clone, PartialEq)]
pub struct Run {
    /// Registry name of the solver that produced this run.
    pub solver: String,
    /// Problem family.
    pub problem: ProblemKind,
    /// Number of clients (facility location) or nodes (clustering).
    pub n: usize,
    /// Instance size `m` (entries of the distance matrix).
    pub m: usize,
    /// Objective value achieved (total cost / radius / selected-set size).
    pub cost: f64,
    /// Certified lower bound on the optimum; `0` when no certificate exists.
    pub lower_bound: f64,
    /// The approximation factor the algorithm promises (before `+ ε`);
    /// `0` when no guarantee applies.
    pub guarantee: f64,
    /// Selected facilities / centers / dominator nodes, sorted ascending.
    pub selected: Vec<usize>,
    /// Client/node → selected-element assignment; may be empty when the
    /// problem has no assignment semantics (dominator sets).
    pub assignment: Vec<usize>,
    /// Outer rounds executed.
    pub rounds: usize,
    /// Total inner (subselection / Luby / probe) iterations.
    pub inner_rounds: usize,
    /// Work / primitive-call / round counters accumulated during the run.
    ///
    /// Emitted in [`Run::to_json`]'s timing/metadata section and excluded
    /// from [`Run::canonical_json`]: the counters are deterministic and
    /// backend/graph/thread/policy-invariant, but the scan and bucket event
    /// engines legitimately charge different amounts for the same result
    /// (a full presort vs lazily expanded prefixes), and the canonical
    /// record is what the engine-conformance tests compare byte-for-byte.
    pub work: CostReport,
    /// Wall-clock milliseconds; stamped by the registry wrapper, excluded
    /// from [`Run::canonical_json`] so determinism comparisons stay exact.
    pub wall_ms: f64,
    /// Worker threads the run executed on; stamped by the registry wrapper.
    /// Like `wall_ms` it is excluded from [`Run::canonical_json`]: thread
    /// count affects timing, never results, and the determinism tests
    /// compare runs across thread counts byte-for-byte.
    pub threads: usize,
    /// Distance backend the instance was served by; stamped by the registry
    /// wrapper. Excluded from [`Run::canonical_json`] like the other
    /// workload/timing metadata: the backend changes memory and wall time,
    /// never results — the conformance tests compare dense vs implicit runs
    /// byte-for-byte.
    pub backend: Backend,
    /// Estimated resident bytes of the instance's distance storage (the
    /// oracle's `memory_bytes()`): `8·|C|·|F|` dense, `O(|C| + |F|)`
    /// implicit. Stamped by the registry wrapper; excluded from
    /// [`Run::canonical_json`] alongside `backend`.
    pub memory_bytes: u64,
    /// Wall-clock milliseconds per top-level solver phase (orders-build,
    /// star-rounds, coreset-build, …), aggregated from the trace span tree
    /// by the registry wrapper. Timing metadata like `wall_ms`: emitted in
    /// [`Run::to_json`]'s timing section and excluded from
    /// [`Run::canonical_json`] — phase *topology* is workload-pure, but
    /// these are wall-clock durations.
    pub phase_wall_ms: Vec<(String, f64)>,
    /// Wall-clock statistics over repeated trials of this run, when the
    /// measurement harness re-ran it (`None` for ordinary single runs).
    /// Timing metadata like `wall_ms`: emitted in [`Run::to_json`]'s timing
    /// section, excluded from [`Run::canonical_json`] so the canonical
    /// record stays single-run and byte-comparable across trials.
    pub trials: Option<TrialStats>,
    /// The ε the run was configured with.
    pub epsilon: f64,
    /// The seed the run was configured with.
    pub seed: u64,
    /// Ordered solver-specific named metrics (radius, threshold, probes, …).
    pub extra: Vec<(String, f64)>,
}

impl Run {
    /// Starts an empty envelope for the given solver and problem family.
    pub fn new(solver: &str, problem: ProblemKind) -> Self {
        Run {
            solver: solver.to_string(),
            problem,
            n: 0,
            m: 0,
            cost: 0.0,
            lower_bound: 0.0,
            guarantee: 0.0,
            selected: Vec::new(),
            assignment: Vec::new(),
            rounds: 0,
            inner_rounds: 0,
            work: CostReport::default(),
            wall_ms: 0.0,
            threads: 0,
            backend: Backend::Dense,
            memory_bytes: 0,
            phase_wall_ms: Vec::new(),
            trials: None,
            epsilon: 0.0,
            seed: 0,
            extra: Vec::new(),
        }
    }

    /// Records the instance dimensions.
    pub fn with_instance_size(mut self, n: usize, m: usize) -> Self {
        self.n = n;
        self.m = m;
        self
    }

    /// Records the objective value.
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }

    /// Records the certified lower bound.
    pub fn with_lower_bound(mut self, lower_bound: f64) -> Self {
        self.lower_bound = lower_bound;
        self
    }

    /// Records the promised approximation factor.
    pub fn with_guarantee(mut self, guarantee: f64) -> Self {
        self.guarantee = guarantee;
        self
    }

    /// Records the selected element set (sorted on insertion).
    pub fn with_selected(mut self, mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        self.selected = selected;
        self
    }

    /// Records the assignment vector.
    pub fn with_assignment(mut self, assignment: Vec<usize>) -> Self {
        self.assignment = assignment;
        self
    }

    /// Records round counts.
    pub fn with_rounds(mut self, rounds: usize, inner_rounds: usize) -> Self {
        self.rounds = rounds;
        self.inner_rounds = inner_rounds;
        self
    }

    /// Records the work report.
    pub fn with_work(mut self, work: CostReport) -> Self {
        self.work = work;
        self
    }

    /// Echoes the ε and seed of the configuration into the envelope.
    pub fn with_config_echo(mut self, cfg: &RunConfig) -> Self {
        self.epsilon = cfg.epsilon;
        self.seed = cfg.seed;
        self
    }

    /// Appends one solver-specific metric.
    pub fn with_extra(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    /// Attaches wall-clock statistics over repeated trials (timing
    /// metadata; never part of the canonical record).
    pub fn with_trials(mut self, stats: TrialStats) -> Self {
        self.trials = Some(stats);
        self
    }

    /// The approximation ratio relative to the run's own certified lower
    /// bound, or `None` if the run produced no certificate.
    pub fn certified_ratio(&self) -> Option<f64> {
        if self.lower_bound > 0.0 {
            Some(self.cost / self.lower_bound)
        } else {
            None
        }
    }

    /// Structural validity: finite non-negative cost, a non-empty selection,
    /// lower bound not exceeding cost (up to fp slack), in-range selections
    /// and assignments. Used by the registry conformance tests and the CLI.
    pub fn validate(&self) -> Result<(), String> {
        if !self.cost.is_finite() || self.cost < 0.0 {
            return Err(format!("cost {} is not finite and non-negative", self.cost));
        }
        if !self.lower_bound.is_finite() || self.lower_bound < 0.0 {
            return Err(format!("lower bound {} invalid", self.lower_bound));
        }
        if self.lower_bound > self.cost * (1.0 + 1e-6) + 1e-6 {
            return Err(format!(
                "lower bound {} exceeds cost {}",
                self.lower_bound, self.cost
            ));
        }
        if self.selected.is_empty() {
            return Err("selected set is empty".to_string());
        }
        if self.selected.windows(2).any(|w| w[0] >= w[1]) {
            return Err("selected set is not strictly sorted".to_string());
        }
        if !self.assignment.is_empty() {
            if self.assignment.len() != self.n {
                return Err(format!(
                    "assignment covers {} of {} clients",
                    self.assignment.len(),
                    self.n
                ));
            }
            // `selected` is strictly sorted (checked above), so binary search.
            if let Some(&bad) = self
                .assignment
                .iter()
                .find(|a| self.selected.binary_search(a).is_err())
            {
                return Err(format!("assignment targets unselected element {bad}"));
            }
        }
        Ok(())
    }

    fn json_fields(&self, include_timing: bool) -> JsonValue {
        let mut obj = JsonObject::new()
            .string("schema", RUN_SCHEMA)
            .string("solver", &self.solver)
            .string("problem", self.problem.as_str())
            .uint("n", self.n as u64)
            .uint("m", self.m as u64)
            .number("epsilon", self.epsilon)
            .uint("seed", self.seed)
            .number("cost", self.cost)
            .number("lower_bound", self.lower_bound)
            .number("guarantee", self.guarantee)
            .field(
                "certified_ratio",
                match self.certified_ratio() {
                    Some(r) => JsonValue::Number(r),
                    None => JsonValue::Null,
                },
            )
            .uint("rounds", self.rounds as u64)
            .uint("inner_rounds", self.inner_rounds as u64)
            .field(
                "selected",
                JsonValue::Array(
                    self.selected
                        .iter()
                        .map(|&i| JsonValue::UInt(i as u64))
                        .collect(),
                ),
            )
            .field(
                "assignment",
                JsonValue::Array(
                    self.assignment
                        .iter()
                        .map(|&i| JsonValue::UInt(i as u64))
                        .collect(),
                ),
            );
        let extra = self
            .extra
            .iter()
            .fold(JsonObject::new(), |o, (k, v)| o.number(k, *v))
            .build();
        obj = obj.field("extra", extra);
        if include_timing {
            obj = obj
                .field(
                    "work",
                    JsonObject::new()
                        .uint("element_ops", self.work.element_ops)
                        .uint("primitive_calls", self.work.primitive_calls)
                        .uint("sort_calls", self.work.sort_calls)
                        .uint("rounds", self.work.rounds)
                        .build(),
                )
                .number("wall_ms", self.wall_ms)
                .uint("threads", self.threads as u64)
                .string("backend", self.backend.as_str())
                .uint("memory_bytes", self.memory_bytes);
            if !self.phase_wall_ms.is_empty() {
                let phases = self
                    .phase_wall_ms
                    .iter()
                    .fold(JsonObject::new(), |o, (k, v)| o.number(k, *v))
                    .build();
                obj = obj.field("phase_wall_ms", phases);
            }
            if let Some(stats) = &self.trials {
                obj = obj.field("trials", stats.to_json_value());
            }
        }
        obj.build()
    }

    /// Full JSON record, including wall time — the schema every experiment
    /// emits.
    pub fn to_json(&self) -> String {
        self.json_fields(true).to_string()
    }

    /// JSON record with timing and work metadata omitted: byte-identical
    /// across repeat runs with the same seed — and across event engines,
    /// whose work counters legitimately differ — which is what the
    /// determinism and engine-conformance tests compare.
    pub fn canonical_json(&self) -> String {
        self.json_fields(false).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Run {
        Run::new("greedy", ProblemKind::FacilityLocation)
            .with_instance_size(3, 6)
            .with_cost(10.0)
            .with_lower_bound(5.0)
            .with_guarantee(3.722)
            .with_selected(vec![2, 0])
            .with_assignment(vec![0, 0, 2])
            .with_rounds(4, 9)
            .with_config_echo(&RunConfig::new(0.1).with_seed(7))
            .with_extra("probes", 3.0)
    }

    #[test]
    fn builder_fills_fields() {
        let run = sample();
        assert_eq!(run.selected, vec![0, 2]);
        assert_eq!(run.certified_ratio(), Some(2.0));
        assert_eq!(run.epsilon, 0.1);
        assert_eq!(run.seed, 7);
        run.validate().expect("structurally valid");
    }

    #[test]
    fn canonical_json_excludes_timing() {
        let mut a = sample();
        let mut b = sample();
        a.wall_ms = 1.0;
        b.wall_ms = 99.0;
        a.threads = 1;
        b.threads = 8;
        a.backend = Backend::Dense;
        b.backend = Backend::Implicit;
        a.memory_bytes = 4800;
        b.memory_bytes = 96;
        a.work.sort_calls = 1;
        b.work.sort_calls = 7;
        assert_eq!(
            a.canonical_json(),
            b.canonical_json(),
            "wall_ms/threads/backend/memory_bytes/work are workload metadata, not results"
        );
        assert_ne!(a.to_json(), b.to_json());
        assert!(a.to_json().contains("\"wall_ms\""));
        assert!(a.to_json().contains("\"threads\":1"));
        assert!(a.to_json().contains("\"backend\":\"dense\""));
        assert!(b.to_json().contains("\"backend\":\"implicit\""));
        assert!(a.to_json().contains("\"memory_bytes\":4800"));
        assert!(!a.canonical_json().contains("\"threads\""));
        assert!(!a.canonical_json().contains("\"backend\""));
        assert!(!a.canonical_json().contains("\"memory_bytes\""));
        assert!(
            !a.canonical_json().contains("\"work\""),
            "work counters differ legitimately between event engines"
        );
        assert!(a.to_json().contains("\"work\""));
        assert!(a.to_json().contains("\"sort_calls\":1"));
        assert!(a.to_json().contains(RUN_SCHEMA));
    }

    #[test]
    fn phase_walls_are_timing_metadata_only() {
        let bare = sample();
        let mut phased = sample();
        phased.phase_wall_ms = vec![
            ("orders-build".to_string(), 1.5),
            ("star-rounds".to_string(), 20.25),
        ];
        assert_eq!(
            bare.canonical_json(),
            phased.canonical_json(),
            "phase wall times must not leak into the canonical record"
        );
        assert!(!bare.to_json().contains("\"phase_wall_ms\""));
        let json = phased.to_json();
        assert!(json.contains("\"phase_wall_ms\":{\"orders-build\":1.5,\"star-rounds\":20.25}"));
    }

    #[test]
    fn validate_rejects_structural_problems() {
        let mut run = sample();
        run.cost = f64::NAN;
        assert!(run.validate().is_err());

        let mut run = sample();
        run.lower_bound = 100.0;
        assert!(run.validate().is_err());

        let mut run = sample();
        run.selected.clear();
        assert!(run.validate().is_err());

        let mut run = sample();
        run.assignment = vec![1, 1, 1];
        assert!(run.validate().is_err(), "assignment to unselected element");
    }

    #[test]
    fn trial_stats_are_timing_metadata_only() {
        let bare = sample();
        let mut timed = sample();
        timed.trials = Some(TrialStats::from_samples(&[1.0, 2.0, 3.0]));
        assert_eq!(
            bare.canonical_json(),
            timed.canonical_json(),
            "trial statistics must not leak into the canonical record"
        );
        assert!(!bare.to_json().contains("\"trials\""));
        let json = timed.to_json();
        assert!(json.contains("\"trials\":{\"trials\":3"));
        assert!(json.contains("\"median_ms\":2.0"));
        assert!(json.contains("\"stddev_ms\""));
    }

    #[test]
    fn no_certificate_means_no_ratio() {
        let run = Run::new("x", ProblemKind::KClustering).with_cost(3.0);
        assert_eq!(run.certified_ratio(), None);
        assert!(run.to_json().contains("\"certified_ratio\":null"));
    }
}
