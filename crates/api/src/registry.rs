//! The string-keyed solver registry.

use crate::config::RunConfig;
use crate::run::Run;
use crate::solver::{AnyInstance, DynSolver, SolveError};
use std::collections::BTreeMap;

/// An ordered, string-keyed collection of type-erased solvers.
///
/// Callers (the `parfaclo` CLI, benches, conformance tests) enumerate and
/// select solvers by name; iteration order is lexicographic so listings and
/// sweeps are deterministic.
#[derive(Default)]
pub struct Registry {
    solvers: BTreeMap<String, Box<dyn DynSolver>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds a solver under its own name.
    ///
    /// # Panics
    /// Panics if a solver with the same name is already registered —
    /// duplicate names are always a wiring bug.
    pub fn register(&mut self, solver: Box<dyn DynSolver>) {
        let name = solver.name().to_string();
        let duplicate = self.solvers.insert(name.clone(), solver).is_some();
        assert!(!duplicate, "duplicate solver name '{name}' in registry");
    }

    /// Looks up a solver by name.
    pub fn get(&self, name: &str) -> Option<&dyn DynSolver> {
        self.solvers.get(name).map(|b| b.as_ref())
    }

    /// All registered names, lexicographically sorted.
    pub fn names(&self) -> Vec<&str> {
        self.solvers.keys().map(|k| k.as_str()).collect()
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Iterates over the solvers in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn DynSolver> {
        self.solvers.values().map(|b| b.as_ref())
    }

    /// Convenience: looks up `name` and runs it on `inst`.
    pub fn run(&self, name: &str, inst: &AnyInstance, cfg: &RunConfig) -> Result<Run, SolveError> {
        self.get(name)
            .ok_or_else(|| SolveError::UnknownSolver(name.to_string()))?
            .run(inst, cfg)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ProblemKind;
    use crate::solver::Solver;
    use parfaclo_metric::{DistanceMatrix, FlInstance};

    struct Dummy(&'static str);

    impl Solver for Dummy {
        type Instance = FlInstance;
        type Config = RunConfig;

        fn name(&self) -> &str {
            self.0
        }

        fn problem(&self) -> ProblemKind {
            ProblemKind::FacilityLocation
        }

        fn solve(&self, _inst: &FlInstance, cfg: &RunConfig) -> Result<Run, String> {
            Ok(Run::new(self.0, ProblemKind::FacilityLocation)
                .with_cost(1.0)
                .with_selected(vec![0])
                .with_config_echo(cfg))
        }
    }

    fn tiny() -> AnyInstance {
        AnyInstance::Fl(FlInstance::new(
            vec![1.0],
            DistanceMatrix::from_rows(1, 1, vec![0.5]),
        ))
    }

    #[test]
    fn names_are_sorted_and_lookup_works() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy("zeta")));
        r.register(Box::new(Dummy("alpha")));
        assert_eq!(r.names(), vec!["alpha", "zeta"]);
        assert_eq!(r.len(), 2);
        assert!(r.get("alpha").is_some());
        assert!(r.get("missing").is_none());
        let run = r.run("zeta", &tiny(), &RunConfig::default()).unwrap();
        assert_eq!(run.solver, "zeta");
    }

    #[test]
    fn unknown_solver_error() {
        let r = Registry::new();
        assert!(r.is_empty());
        let err = r.run("ghost", &tiny(), &RunConfig::default()).unwrap_err();
        assert_eq!(err, SolveError::UnknownSolver("ghost".to_string()));
    }

    #[test]
    #[should_panic(expected = "duplicate solver name")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register(Box::new(Dummy("same")));
        r.register(Box::new(Dummy("same")));
    }
}
