//! A minimal JSON writer.
//!
//! The run envelope needs a stable machine-readable output format and the
//! build environment has no access to `serde`/`serde_json`, so this module
//! provides the few pieces actually needed: escaping, and an object/array
//! builder that preserves insertion order (important for byte-stable output
//! used in determinism comparisons).

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite numbers are emitted via Rust's shortest-round-trip formatting;
    /// non-finite values degrade to `null` (JSON has no NaN/∞).
    Number(f64),
    /// An unsigned integer, emitted without a decimal point.
    UInt(u64),
    /// A string (escaped on write).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl JsonValue {
    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    // `{:?}` gives the shortest representation that round-trips.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (idx, (key, value)) in fields.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience builder for an insertion-ordered JSON object.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: JsonValue) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn string(self, key: &str, value: &str) -> Self {
        self.field(key, JsonValue::String(value.to_string()))
    }

    /// Appends a float field.
    pub fn number(self, key: &str, value: f64) -> Self {
        self.field(key, JsonValue::Number(value))
    }

    /// Appends an unsigned-integer field.
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.field(key, JsonValue::UInt(value))
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, JsonValue::Bool(value))
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let v = JsonObject::new()
            .string("name", "a\"b\\c\nd")
            .number("x", 1.5)
            .uint("n", 42)
            .bool("ok", true)
            .field(
                "arr",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::UInt(1)]),
            )
            .build();
        assert_eq!(
            v.to_string(),
            r#"{"name":"a\"b\\c\nd","x":1.5,"n":42,"ok":true,"arr":[null,1]}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn numbers_round_trip_shortest() {
        assert_eq!(JsonValue::Number(0.1).to_string(), "0.1");
        assert_eq!(JsonValue::Number(3.0).to_string(), "3.0");
    }

    #[test]
    fn control_chars_are_escaped() {
        let v = JsonValue::String("\u{1}".to_string());
        assert_eq!(v.to_string(), "\"\\u0001\"");
    }
}
