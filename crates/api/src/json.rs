//! A minimal JSON writer and reader.
//!
//! The run envelope needs a stable machine-readable output format and the
//! build environment has no access to `serde`/`serde_json`, so this module
//! provides the few pieces actually needed: escaping, an object/array
//! builder that preserves insertion order (important for byte-stable output
//! used in determinism comparisons), and a small recursive-descent parser
//! ([`JsonValue::parse`]) with typed accessors so the benchmark comparator
//! can read artifacts back.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite numbers are emitted via Rust's shortest-round-trip formatting;
    /// non-finite values degrade to `null` (JSON has no NaN/∞).
    Number(f64),
    /// An unsigned integer, emitted without a decimal point.
    UInt(u64),
    /// A string (escaped on write).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An insertion-ordered object.
    Object(Vec<(String, JsonValue)>),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl JsonValue {
    /// Parses a JSON document. Numbers without a sign, fraction or exponent
    /// parse as [`JsonValue::UInt`]; everything else numeric parses as
    /// [`JsonValue::Number`]. Trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!(
                "trailing characters at byte {} of JSON input",
                parser.pos
            ));
        }
        Ok(value)
    }

    /// Looks up a field of an object; `None` for non-objects / missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (unsigned integers convert losslessly
    /// up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            JsonValue::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The unsigned-integer payload, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Number(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => {
                if x.is_finite() {
                    // `{:?}` gives the shortest representation that round-trips.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (idx, item) in items.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (idx, (key, value)) in fields.iter().enumerate() {
                    if idx > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the input bytes (JSON's structural
/// characters are all ASCII, so byte-level scanning is safe; string contents
/// are re-validated as UTF-8 slices).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Containers deeper than this are rejected: the parser recurses once per
/// nesting level, and artifact files are user-editable, so a pathological
/// `[[[[…` input must come back as an `Err`, not a stack overflow.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} of JSON input",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!(
                "invalid literal at byte {} of JSON input",
                self.pos
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "JSON nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!(
                "unexpected character at byte {} of JSON input",
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in JSON string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape in JSON string".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs (and lone surrogates) degrade to
                            // the replacement character; the writer never
                            // emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return Err("unterminated JSON string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are ASCII by construction");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid JSON number '{text}'"))
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience builder for an insertion-ordered JSON object.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: JsonValue) -> Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn string(self, key: &str, value: &str) -> Self {
        self.field(key, JsonValue::String(value.to_string()))
    }

    /// Appends a float field.
    pub fn number(self, key: &str, value: f64) -> Self {
        self.field(key, JsonValue::Number(value))
    }

    /// Appends an unsigned-integer field.
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.field(key, JsonValue::UInt(value))
    }

    /// Appends a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.field(key, JsonValue::Bool(value))
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_nesting() {
        let v = JsonObject::new()
            .string("name", "a\"b\\c\nd")
            .number("x", 1.5)
            .uint("n", 42)
            .bool("ok", true)
            .field(
                "arr",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::UInt(1)]),
            )
            .build();
        assert_eq!(
            v.to_string(),
            r#"{"name":"a\"b\\c\nd","x":1.5,"n":42,"ok":true,"arr":[null,1]}"#
        );
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn numbers_round_trip_shortest() {
        assert_eq!(JsonValue::Number(0.1).to_string(), "0.1");
        assert_eq!(JsonValue::Number(3.0).to_string(), "3.0");
    }

    #[test]
    fn control_chars_are_escaped() {
        let v = JsonValue::String("\u{1}".to_string());
        assert_eq!(v.to_string(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = JsonObject::new()
            .string("name", "a\"b\\c\nd")
            .number("x", 1.5)
            .uint("n", 42)
            .bool("ok", true)
            .field(
                "arr",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::UInt(1)]),
            )
            .build();
        let text = v.to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.to_string(), text, "write → parse → write is stable");
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(parsed.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("arr").unwrap().as_array().unwrap().len(), 2);
        assert!(parsed.get("missing").is_none());
    }

    #[test]
    fn parse_distinguishes_uints_from_floats() {
        assert!(matches!(JsonValue::parse("7").unwrap(), JsonValue::UInt(7)));
        assert!(matches!(
            JsonValue::parse("7.5").unwrap(),
            JsonValue::Number(x) if x == 7.5
        ));
        assert!(matches!(
            JsonValue::parse("-3").unwrap(),
            JsonValue::Number(x) if x == -3.0
        ));
        assert!(matches!(
            JsonValue::parse("1e3").unwrap(),
            JsonValue::Number(x) if x == 1000.0
        ));
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert!(matches!(arr[1].get("b"), Some(JsonValue::Null)));
    }

    #[test]
    fn parse_unescapes_strings() {
        let v = JsonValue::parse(r#""a\u0041\n\t\\ \"""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\\ \""));
    }

    #[test]
    fn parse_rejects_pathological_nesting_gracefully() {
        // Within the limit: fine.
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&ok).is_ok());
        // A 100k-bracket bomb errors instead of overflowing the stack.
        let bomb = "[".repeat(100_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "unexpected error: {err}");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nullx",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }
}
