//! # parfaclo-api
//!
//! The unified solver API of the `parfaclo` workspace.
//!
//! Every algorithm in the reproduction — the three parallel facility-location
//! algorithms of *Blelloch & Tangwongsan (SPAA 2010)*, the k-clustering
//! algorithms, the dominator-set routines and the sequential baselines — is
//! exposed behind one seam:
//!
//! * [`Solver`] — the typed trait: an instance type, a config type, and
//!   `solve(&inst, &cfg) -> Result<Run, String>`;
//! * [`Run`] — the common result envelope (cost, certified lower bound,
//!   rounds, work report, wall time, solver-specific extras) with a stable
//!   JSON schema shared by every experiment;
//! * [`RunConfig`] — the builder-style configuration that subsumes the
//!   per-family config structs (ε, seed, execution policy, ablation knobs,
//!   `k` for the clustering solvers);
//! * [`Registry`] — a string-keyed collection of type-erased solvers so
//!   benches, tests and the `parfaclo` CLI can enumerate and select solvers
//!   by name.
//!
//! The concrete algorithm crates implement [`Solver`] and the
//! `parfaclo-bench` crate assembles the full registry
//! (`parfaclo_bench::registry::standard_registry`).
//!
//! ## Example
//!
//! ```
//! use parfaclo_api::{ProblemKind, Registry, Run, RunConfig, Solver};
//! use parfaclo_metric::FlInstance;
//!
//! /// A toy "solver" that opens every facility.
//! struct OpenAll;
//!
//! impl Solver for OpenAll {
//!     type Instance = FlInstance;
//!     type Config = RunConfig;
//!
//!     fn name(&self) -> &str { "open-all" }
//!     fn problem(&self) -> ProblemKind { ProblemKind::FacilityLocation }
//!
//!     fn solve(&self, inst: &FlInstance, cfg: &RunConfig) -> Result<Run, String> {
//!         let open: Vec<usize> = (0..inst.num_facilities()).collect();
//!         let cost = inst.opening_cost(&open) + inst.connection_cost(&open);
//!         Ok(Run::new(self.name(), self.problem())
//!             .with_instance_size(inst.num_clients(), inst.m())
//!             .with_cost(cost)
//!             .with_selected(open)
//!             .with_config_echo(cfg))
//!     }
//! }
//!
//! let mut registry = Registry::new();
//! registry.register(Box::new(OpenAll));
//! assert_eq!(registry.names(), vec!["open-all"]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod json;
pub mod registry;
pub mod run;
pub mod solver;
pub mod trial;

pub use config::RunConfig;
pub use registry::Registry;
pub use run::{ProblemKind, Run, RUN_SCHEMA};
pub use solver::{AnyInstance, DynSolver, FromAnyInstance, SolveError, Solver};
pub use trial::TrialStats;

/// Re-export of the instance distance-backend selector so API consumers can
/// configure [`RunConfig::backend`] without depending on `parfaclo-metric`
/// directly.
pub use parfaclo_metric::Backend;

/// Re-exports of the coreset selector and the unified instance-construction
/// error so API consumers can configure [`RunConfig::coreset`] and handle
/// [`SolveError::Build`] without depending on `parfaclo-metric` directly.
pub use parfaclo_metric::{BuildError, Coreset};

/// Re-export of the threshold-graph representation selector so API consumers
/// can configure [`RunConfig::graph`] without depending on `parfaclo-graph`
/// directly.
pub use parfaclo_graph::GraphBackend;

/// Re-exports of the event-engine and radius-deriver selectors so API
/// consumers can configure [`RunConfig::engine`] and
/// [`RunConfig::radius_deriver`] without depending on `parfaclo-bucket`
/// directly.
pub use parfaclo_bucket::{EventEngine, RadiusDeriver};

/// Re-exports of the tracing subsystem so harnesses can install a
/// [`Tracer`] (picked up by the registry wrapper and every instrumented
/// solver phase) without depending on `parfaclo-trace` directly.
pub use parfaclo_trace::{InstallGuard, PhaseSummary, TraceDetail, Tracer, TRACE_SCHEMA};
