//! The unified run configuration.

use parfaclo_bucket::{EventEngine, RadiusDeriver};
use parfaclo_graph::GraphBackend;
use parfaclo_matrixops::ExecPolicy;
use parfaclo_metric::{Backend, Coreset};

/// Configuration accepted by every registered solver.
///
/// `RunConfig` subsumes the per-family config structs (`FlConfig`,
/// `LocalSearchConfig`, the loose `(k, seed, policy)` argument lists): each
/// solver projects out the fields it understands and ignores the rest. The
/// concrete crates provide `From<&RunConfig>` conversions into their native
/// config types so existing entry points keep working.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// The slack parameter `ε > 0` of the paper: every round admits all
    /// elements within a `(1 + ε)` factor of the cheapest.
    pub epsilon: f64,
    /// RNG seed; fixed seed ⇒ deterministic output for every solver.
    pub seed: u64,
    /// Whether primitives run sequentially or on the fork-join pool.
    pub policy: ExecPolicy,
    /// Number of worker threads for the run: `Some(n)` installs an
    /// `n`-thread pool around the solve, `None` inherits the ambient pool
    /// (the process default, `RAYON_NUM_THREADS`, or an enclosing
    /// `install`). Thread count never changes results — the runtime
    /// guarantees byte-identical output at any pool size — so this is a
    /// performance knob, not a semantic one.
    pub threads: Option<usize>,
    /// Ablation knob: the `γ/m²` round-bounding preprocessing step
    /// (facility-location solvers only).
    pub preprocess: bool,
    /// Ablation knob: the greedy subselection vote threshold
    /// (facility-location greedy only).
    pub subselection: bool,
    /// Defensive cap on outer rounds.
    pub max_rounds: usize,
    /// Number of centers for the k-clustering and dominator solvers;
    /// ignored by the facility-location solvers.
    pub k: usize,
    /// Distance threshold for the dominator-set solvers' threshold graph.
    /// `None` derives a threshold from the instance (the median distinct
    /// pairwise distance).
    pub threshold: Option<f64>,
    /// Which distance backend generated instances use: `Dense` materialises
    /// the `|C| x |F|` matrix (`O(m)` memory, the historical default);
    /// `Implicit` stores only the points and computes distances on demand
    /// (`O(|C| + |F|)` memory — required for the 100k–1M-client presets);
    /// `Spatial` adds deterministic exact kd-tree/grid indexes over the
    /// points so nearest/range queries run sublinearly instead of as O(n)
    /// sweeps (still `O(|C| + |F|)` memory — the backend that makes the
    /// 10M-point `xxlarge` preset practical). All backends produce
    /// byte-identical solver output for the same workload and seed, so this
    /// is a memory/latency knob, not a semantic one.
    pub backend: Backend,
    /// Which representation the graph-touching solvers (dominator family,
    /// k-center's threshold probes) build their threshold graphs in:
    /// `Dense` materialises the `n × n` bit matrix (the paper's native cost
    /// model, refused beyond 4 GiB); `Csr` stores offsets plus sorted
    /// neighbour lists (`O(n + m)` memory — required for million-node
    /// sparse metrics). Both produce byte-identical canonical output
    /// wherever both can run, so like `backend` this is a memory/latency
    /// knob, not a semantic one.
    pub graph: GraphBackend,
    /// Which event engine drives the facility-location round loops:
    /// `Bucket` (the default) serves greedy's sorted distance prefixes and
    /// primal-dual's freeze/open events from deterministic bucket queues;
    /// `Scan` keeps the historical full-presort / rescan paths. Canonical
    /// output is byte-identical between the two — like `backend` and
    /// `graph`, a work/latency knob, not a semantic one.
    pub engine: EventEngine,
    /// How the k-center solver derives its candidate radii: `Exact` (the
    /// default) sorts all `O(n²)` distinct pairwise distances and preserves
    /// today's bytes (refused past the oracle's scratch cap); `Sketch`
    /// probes a deterministic seeded distance sample coarse-to-fine through
    /// geometric buckets, lifting k-center to the sparse/xlarge presets.
    /// Unlike `engine`, the sketch may probe different radii than the exact
    /// path, so it changes results (while keeping the 2-approximation
    /// structure) — which is why it is opt-in per run.
    pub radius_deriver: RadiusDeriver,
    /// Coreset mode for the clustering solvers: `Off` (the default) solves
    /// on the full instance; `Eps(ε)` aggregates the points into a
    /// deterministic ε-grid coreset (one lowest-id medoid per occupied
    /// cell, weighted by population), solves on that weighted sub-instance,
    /// and finishes with one full-set assignment sweep. Like
    /// `radius_deriver`, this changes results (the reported cost is the
    /// full-set cost of the coreset-chosen centers) and is opt-in per run;
    /// the output is still byte-identical at any thread count and backend.
    /// Ignored by the facility-location and dominator solvers.
    pub coreset: Coreset,
}

impl RunConfig {
    /// Creates a configuration with the given `ε` and defaults for
    /// everything else (seed 0, parallel policy, preprocessing and
    /// subselection on, `k = 4`).
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        RunConfig {
            epsilon,
            seed: 0,
            policy: ExecPolicy::Parallel,
            threads: None,
            preprocess: true,
            subselection: true,
            max_rounds: 100_000,
            k: 4,
            threshold: None,
            backend: Backend::Dense,
            graph: GraphBackend::Dense,
            engine: EventEngine::default(),
            radius_deriver: RadiusDeriver::default(),
            coreset: Coreset::Off,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Pins the run to an `n`-thread pool.
    ///
    /// # Panics
    /// Panics if `threads == 0` (use [`RunConfig::with_ambient_threads`] to
    /// inherit the surrounding pool).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "threads must be at least 1");
        self.threads = Some(threads);
        self
    }

    /// Clears the thread pin so the run inherits the ambient pool.
    pub fn with_ambient_threads(mut self) -> Self {
        self.threads = None;
        self
    }

    /// Enables or disables the round-bounding preprocessing step (ablation).
    pub fn with_preprocess(mut self, preprocess: bool) -> Self {
        self.preprocess = preprocess;
        self
    }

    /// Enables or disables the greedy subselection vote threshold (ablation).
    pub fn with_subselection(mut self, subselection: bool) -> Self {
        self.subselection = subselection;
        self
    }

    /// Replaces the defensive round cap.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Replaces the number of centers `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn with_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        self
    }

    /// Sets an explicit dominator-set distance threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Replaces the instance distance backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the threshold-graph representation.
    pub fn with_graph(mut self, graph: GraphBackend) -> Self {
        self.graph = graph;
        self
    }

    /// Replaces the facility-location event engine.
    pub fn with_engine(mut self, engine: EventEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Replaces the k-center radius deriver.
    pub fn with_radius_deriver(mut self, radius_deriver: RadiusDeriver) -> Self {
        self.radius_deriver = radius_deriver;
        self
    }

    /// Replaces the clustering coreset mode.
    pub fn with_coreset(mut self, coreset: Coreset) -> Self {
        self.coreset = coreset;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::new(0.1)
    }
}

impl From<&RunConfig> for RunConfig {
    fn from(cfg: &RunConfig) -> Self {
        cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = RunConfig::new(0.25)
            .with_seed(9)
            .with_policy(ExecPolicy::Sequential)
            .with_threads(2)
            .with_preprocess(false)
            .with_subselection(false)
            .with_max_rounds(10)
            .with_k(7)
            .with_threshold(3.5)
            .with_backend(Backend::Implicit)
            .with_graph(GraphBackend::Csr)
            .with_engine(EventEngine::Scan)
            .with_radius_deriver(RadiusDeriver::Sketch)
            .with_coreset(Coreset::Eps(0.25));
        assert_eq!(cfg.epsilon, 0.25);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.policy, ExecPolicy::Sequential);
        assert_eq!(cfg.threads, Some(2));
        assert_eq!(cfg.clone().with_ambient_threads().threads, None);
        assert!(!cfg.preprocess);
        assert!(!cfg.subselection);
        assert_eq!(cfg.max_rounds, 10);
        assert_eq!(cfg.k, 7);
        assert_eq!(cfg.threshold, Some(3.5));
        assert_eq!(cfg.backend, Backend::Implicit);
        assert_eq!(cfg.graph, GraphBackend::Csr);
        assert_eq!(cfg.engine, EventEngine::Scan);
        assert_eq!(cfg.radius_deriver, RadiusDeriver::Sketch);
        assert_eq!(cfg.coreset, Coreset::Eps(0.25));
    }

    #[test]
    fn default_is_sane() {
        let cfg = RunConfig::default();
        assert!(cfg.epsilon > 0.0);
        assert!(cfg.preprocess && cfg.subselection);
        assert!(cfg.k >= 1);
        assert!(cfg.threshold.is_none());
        assert!(cfg.threads.is_none(), "default inherits the ambient pool");
        assert_eq!(cfg.backend, Backend::Dense, "dense is the default backend");
        assert_eq!(cfg.graph, GraphBackend::Dense, "dense graph by default");
        assert_eq!(cfg.engine, EventEngine::Bucket, "buckets by default");
        assert_eq!(
            cfg.radius_deriver,
            RadiusDeriver::Exact,
            "the exact deriver preserves the paper's k-center bytes"
        );
        assert_eq!(cfg.coreset, Coreset::Off, "coresets are opt-in");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_rejected() {
        let _ = RunConfig::default().with_threads(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        let _ = RunConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = RunConfig::default().with_k(0);
    }
}
