//! The typed [`Solver`] trait and its type-erased registry form.

use crate::config::RunConfig;
use crate::run::{ProblemKind, Run};
use parfaclo_metric::{Backend, BuildError, ClusterInstance, FlInstance};
use parfaclo_trace as trace;
use std::sync::Arc;
use std::time::Instant;

/// A solver for one problem family, with its native instance and config
/// types.
///
/// This is the seam every algorithm in the workspace plugs into: the
/// historical free functions (`greedy::parallel_greedy`,
/// `kcenter::parallel_kcenter`, …) remain as the implementations, and the
/// `Solver` impls are thin adapters that call them and repackage the result
/// into the common [`Run`] envelope.
pub trait Solver {
    /// The instance type consumed (`FlInstance`, `ClusterInstance`, …).
    type Instance;
    /// The native configuration type.
    type Config;

    /// Stable registry name (kebab-case, e.g. `"primal-dual"`).
    fn name(&self) -> &str;

    /// The problem family this solver addresses.
    fn problem(&self) -> ProblemKind;

    /// The approximation factor the algorithm promises before the `+ ε`
    /// (0 when no guarantee applies, e.g. heuristics).
    fn guarantee(&self) -> f64 {
        0.0
    }

    /// Whether [`Solver::guarantee`] is exact rather than paying the
    /// paper's `+ ε` slack (true for the sequential baselines).
    fn guarantee_is_exact(&self) -> bool {
        false
    }

    /// Where in the paper (or the literature) the algorithm comes from.
    fn paper_ref(&self) -> &str {
        ""
    }

    /// Runs the solver.
    ///
    /// Returns `Err` with a human-readable reason when the run is infeasible
    /// as configured — for example a dense graph backend refusing an
    /// allocation beyond its size cap — rather than panicking. The registry
    /// surfaces this as [`SolveError::Infeasible`].
    fn solve(&self, inst: &Self::Instance, cfg: &Self::Config) -> Result<Run, String>;
}

/// An instance of any problem family the registry can route.
#[derive(Debug, Clone)]
pub enum AnyInstance {
    /// A facility-location instance.
    Fl(FlInstance),
    /// A symmetric clustering instance (also used by the dominator solvers,
    /// which threshold it into a graph).
    Cluster(ClusterInstance),
}

impl AnyInstance {
    /// Number of clients / nodes.
    pub fn n(&self) -> usize {
        match self {
            AnyInstance::Fl(inst) => inst.num_clients(),
            AnyInstance::Cluster(inst) => inst.n(),
        }
    }

    /// Distance-matrix size `m`.
    pub fn m(&self) -> usize {
        match self {
            AnyInstance::Fl(inst) => inst.m(),
            AnyInstance::Cluster(inst) => inst.n() * inst.n(),
        }
    }

    /// Which problem families this instance can feed.
    pub fn describes(&self) -> &'static str {
        match self {
            AnyInstance::Fl(_) => "facility-location",
            AnyInstance::Cluster(_) => "clustering",
        }
    }

    /// Which distance backend serves the instance.
    pub fn backend(&self) -> Backend {
        match self {
            AnyInstance::Fl(inst) => inst.backend(),
            AnyInstance::Cluster(inst) => inst.backend(),
        }
    }

    /// Estimated resident bytes of the instance's distance storage (the
    /// oracle estimate: `8·|C|·|F|` dense, `O(|C| + |F|)` implicit).
    pub fn memory_bytes(&self) -> u64 {
        match self {
            AnyInstance::Fl(inst) => inst.memory_bytes(),
            AnyInstance::Cluster(inst) => inst.memory_bytes(),
        }
    }
}

/// Projection from [`AnyInstance`] to a concrete instance type; the erased
/// registry wrapper uses it to route instances to typed solvers.
pub trait FromAnyInstance {
    /// Borrows the concrete instance if the variant matches.
    fn from_any(inst: &AnyInstance) -> Option<&Self>;
}

impl FromAnyInstance for FlInstance {
    fn from_any(inst: &AnyInstance) -> Option<&Self> {
        match inst {
            AnyInstance::Fl(fl) => Some(fl),
            _ => None,
        }
    }
}

impl FromAnyInstance for ClusterInstance {
    fn from_any(inst: &AnyInstance) -> Option<&Self> {
        match inst {
            AnyInstance::Cluster(c) => Some(c),
            _ => None,
        }
    }
}

/// Why a registry-level run could not be performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The instance variant does not match the solver's expected type.
    WrongInstanceKind {
        /// The solver that rejected the instance.
        solver: String,
        /// What the caller supplied.
        got: &'static str,
    },
    /// No solver with the requested name is registered.
    UnknownSolver(String),
    /// The solver rejected the run as infeasible under the given
    /// configuration (e.g. a size cap was hit); the reason says what to
    /// change.
    Infeasible {
        /// The solver that refused to run.
        solver: String,
        /// Human-readable explanation, including the suggested fix.
        reason: String,
    },
    /// The instance could not be constructed in the first place (dense
    /// overflow or a byte-cap refusal) — the unified [`BuildError`] mapped
    /// in at the registry boundary.
    Build(BuildError),
}

impl From<BuildError> for SolveError {
    fn from(e: BuildError) -> Self {
        SolveError::Build(e)
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::WrongInstanceKind { solver, got } => {
                write!(f, "solver '{solver}' cannot consume a {got} instance")
            }
            SolveError::UnknownSolver(name) => write!(f, "no solver named '{name}' registered"),
            SolveError::Infeasible { solver, reason } => {
                write!(f, "solver '{solver}': {reason}")
            }
            SolveError::Build(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SolveError {}

/// Object-safe view of a solver, as stored in the registry.
///
/// Blanket-implemented for every [`Solver`] whose instance type can be
/// projected out of [`AnyInstance`] and whose config can be derived from a
/// [`RunConfig`]; `run` stamps wall time into the envelope.
pub trait DynSolver {
    /// Stable registry name.
    fn name(&self) -> &str;
    /// Problem family.
    fn problem(&self) -> ProblemKind;
    /// Promised approximation factor (0 if none).
    fn guarantee(&self) -> f64;
    /// Human-readable guarantee, e.g. `3.722 + eps`, `2` (exact) or `-`.
    fn guarantee_label(&self) -> String;
    /// Paper / literature reference.
    fn paper_ref(&self) -> &str;
    /// Routes the instance, runs the solver, stamps timing.
    fn run(&self, inst: &AnyInstance, cfg: &RunConfig) -> Result<Run, SolveError>;
}

impl<S> DynSolver for S
where
    S: Solver,
    S::Instance: FromAnyInstance,
    for<'a> S::Config: From<&'a RunConfig>,
{
    fn name(&self) -> &str {
        Solver::name(self)
    }

    fn problem(&self) -> ProblemKind {
        Solver::problem(self)
    }

    fn guarantee(&self) -> f64 {
        Solver::guarantee(self)
    }

    fn guarantee_label(&self) -> String {
        let g = Solver::guarantee(self);
        if g <= 0.0 {
            "-".to_string()
        } else if Solver::guarantee_is_exact(self) {
            format!("{g}")
        } else {
            format!("{g} + eps")
        }
    }

    fn paper_ref(&self) -> &str {
        Solver::paper_ref(self)
    }

    fn run(&self, inst: &AnyInstance, cfg: &RunConfig) -> Result<Run, SolveError> {
        let typed = S::Instance::from_any(inst).ok_or_else(|| SolveError::WrongInstanceKind {
            solver: Solver::name(self).to_string(),
            got: inst.describes(),
        })?;
        let native_cfg = S::Config::from(cfg);
        // Every run executes under a tracer: the harness's, when one is
        // installed (`--trace` / `--progress` / the conformance tests),
        // else an ephemeral phase-level tracer, so `Run.phase_wall_ms` is
        // attributed unconditionally. Span bookkeeping is a handful of
        // mutex ops per phase — noise next to any solve — and spans never
        // charge the meter, so canonical results are untouched.
        let (tracer, _tracer_guard) = match trace::current() {
            Some(tracer) => (tracer, None),
            None => {
                let tracer = Arc::new(trace::Tracer::new(trace::TraceDetail::Phases));
                let guard = trace::install(Arc::clone(&tracer));
                (tracer, Some(guard))
            }
        };
        tracer.note_memory(inst.memory_bytes());
        // `Some(n)` pins the solve to an n-thread pool; `None` inherits the
        // ambient pool (process default / RAYON_NUM_THREADS / an enclosing
        // `install`). Either way the actual count is stamped into the
        // envelope's timing metadata.
        let start = Instant::now();
        let root = trace::span(&format!("solve:{}", Solver::name(self)), None);
        let root_index = root.index();
        let (solved, threads) = match cfg.threads {
            Some(n) => {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .expect("thread pool construction is infallible");
                (
                    pool.install(|| self.solve(typed, &native_cfg)),
                    pool.current_num_threads(),
                )
            }
            None => (self.solve(typed, &native_cfg), rayon::current_num_threads()),
        };
        drop(root);
        let mut run = solved.map_err(|reason| SolveError::Infeasible {
            solver: Solver::name(self).to_string(),
            reason,
        })?;
        run.wall_ms = start.elapsed().as_secs_f64() * 1e3;
        run.threads = threads;
        run.backend = inst.backend();
        run.memory_bytes = inst.memory_bytes();
        if let Some(root) = root_index {
            run.phase_wall_ms = tracer.phase_walls(root);
        }
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::DistanceMatrix;

    struct OpenAll;

    impl Solver for OpenAll {
        type Instance = FlInstance;
        type Config = RunConfig;

        fn name(&self) -> &str {
            "open-all"
        }

        fn problem(&self) -> ProblemKind {
            ProblemKind::FacilityLocation
        }

        fn guarantee(&self) -> f64 {
            1.5
        }

        fn solve(&self, inst: &FlInstance, cfg: &RunConfig) -> Result<Run, String> {
            let open: Vec<usize> = (0..inst.num_facilities()).collect();
            let cost = inst.opening_cost(&open) + inst.connection_cost(&open);
            Ok(Run::new(Solver::name(self), Solver::problem(self))
                .with_guarantee(Solver::guarantee(self))
                .with_instance_size(inst.num_clients(), inst.m())
                .with_cost(cost)
                .with_selected(open)
                .with_config_echo(cfg))
        }
    }

    fn tiny_fl() -> FlInstance {
        FlInstance::new(
            vec![10.0, 20.0],
            DistanceMatrix::from_rows(3, 2, vec![1.0, 4.0, 2.0, 3.0, 5.0, 1.0]),
        )
    }

    #[test]
    fn dyn_solver_routes_and_stamps_timing() {
        let solver: Box<dyn DynSolver> = Box::new(OpenAll);
        let inst = AnyInstance::Fl(tiny_fl());
        let cfg = RunConfig::new(0.1).with_seed(3);
        let run = solver.run(&inst, &cfg).expect("fl instance accepted");
        assert_eq!(run.solver, "open-all");
        assert_eq!(run.cost, 34.0);
        assert_eq!(run.guarantee, 1.5);
        assert_eq!(run.seed, 3);
        assert!(run.wall_ms >= 0.0);
    }

    #[test]
    fn wrong_instance_kind_is_rejected() {
        let solver: Box<dyn DynSolver> = Box::new(OpenAll);
        let inst = AnyInstance::Cluster(ClusterInstance::new(DistanceMatrix::from_rows(
            2,
            2,
            vec![0.0, 1.0, 1.0, 0.0],
        )));
        let err = solver.run(&inst, &RunConfig::default()).unwrap_err();
        assert!(matches!(err, SolveError::WrongInstanceKind { .. }));
        assert!(err.to_string().contains("open-all"));
    }
}
