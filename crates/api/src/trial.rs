//! Statistics over repeated timed trials of one run.
//!
//! One-shot wall-clocks are noise on shared hardware; the measurement
//! subsystem re-runs every (solver, workload) cell several times and keeps
//! the whole distribution summary. [`TrialStats`] is the common currency:
//! the bench matrix records it per cell, the `parfaclo.bench.v2` artifact
//! serialises it, and the comparator diffs medians (the most robust of the
//! four locations against scheduler noise).

use crate::json::{JsonObject, JsonValue};

/// Summary statistics of repeated wall-clock samples (milliseconds).
///
/// Constructed via [`TrialStats::from_samples`]; all four statistics are
/// deterministic functions of the sample multiset (median averages the two
/// middle elements for even counts, stddev is the population form).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Number of measured trials (warmup runs excluded).
    pub trials: usize,
    /// Fastest trial.
    pub min_ms: f64,
    /// Median trial — the comparator's primary statistic.
    pub median_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Population standard deviation.
    pub stddev_ms: f64,
}

impl TrialStats {
    /// Summarises a non-empty sample set of wall-clock milliseconds.
    ///
    /// # Panics
    /// Panics if `samples` is empty or contains a non-finite value — both
    /// indicate a harness bug, not a measurement outcome.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "TrialStats needs at least one sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "non-finite wall-clock sample"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let variance = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        TrialStats {
            trials: n,
            min_ms: sorted[0],
            median_ms: median,
            mean_ms: mean,
            stddev_ms: variance.sqrt(),
        }
    }

    /// Serialises the statistics as an ordered JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonObject::new()
            .uint("trials", self.trials as u64)
            .number("min_ms", self.min_ms)
            .number("median_ms", self.median_ms)
            .number("mean_ms", self.mean_ms)
            .number("stddev_ms", self.stddev_ms)
            .build()
    }

    /// Reads the statistics back from a parsed JSON object (the inverse of
    /// [`TrialStats::to_json_value`]).
    pub fn from_json_value(value: &JsonValue) -> Result<TrialStats, String> {
        let field = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("trial stats missing numeric field '{key}'"))
        };
        Ok(TrialStats {
            trials: value
                .get("trials")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "trial stats missing field 'trials'".to_string())?
                as usize,
            min_ms: field("min_ms")?,
            median_ms: field("median_ms")?,
            mean_ms: field("mean_ms")?,
            stddev_ms: field("stddev_ms")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_odd_and_even_sample_counts() {
        let odd = TrialStats::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.trials, 3);
        assert_eq!(odd.min_ms, 1.0);
        assert_eq!(odd.median_ms, 2.0);
        assert_eq!(odd.mean_ms, 2.0);
        assert!((odd.stddev_ms - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);

        let even = TrialStats::from_samples(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(even.median_ms, 2.5);
        assert_eq!(even.mean_ms, 2.5);
    }

    #[test]
    fn single_sample_degenerates_cleanly() {
        let one = TrialStats::from_samples(&[7.5]);
        assert_eq!(one.trials, 1);
        assert_eq!(one.min_ms, 7.5);
        assert_eq!(one.median_ms, 7.5);
        assert_eq!(one.mean_ms, 7.5);
        assert_eq!(one.stddev_ms, 0.0);
    }

    #[test]
    fn json_round_trip() {
        let stats = TrialStats::from_samples(&[1.25, 2.5, 10.0]);
        let text = stats.to_json_value().to_string();
        let back = TrialStats::from_json_value(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn from_json_reports_missing_fields() {
        let v = JsonValue::parse(r#"{"trials":3,"min_ms":1.0}"#).unwrap();
        let err = TrialStats::from_json_value(&v).unwrap_err();
        assert!(err.contains("median_ms"), "unexpected error: {err}");
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_sample_set_rejected() {
        let _ = TrialStats::from_samples(&[]);
    }
}
