//! [`Solver`] adapters for the sequential baselines.
//!
//! Registering the baselines alongside the parallel algorithms is what makes
//! the unified runner's comparisons meaningful: the same CLI invocation can
//! sweep `greedy` (parallel, Algorithm 4.1) and `jms-greedy` (the sequential
//! algorithm it mimics) on the same generated instance and emit directly
//! comparable JSON records.

use crate::jain_vazirani::jain_vazirani;
use crate::jms_greedy::jms_greedy;
use crate::kcenter::{gonzalez_kcenter, hochbaum_shmoys_kcenter, KCenterResult};
use crate::local_search::local_search_kmedian;
use parfaclo_api::{ProblemKind, Run, RunConfig, Solver};
use parfaclo_metric::{ClusterInstance, FlInstance};

/// JMS dual-fitting scale factor: `α/1.861` is dual feasible (Jain et al.,
/// J. ACM 2003), so `Σ α_j / 1.861` certifies a lower bound on `opt`.
const JMS_DUAL_SCALE: f64 = 1.861;

/// The sequential JMS greedy (the algorithm the parallel greedy mimics).
#[derive(Debug, Clone, Copy, Default)]
pub struct JmsGreedySolver;

impl Solver for JmsGreedySolver {
    type Instance = FlInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "jms-greedy"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        1.861
    }

    fn guarantee_is_exact(&self) -> bool {
        true
    }

    fn paper_ref(&self) -> &str {
        "Jain et al., J. ACM 2003 (sequential baseline)"
    }

    fn solve(&self, inst: &FlInstance, cfg: &RunConfig) -> Result<Run, String> {
        let result = jms_greedy(inst);
        let lower_bound = result.alpha.iter().sum::<f64>() / JMS_DUAL_SCALE;
        let assignment = inst.closest_assignment(&result.open);
        Ok(Run::new(Solver::name(self), ProblemKind::FacilityLocation)
            .with_guarantee(Solver::guarantee(self))
            .with_instance_size(inst.num_clients(), inst.m())
            .with_cost(result.cost)
            .with_lower_bound(lower_bound)
            .with_selected(result.open)
            .with_assignment(assignment)
            .with_rounds(result.rounds, 0)
            .with_config_echo(cfg))
    }
}

/// The sequential Jain–Vazirani primal-dual 3-approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct JainVaziraniSolver;

impl Solver for JainVaziraniSolver {
    type Instance = FlInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "jain-vazirani"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        3.0
    }

    fn guarantee_is_exact(&self) -> bool {
        true
    }

    fn paper_ref(&self) -> &str {
        "Jain & Vazirani, J. ACM 2001 (sequential baseline)"
    }

    fn solve(&self, inst: &FlInstance, cfg: &RunConfig) -> Result<Run, String> {
        let result = jain_vazirani(inst);
        // JV's α vector is dual feasible as-is, so its sum lower-bounds opt.
        let lower_bound = result.alpha.iter().sum::<f64>();
        let assignment = inst.closest_assignment(&result.open);
        Ok(Run::new(Solver::name(self), ProblemKind::FacilityLocation)
            .with_guarantee(Solver::guarantee(self))
            .with_instance_size(inst.num_clients(), inst.m())
            .with_cost(result.cost)
            .with_lower_bound(lower_bound)
            .with_selected(result.open)
            .with_assignment(assignment)
            .with_rounds(result.events, 0)
            .with_extra("temporarily_open", result.temporarily_open.len() as f64)
            .with_config_echo(cfg))
    }
}

fn kcenter_envelope(
    solver: &(impl Solver + ?Sized),
    inst: &ClusterInstance,
    result: KCenterResult,
    cfg: &RunConfig,
) -> Run {
    let assignment = inst.center_assignment(&result.centers);
    Run::new(Solver::name(solver), ProblemKind::KClustering)
        .with_guarantee(Solver::guarantee(solver))
        .with_instance_size(inst.n(), inst.n() * inst.n())
        .with_cost(result.radius)
        .with_selected(result.centers)
        .with_assignment(assignment)
        .with_extra("k", cfg.k as f64)
        .with_config_echo(cfg)
}

/// Gonzalez's farthest-point k-center 2-approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct GonzalezSolver;

impl Solver for GonzalezSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "gonzalez"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        2.0
    }

    fn guarantee_is_exact(&self) -> bool {
        true
    }

    fn paper_ref(&self) -> &str {
        "Gonzalez 1985 (sequential baseline)"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        Ok(kcenter_envelope(
            self,
            inst,
            gonzalez_kcenter(inst, cfg.k),
            cfg,
        ))
    }
}

/// The sequential Hochbaum–Shmoys bottleneck k-center 2-approximation.
#[derive(Debug, Clone, Copy, Default)]
pub struct HochbaumShmoysSolver;

impl Solver for HochbaumShmoysSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "hs-kcenter"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        2.0
    }

    fn guarantee_is_exact(&self) -> bool {
        true
    }

    fn paper_ref(&self) -> &str {
        "Hochbaum & Shmoys 1985 (sequential baseline)"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        // The baseline derives its candidate radii by sorting all n²
        // pairwise distances; refuse up front past the oracle's scratch cap
        // (same ceiling as `DistanceOracle::try_sorted_distinct_values`)
        // instead of exhausting memory inside the library call.
        use parfaclo_metric::{oracle::DISTINCT_VALUES_BYTES_CAP, DistanceOracle};
        let bytes = (inst.distances().len() as u64).saturating_mul(8);
        if bytes > DISTINCT_VALUES_BYTES_CAP {
            return Err(format!(
                "hs-kcenter derives its candidate radii by sorting all {n}×{n} pairwise \
                 distances ({:.1} GiB of scratch); this run is refused past the 4 GiB cap — \
                 use a smaller instance, or the parallel kcenter solver",
                bytes as f64 / (1u64 << 30) as f64,
                n = inst.n(),
            ));
        }
        Ok(kcenter_envelope(
            self,
            inst,
            hochbaum_shmoys_kcenter(inst, cfg.k),
            cfg,
        ))
    }
}

/// The sequential swap-based local search for k-median.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqKMedianSolver;

impl Solver for SeqKMedianSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kmedian-seq"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        5.0
    }

    fn paper_ref(&self) -> &str {
        "Arya et al. 2004 (sequential baseline)"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        let result = local_search_kmedian(inst, cfg.k, cfg.epsilon);
        let assignment = inst.center_assignment(&result.centers);
        Ok(Run::new(Solver::name(self), ProblemKind::KClustering)
            .with_guarantee(Solver::guarantee(self))
            .with_instance_size(inst.n(), inst.n() * inst.n())
            .with_cost(result.cost)
            .with_selected(result.centers)
            .with_assignment(assignment)
            .with_rounds(result.swaps, 0)
            .with_extra("k", cfg.k as f64)
            .with_config_echo(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};

    #[test]
    fn fl_baselines_produce_valid_runs() {
        let inst = gen::facility_location(GenParams::uniform_square(10, 5).with_seed(1));
        let cfg = RunConfig::new(0.1).with_seed(1);
        for run in [
            JmsGreedySolver.solve(&inst, &cfg).expect("feasible"),
            JainVaziraniSolver.solve(&inst, &cfg).expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            // Both carry a certified dual lower bound.
            assert!(
                run.certified_ratio().is_some(),
                "{} lacks certificate",
                run.solver
            );
        }
    }

    #[test]
    fn clustering_baselines_produce_valid_runs() {
        let inst = gen::clustering(GenParams::planted(18, 18, 3).with_seed(4));
        let cfg = RunConfig::new(0.1).with_k(3);
        for run in [
            GonzalezSolver.solve(&inst, &cfg).expect("feasible"),
            HochbaumShmoysSolver.solve(&inst, &cfg).expect("feasible"),
            SeqKMedianSolver.solve(&inst, &cfg).expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            assert!(run.selected.len() <= 3);
        }
    }
}
