//! The sequential primal-dual algorithm of Jain & Vazirani (J. ACM 2001), the
//! 3-approximation that Section 5 of the paper parallelises.
//!
//! The continuous process raises all active clients' dual variables `α_j` at unit rate.
//! When `α_j` reaches `d(j, i)` the edge `(i, j)` goes *tight* and starts paying
//! `β_ij = α_j − d(j, i)` towards facility `i`; when a facility's total payment reaches
//! its opening cost it is **temporarily opened** and every client with a tight edge to
//! it (now or later) **freezes**, i.e. stops raising its dual. When all clients are
//! frozen, a maximal independent set of the conflict graph on temporarily-open
//! facilities (two facilities conflict when some client pays both) is opened for real;
//! each client is then served within `3 · α_j`, and `Σ_j α_j ≤ opt` by dual feasibility.
//!
//! This implementation simulates the continuous process **exactly** with an event queue
//! (edge-goes-tight, facility-opens, client-freezes events), so the resulting `α` vector
//! is a genuine dual-feasible certificate — the experiments use it as a lower bound.

use parfaclo_metric::{FacilityId, FlInstance};

/// Result of the sequential Jain–Vazirani algorithm.
#[derive(Debug, Clone)]
pub struct JainVaziraniResult {
    /// Facilities opened by the final (post-MIS) solution.
    pub open: Vec<FacilityId>,
    /// Facilities that were *temporarily* opened during the dual-raising phase.
    pub temporarily_open: Vec<FacilityId>,
    /// Total cost of the final solution.
    pub cost: f64,
    /// Final dual values; dual feasible, so `Σ_j α_j ≤ opt`.
    pub alpha: Vec<f64>,
    /// Number of discrete events processed by the simulation.
    pub events: usize,
}

const EPS: f64 = 1e-9;

/// Runs the Jain–Vazirani primal-dual algorithm on `inst`.
///
/// # Panics
/// Panics if the instance has no facilities or no clients.
pub fn jain_vazirani(inst: &FlInstance) -> JainVaziraniResult {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nf > 0 && nc > 0,
        "instance must have clients and facilities"
    );

    let mut t = 0.0_f64;
    let mut active: Vec<bool> = vec![true; nc];
    let mut alpha: Vec<f64> = vec![0.0; nc];
    let mut opened: Vec<bool> = vec![false; nf];
    let mut open_order: Vec<FacilityId> = Vec::new();
    let mut events = 0usize;

    // Payment a facility receives at time `t` given the current (frozen) alphas.
    let payment = |i: usize, t: f64, alpha: &[f64], active: &[bool]| -> f64 {
        (0..nc)
            .map(|j| {
                let aj = if active[j] { t } else { alpha[j] };
                (aj - inst.dist(j, i)).max(0.0)
            })
            .sum()
    };

    // Opens facilities whose payment has reached their cost and freezes clients adjacent
    // to open facilities; returns the number of state changes.
    let settle = |t: f64,
                  alpha: &mut Vec<f64>,
                  active: &mut Vec<bool>,
                  opened: &mut Vec<bool>,
                  open_order: &mut Vec<FacilityId>| {
        let mut changes = 0usize;
        for (i, is_open) in opened.iter_mut().enumerate() {
            if !*is_open && payment(i, t, alpha, active) >= inst.facility_cost(i) - EPS {
                *is_open = true;
                open_order.push(i);
                changes += 1;
            }
        }
        for j in 0..nc {
            if active[j] {
                let reachable = (0..nf).any(|i| opened[i] && inst.dist(j, i) <= t + EPS);
                if reachable {
                    active[j] = false;
                    alpha[j] = t;
                    changes += 1;
                }
            }
        }
        changes
    };

    // Time zero: zero-cost facilities open immediately, co-located clients freeze.
    events += settle(t, &mut alpha, &mut active, &mut opened, &mut open_order);

    while active.iter().any(|&a| a) {
        // Next event time.
        let mut next = f64::INFINITY;
        // (a) An active client reaches an already-open facility.
        for (j, _) in active.iter().enumerate().filter(|&(_, &a)| a) {
            for (i, _) in opened.iter().enumerate().filter(|&(_, &o)| o) {
                let d = inst.dist(j, i);
                if d > t + EPS {
                    next = next.min(d);
                }
            }
        }
        // (b) An edge to an unopened facility goes tight (slope change).
        for (j, _) in active.iter().enumerate().filter(|&(_, &a)| a) {
            for (i, _) in opened.iter().enumerate().filter(|&(_, &o)| !o) {
                let d = inst.dist(j, i);
                if d > t + EPS {
                    next = next.min(d);
                }
            }
        }
        // (c) An unopened facility becomes fully paid under the current slope.
        for (i, _) in opened.iter().enumerate().filter(|&(_, &o)| !o) {
            let p = payment(i, t, &alpha, &active);
            let slope = (0..nc)
                .filter(|&j| active[j] && inst.dist(j, i) <= t + EPS)
                .count() as f64;
            if slope > 0.0 {
                let t_open = t + (inst.facility_cost(i) - p).max(0.0) / slope;
                // Only trust this estimate while the slope stays constant; taking the
                // global minimum with the edge events of (b) guarantees that.
                next = next.min(t_open);
            }
        }

        assert!(
            next.is_finite(),
            "no next event while {} clients remain active",
            active.iter().filter(|&&a| a).count()
        );
        t = next.max(t);
        events += 1;
        events += settle(t, &mut alpha, &mut active, &mut opened, &mut open_order);
    }

    // Phase 2: conflict graph on temporarily open facilities — two facilities conflict
    // when some client has strictly positive β towards both. Take a maximal independent
    // set, scanning facilities in the order they were temporarily opened.
    let conflicts = |a: FacilityId, b: FacilityId| -> bool {
        (0..nc).any(|j| alpha[j] > inst.dist(j, a) + EPS && alpha[j] > inst.dist(j, b) + EPS)
    };
    let mut chosen: Vec<FacilityId> = Vec::new();
    for &i in &open_order {
        if !chosen.iter().any(|&c| conflicts(i, c)) {
            chosen.push(i);
        }
    }
    // Safety: if the instance somehow produced no temporarily open facility (cannot
    // happen for valid instances), fall back to the overall cheapest facility.
    if chosen.is_empty() {
        let best = (0..nf)
            .min_by(|&a, &b| {
                inst.facility_cost(a)
                    .partial_cmp(&inst.facility_cost(b))
                    .unwrap()
            })
            .unwrap();
        chosen.push(best);
    }

    let cost = inst.solution_cost(&chosen);
    JainVaziraniResult {
        open: chosen,
        temporarily_open: open_order,
        cost,
        alpha,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;

    /// Dual feasibility: Σ_j max(0, α_j − d(j,i)) ≤ f_i for every facility.
    fn assert_dual_feasible(inst: &FlInstance, alpha: &[f64]) {
        for i in 0..inst.num_facilities() {
            let paid: f64 = (0..inst.num_clients())
                .map(|j| (alpha[j] - inst.dist(j, i)).max(0.0))
                .sum();
            assert!(
                paid <= inst.facility_cost(i) + 1e-6,
                "facility {i} overpaid: {paid} > {}",
                inst.facility_cost(i)
            );
        }
    }

    #[test]
    fn single_facility_single_client() {
        let inst = FlInstance::new(vec![2.0], DistanceMatrix::from_rows(1, 1, vec![1.0]));
        let r = jain_vazirani(&inst);
        assert_eq!(r.open, vec![0]);
        assert!((r.cost - 3.0).abs() < 1e-9);
        // α grows until the facility is paid for: α = d + f = 3.
        assert!((r.alpha[0] - 3.0).abs() < 1e-6);
        assert_dual_feasible(&inst, &r.alpha);
    }

    #[test]
    fn two_clients_share_a_facility() {
        // Two clients at distance 1 from a facility of cost 2: each pays 1 towards the
        // opening, so α_j = 2 for both and the cost is 2 + 1 + 1 = 4 (optimal).
        let inst = FlInstance::new(vec![2.0], DistanceMatrix::from_rows(2, 1, vec![1.0, 1.0]));
        let r = jain_vazirani(&inst);
        assert_eq!(r.open, vec![0]);
        assert!((r.cost - 4.0).abs() < 1e-9);
        assert!((r.alpha[0] - 2.0).abs() < 1e-6);
        assert!((r.alpha[1] - 2.0).abs() < 1e-6);
        assert_dual_feasible(&inst, &r.alpha);
    }

    #[test]
    fn zero_cost_facility_opens_immediately() {
        let inst = FlInstance::new(
            vec![0.0, 10.0],
            DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 3.0, 5.0]),
        );
        let r = jain_vazirani(&inst);
        assert!(r.open.contains(&0));
        // Client 0 freezes at time 0 with α = 0.
        assert!(r.alpha[0].abs() < 1e-9);
        assert_dual_feasible(&inst, &r.alpha);
    }

    #[test]
    fn dual_value_lower_bounds_optimum_and_cost_within_3x() {
        for seed in 0..8 {
            let inst = gen::facility_location(GenParams::uniform_square(9, 5).with_seed(seed));
            let r = jain_vazirani(&inst);
            assert_dual_feasible(&inst, &r.alpha);
            let dual: f64 = r.alpha.iter().sum();
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                dual <= opt + 1e-6,
                "seed {seed}: dual {dual} exceeds optimum {opt}"
            );
            assert!(
                r.cost <= 3.0 * opt + 1e-6,
                "seed {seed}: JV cost {} vs 3·opt = {}",
                r.cost,
                3.0 * opt
            );
            assert!(r.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn lagrangian_multiplier_preserving_bound() {
        // JV satisfies the stronger LMP bound: 3·opening + connection ≤ 3·Σα.
        for seed in 0..5 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(10, 5, 3).with_seed(seed));
            let r = jain_vazirani(&inst);
            let opening: f64 = r.open.iter().map(|&i| inst.facility_cost(i)).sum();
            let connection: f64 = r.cost - opening;
            let dual: f64 = r.alpha.iter().sum();
            assert!(
                3.0 * opening + connection <= 3.0 * dual + 1e-5,
                "seed {seed}: LMP bound violated"
            );
        }
    }

    #[test]
    fn free_facilities_instance() {
        let inst = gen::facility_location(
            GenParams::uniform_square(8, 4)
                .with_seed(1)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let r = jain_vazirani(&inst);
        // All facilities are free, so all of them are temporarily opened at t = 0 and
        // every client gets α = its distance to the nearest facility... which is only
        // reached when t grows to that distance; dual stays a valid lower bound.
        assert_dual_feasible(&inst, &r.alpha);
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(r.cost <= 3.0 * opt + 1e-6);
    }

    #[test]
    fn chosen_facilities_do_not_conflict() {
        let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(77));
        let r = jain_vazirani(&inst);
        for (idx, &a) in r.open.iter().enumerate() {
            for &b in &r.open[idx + 1..] {
                let conflict = (0..inst.num_clients()).any(|j| {
                    r.alpha[j] > inst.dist(j, a) + 1e-9 && r.alpha[j] > inst.dist(j, b) + 1e-9
                });
                assert!(!conflict, "facilities {a} and {b} share a paying client");
            }
        }
        // Every open facility was temporarily open.
        for &i in &r.open {
            assert!(r.temporarily_open.contains(&i));
        }
    }
}
