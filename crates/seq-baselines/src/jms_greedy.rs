//! The sequential greedy facility-location algorithm of Jain, Mahdian, Markakis, Saberi
//! and Vazirani (JMS), described at the top of Section 4 of the paper:
//!
//! > Until no client remains, pick the cheapest star `(i, C')`, open the facility `i`,
//! > set `f_i = 0`, remove all clients in `C'` from the instance, and repeat.
//!
//! The price of a star is `(f_i + Σ_{j∈C'} d(j,i)) / |C'|`, and for each facility the
//! cheapest maximal star consists of its `κ` closest remaining clients for some `κ`
//! (Fact 4.2), so each round only needs a prefix-sum over each facility's sorted
//! remaining-client distances. The algorithm is a 1.861-approximation.

use parfaclo_metric::{FacilityId, FlInstance};

/// Result of the sequential greedy algorithm.
#[derive(Debug, Clone)]
pub struct JmsGreedyResult {
    /// The facilities opened, in the order they were opened.
    pub open: Vec<FacilityId>,
    /// Total cost of the solution (Equation (1)).
    pub cost: f64,
    /// Number of greedy rounds (stars picked). Useful as the sequential-round baseline
    /// for experiment E2.
    pub rounds: usize,
    /// The α values of the dual-fitting analysis: `α_j` is the price of the star that
    /// removed client `j`.
    pub alpha: Vec<f64>,
}

/// For one facility, finds the cheapest maximal star over the remaining clients.
///
/// `sorted_clients` lists the remaining clients by increasing distance from the
/// facility. Returns `(price, number_of_clients_in_star)`, or `None` if no clients
/// remain.
fn cheapest_star(
    inst: &FlInstance,
    facility: FacilityId,
    facility_cost: f64,
    sorted_clients: &[usize],
) -> Option<(f64, usize)> {
    if sorted_clients.is_empty() {
        return None;
    }
    let mut best_price = f64::INFINITY;
    let mut best_k = 0usize;
    let mut dist_sum = 0.0;
    for (idx, &j) in sorted_clients.iter().enumerate() {
        dist_sum += inst.dist(j, facility);
        let k = idx + 1;
        let price = (facility_cost + dist_sum) / k as f64;
        if price < best_price {
            best_price = price;
            best_k = k;
        }
    }
    Some((best_price, best_k))
}

/// Runs the JMS greedy algorithm on `inst`.
///
/// # Panics
/// Panics if the instance has no facilities or no clients.
pub fn jms_greedy(inst: &FlInstance) -> JmsGreedyResult {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nf > 0 && nc > 0,
        "instance must have clients and facilities"
    );

    // Pre-sort each facility's clients by distance (reused every round with removed
    // clients filtered out).
    let sorted_by_facility: Vec<Vec<usize>> = (0..nf)
        .map(|i| {
            let mut order: Vec<usize> = (0..nc).collect();
            order.sort_by(|&a, &b| {
                inst.dist(a, i)
                    .partial_cmp(&inst.dist(b, i))
                    .unwrap()
                    .then(a.cmp(&b))
            });
            order
        })
        .collect();

    let mut remaining = vec![true; nc];
    let mut remaining_count = nc;
    let mut facility_cost: Vec<f64> = (0..nf).map(|i| inst.facility_cost(i)).collect();
    let mut opened = vec![false; nf];
    let mut open_order: Vec<FacilityId> = Vec::new();
    let mut alpha = vec![0.0; nc];
    let mut rounds = 0usize;

    while remaining_count > 0 {
        rounds += 1;
        // Find the cheapest maximal star over all facilities.
        let mut best: Option<(f64, FacilityId, usize)> = None; // (price, facility, k)
        let mut per_facility_remaining: Vec<Vec<usize>> = Vec::with_capacity(nf);
        for i in 0..nf {
            let remaining_sorted: Vec<usize> = sorted_by_facility[i]
                .iter()
                .copied()
                .filter(|&j| remaining[j])
                .collect();
            if let Some((price, k)) = cheapest_star(inst, i, facility_cost[i], &remaining_sorted) {
                let better = match best {
                    None => true,
                    Some((bp, bi, _)) => price < bp || (price == bp && i < bi),
                };
                if better {
                    best = Some((price, i, k));
                }
            }
            per_facility_remaining.push(remaining_sorted);
        }
        let (price, fac, k) =
            best.expect("at least one facility must yield a star while clients remain");

        // Open the facility (if not already), zero its cost, remove the star's clients.
        if !opened[fac] {
            opened[fac] = true;
            open_order.push(fac);
        }
        facility_cost[fac] = 0.0;
        for &j in per_facility_remaining[fac].iter().take(k) {
            remaining[j] = false;
            remaining_count -= 1;
            alpha[j] = price;
        }
    }

    let cost = inst.solution_cost(&open_order);
    JmsGreedyResult {
        open: open_order,
        cost,
        rounds,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;

    #[test]
    fn single_facility_instance() {
        let dist = DistanceMatrix::from_rows(3, 1, vec![1.0, 2.0, 3.0]);
        let inst = FlInstance::new(vec![4.0], dist);
        let r = jms_greedy(&inst);
        assert_eq!(r.open, vec![0]);
        assert_eq!(r.cost, 4.0 + 6.0);
        assert_eq!(r.rounds, 1);
        // Star price = (4 + 1 + 2 + 3) / 3.
        for a in &r.alpha {
            assert!((*a - 10.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn prefers_cheap_nearby_facility() {
        // Facility 0 is free and at distance 0 from both clients; facility 1 is
        // expensive and far. Greedy must open only facility 0.
        let dist = DistanceMatrix::from_rows(2, 2, vec![0.0, 10.0, 0.0, 10.0]);
        let inst = FlInstance::new(vec![0.5, 100.0], dist);
        let r = jms_greedy(&inst);
        assert_eq!(r.open, vec![0]);
        assert!((r.cost - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cheapest_star_is_prefix_of_sorted_clients() {
        let dist = DistanceMatrix::from_rows(4, 1, vec![1.0, 2.0, 100.0, 200.0]);
        let inst = FlInstance::new(vec![3.0], dist);
        // Star over clients {0,1}: price (3+3)/2 = 3; over {0}: 4; over {0,1,2}: 35.33.
        let (price, k) = cheapest_star(&inst, 0, 3.0, &[0, 1, 2, 3]).unwrap();
        assert_eq!(k, 2);
        assert!((price - 3.0).abs() < 1e-12);
        assert!(cheapest_star(&inst, 0, 3.0, &[]).is_none());
    }

    #[test]
    fn within_approximation_factor_on_small_instances() {
        // JMS is a 1.861-approximation; verify ratio <= 1.861 (+ slack for fp error)
        // against the brute-force optimum on a batch of small random instances.
        for seed in 0..8 {
            let inst = gen::facility_location(GenParams::uniform_square(10, 6).with_seed(seed));
            let r = jms_greedy(&inst);
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                r.cost <= 1.861 * opt + 1e-6,
                "seed {seed}: greedy {} vs opt {opt}",
                r.cost
            );
            assert!(r.cost >= opt - 1e-9, "cannot beat the optimum");
        }
    }

    #[test]
    fn zero_cost_facilities_open_nearest() {
        let inst = gen::facility_location(
            GenParams::uniform_square(8, 4)
                .with_seed(4)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let r = jms_greedy(&inst);
        // With free facilities the optimal cost is the sum of nearest-facility
        // distances; greedy achieves at most 1.861 times that, but in practice it opens
        // enough facilities that every client is served; just check validity and ratio.
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(r.cost <= 1.861 * opt + 1e-6);
    }

    #[test]
    fn alpha_sums_to_cost_upper_bound() {
        // In the JMS analysis Σ_j α_j equals the algorithm's total "payment", which is
        // an upper bound on the solution cost it reports.
        let inst = gen::facility_location(GenParams::gaussian_clusters(12, 5, 3).with_seed(2));
        let r = jms_greedy(&inst);
        let total: f64 = r.alpha.iter().sum();
        assert!(r.cost <= total + 1e-6);
    }

    #[test]
    fn every_client_served_and_rounds_bounded() {
        let inst = gen::facility_location(GenParams::line(20, 10).with_seed(1));
        let r = jms_greedy(&inst);
        assert!(!r.open.is_empty());
        assert!(r.rounds <= 20, "at most one round per client batch");
        // Open set has no duplicates.
        let mut sorted = r.open.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.open.len());
    }
}
