//! Sequential local search for k-median and k-means, plus Lloyd's heuristic.
//!
//! The single-swap local search of Arya et al. (SIAM J. Comput. 2004) starts from any
//! set of `k` centers and repeatedly applies a swap `(drop i, add i')` while one exists
//! that improves the objective; with the `(1 − ε/k)` improvement threshold used in
//! Section 7 of the paper the number of iterations is `O(k log(cost(S_0)/opt) / ε)` and
//! the result is a `(5 + ε)`-approximation for k-median (`81 + ε` for k-means, by the
//! same argument applied to squared distances).
//!
//! [`lloyd_kmeans`] is the classical alternating-minimisation heuristic for geometric
//! instances; it carries no approximation guarantee but is the de-facto practical
//! baseline, so the k-means experiments report it alongside the local-search results.

use parfaclo_metric::{ClusterInstance, NodeId, Point};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Which clustering objective local search optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSearchObjective {
    /// Sum of distances.
    KMedian,
    /// Sum of squared distances.
    KMeans,
}

/// Result of a sequential local-search run.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// Final centers (exactly `min(k, n)` of them).
    pub centers: Vec<NodeId>,
    /// Final objective value.
    pub cost: f64,
    /// Number of improving swaps applied.
    pub swaps: usize,
}

fn objective(inst: &ClusterInstance, centers: &[NodeId], obj: LocalSearchObjective) -> f64 {
    match obj {
        LocalSearchObjective::KMedian => inst.kmedian_cost(centers),
        LocalSearchObjective::KMeans => inst.kmeans_cost(centers),
    }
}

/// Generic sequential single-swap local search with the `(1 − β/k)` improvement
/// threshold, `β = ε / (1 + ε)`, starting from `initial` centers.
pub fn local_search(
    inst: &ClusterInstance,
    k: usize,
    epsilon: f64,
    initial: &[NodeId],
    obj: LocalSearchObjective,
) -> LocalSearchResult {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let k = k.min(n);
    let mut centers: Vec<NodeId> = initial.to_vec();
    centers.truncate(k);
    assert_eq!(centers.len(), k, "initial solution must contain k centers");

    let beta = epsilon / (1.0 + epsilon);
    let threshold = 1.0 - beta / k as f64;
    let mut cost = objective(inst, &centers, obj);
    let mut swaps = 0usize;

    loop {
        let mut best: Option<(usize, NodeId, f64)> = None; // (position in centers, new center, new cost)
        for pos in 0..centers.len() {
            for cand in 0..n {
                if centers.contains(&cand) {
                    continue;
                }
                let mut trial = centers.clone();
                trial[pos] = cand;
                let c = objective(inst, &trial, obj);
                if c < best.map_or(f64::INFINITY, |b| b.2) {
                    best = Some((pos, cand, c));
                }
            }
        }
        match best {
            Some((pos, cand, c)) if c < threshold * cost => {
                centers[pos] = cand;
                cost = c;
                swaps += 1;
            }
            _ => break,
        }
    }

    LocalSearchResult {
        centers,
        cost,
        swaps,
    }
}

/// Sequential local search for **k-median** starting from the first `k` nodes.
pub fn local_search_kmedian(inst: &ClusterInstance, k: usize, epsilon: f64) -> LocalSearchResult {
    let k = k.min(inst.n());
    let initial: Vec<NodeId> = (0..k).collect();
    local_search(inst, k, epsilon, &initial, LocalSearchObjective::KMedian)
}

/// Sequential local search for **k-means** starting from the first `k` nodes.
pub fn local_search_kmeans(inst: &ClusterInstance, k: usize, epsilon: f64) -> LocalSearchResult {
    let k = k.min(inst.n());
    let initial: Vec<NodeId> = (0..k).collect();
    local_search(inst, k, epsilon, &initial, LocalSearchObjective::KMeans)
}

/// Result of Lloyd's algorithm (geometric k-means).
#[derive(Debug, Clone)]
pub struct LloydResult {
    /// Final centroids (arbitrary points, not necessarily input nodes).
    pub centroids: Vec<Point>,
    /// Sum of squared distances of every point to its closest centroid.
    pub cost: f64,
    /// Number of update iterations performed.
    pub iterations: usize,
}

/// Lloyd's k-means heuristic on the instance's underlying points.
///
/// # Panics
/// Panics if the instance carries no geometric points (it was built from a bare matrix)
/// or `k == 0`.
pub fn lloyd_kmeans(inst: &ClusterInstance, k: usize, max_iters: usize, seed: u64) -> LloydResult {
    let points = inst
        .points()
        .expect("Lloyd's algorithm needs geometric points");
    let n = points.len();
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut centroids: Vec<Point> = indices[..k].iter().map(|&i| points[i].clone()).collect();

    let assign = |centroids: &[Point]| -> Vec<usize> {
        (0..n)
            .map(|j| {
                (0..centroids.len())
                    .min_by(|&a, &b| {
                        points[j]
                            .squared_euclidean(&centroids[a])
                            .partial_cmp(&points[j].squared_euclidean(&centroids[b]))
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect()
    };

    let mut assignment = assign(&centroids);
    let mut iterations = 0usize;
    for _ in 0..max_iters {
        iterations += 1;
        // Update step: move each centroid to the mean of its cluster.
        let mut new_centroids = Vec::with_capacity(k);
        for (c, centroid) in centroids.iter().enumerate().take(k) {
            let members: Vec<Point> = (0..n)
                .filter(|&j| assignment[j] == c)
                .map(|j| points[j].clone())
                .collect();
            if members.is_empty() {
                new_centroids.push(centroid.clone());
            } else {
                new_centroids.push(Point::centroid(&members));
            }
        }
        let new_assignment = assign(&new_centroids);
        let converged = new_assignment == assignment;
        centroids = new_centroids;
        assignment = new_assignment;
        if converged {
            break;
        }
    }

    let cost: f64 = (0..n)
        .map(|j| points[j].squared_euclidean(&centroids[assignment[j]]))
        .sum();
    LloydResult {
        centroids,
        cost,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds::{self, ClusterObjective};

    #[test]
    fn kmedian_local_search_matches_guarantee_on_small_instances() {
        for seed in 0..6 {
            let inst = gen::clustering(GenParams::uniform_square(10, 10).with_seed(seed));
            for k in 1..4 {
                let r = local_search_kmedian(&inst, k, 0.1);
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KMedian);
                assert!(
                    r.cost <= (5.0 + 0.1) * opt + 1e-6,
                    "seed {seed} k {k}: {} vs opt {opt}",
                    r.cost
                );
                assert!(r.cost >= opt - 1e-9);
                assert_eq!(r.centers.len(), k);
            }
        }
    }

    #[test]
    fn kmeans_local_search_is_valid() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(9, 9).with_seed(seed));
            let r = local_search_kmeans(&inst, 2, 0.2);
            let (_, opt) =
                lower_bounds::brute_force_kclustering(&inst, 2, ClusterObjective::KMeans);
            assert!(r.cost <= 81.2 * opt + 1e-6);
            assert!(r.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn local_search_on_planted_clusters_finds_good_solution() {
        let inst = gen::clustering(GenParams::planted(30, 30, 3).with_seed(5));
        let r = local_search_kmedian(&inst, 3, 0.1);
        // Each blob has radius 1, so a perfect clustering costs at most n * 2.
        assert!(r.cost <= 60.0, "cost {}", r.cost);
    }

    #[test]
    fn swap_count_is_reported_and_progress_monotone() {
        let inst = gen::clustering(GenParams::uniform_square(15, 15).with_seed(2));
        let from_bad_start = local_search(&inst, 3, 0.1, &[0, 1, 2], LocalSearchObjective::KMedian);
        // Starting from an adversarial initial solution the search should improve it.
        let initial_cost = inst.kmedian_cost(&[0, 1, 2]);
        assert!(from_bad_start.cost <= initial_cost + 1e-9);
        if from_bad_start.cost < initial_cost {
            assert!(from_bad_start.swaps > 0);
        }
    }

    #[test]
    fn k_of_one_picks_best_single_center_within_factor() {
        let inst = gen::clustering(GenParams::line(8, 8));
        let r = local_search_kmedian(&inst, 1, 0.05);
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 1, ClusterObjective::KMedian);
        assert!(r.cost <= 5.05 * opt + 1e-9);
    }

    #[test]
    fn lloyd_reduces_cost_and_terminates() {
        let inst = gen::clustering(GenParams::gaussian_clusters(60, 60, 4).with_seed(11));
        let r = lloyd_kmeans(&inst, 4, 50, 7);
        assert_eq!(r.centroids.len(), 4);
        assert!(r.iterations >= 1 && r.iterations <= 50);
        // Lloyd's cost should be no worse than putting a single centroid at the global
        // mean.
        let pts = inst.points().unwrap();
        let global = Point::centroid(pts);
        let single_cost: f64 = pts.iter().map(|p| p.squared_euclidean(&global)).sum();
        assert!(r.cost <= single_cost + 1e-9);
    }

    #[test]
    #[should_panic(expected = "geometric points")]
    fn lloyd_requires_points() {
        use parfaclo_metric::{ClusterInstance, DistanceMatrix};
        let inst = ClusterInstance::new(DistanceMatrix::filled(3, 3, 0.0));
        let _ = lloyd_kmeans(&inst, 1, 10, 0);
    }
}
