//! Sequential 2-approximations for k-center.
//!
//! Two classical algorithms are provided:
//!
//! * [`gonzalez_kcenter`] — Gonzalez's farthest-point traversal (Theoret. Comput. Sci.
//!   1985): repeatedly add the node farthest from the current centers. Simple, fast
//!   (`O(nk)`), and a 2-approximation.
//! * [`hochbaum_shmoys_kcenter`] — the bottleneck approach of Hochbaum & Shmoys (Math.
//!   OR 1985) that Section 6.1 of the paper parallelises: binary search over the sorted
//!   set of pairwise distances; for a candidate radius build the threshold graph and
//!   greedily pick a maximal set of nodes no two of which share a neighbour (a dominator
//!   set); if the set has at most `k` nodes the radius is feasible.
//!
//! Both return the chosen centers; the parallel algorithm in `parfaclo-kclustering` is
//! compared against them in experiment E4.

use parfaclo_metric::{ClusterInstance, DistanceOracle, NodeId};

/// Result of a sequential k-center computation.
#[derive(Debug, Clone)]
pub struct KCenterResult {
    /// The chosen centers (at most `k`).
    pub centers: Vec<NodeId>,
    /// The k-center objective value (maximum distance of any node to its closest
    /// center).
    pub radius: f64,
}

/// Gonzalez's farthest-point 2-approximation.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn gonzalez_kcenter(inst: &ClusterInstance, k: usize) -> KCenterResult {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    let k = k.min(n);

    let mut centers = vec![0usize];
    let mut dist_to_centers: Vec<f64> = (0..n).map(|j| inst.dist(j, 0)).collect();
    while centers.len() < k {
        let (next, &d) = dist_to_centers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        if d == 0.0 {
            break; // all remaining nodes coincide with a center
        }
        centers.push(next);
        for (j, d) in dist_to_centers.iter_mut().enumerate() {
            *d = d.min(inst.dist(j, next));
        }
    }
    let radius = inst.kcenter_cost(&centers);
    KCenterResult { centers, radius }
}

/// Greedy maximal dominator set of the threshold graph `H_alpha`: scan nodes in index
/// order, adding a node when it is not within `2·alpha`... more precisely, when it does
/// not share an `H_alpha`-neighbour with (and is not adjacent to) an already-chosen
/// node. Used as the feasibility probe of the Hochbaum–Shmoys binary search.
fn greedy_dominator_count(inst: &ClusterInstance, alpha: f64, k: usize) -> (Vec<NodeId>, bool) {
    let n = inst.n();
    let mut chosen: Vec<NodeId> = Vec::new();
    'outer: for v in 0..n {
        for &c in &chosen {
            // v conflicts with c when they are adjacent in H_alpha² — i.e. within
            // distance 2·alpha via the triangle inequality on the threshold graph.
            if inst.dist(v, c) <= 2.0 * alpha {
                continue 'outer;
            }
        }
        chosen.push(v);
        if chosen.len() > k {
            return (chosen, false);
        }
    }
    (chosen, true)
}

/// The sequential Hochbaum–Shmoys bottleneck 2-approximation.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn hochbaum_shmoys_kcenter(inst: &ClusterInstance, k: usize) -> KCenterResult {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    if n <= k {
        return KCenterResult {
            centers: (0..n).collect(),
            radius: 0.0,
        };
    }

    // Candidate radii: the distinct pairwise distances.
    let distances = inst.distances().sorted_distinct_values();
    // Binary search for the smallest alpha whose dominator set has at most k nodes.
    let mut lo = 0usize;
    let mut hi = distances.len() - 1;
    let mut best: Option<Vec<NodeId>> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let (set, feasible) = greedy_dominator_count(inst, distances[mid], k);
        if feasible {
            best = Some(set);
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }
    let centers = best.unwrap_or_else(|| {
        // The largest distance always yields a feasible (singleton) dominator set.
        greedy_dominator_count(inst, *distances.last().unwrap(), k).0
    });
    let radius = inst.kcenter_cost(&centers);
    KCenterResult { centers, radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds::{self, ClusterObjective};

    #[test]
    fn gonzalez_on_planted_clusters_finds_them() {
        let inst = gen::clustering(GenParams::planted(40, 40, 4).with_seed(3));
        let r = gonzalez_kcenter(&inst, 4);
        assert_eq!(r.centers.len(), 4);
        // Planted blobs have radius 1 and separation 50, so a correct 4-center solution
        // has radius at most 2 (2-approximation of an optimum ≤ 1... in fact ≤ 2).
        assert!(r.radius <= 2.0 + 1e-9, "radius {}", r.radius);
    }

    #[test]
    fn hochbaum_shmoys_on_planted_clusters() {
        let inst = gen::clustering(GenParams::planted(40, 40, 4).with_seed(3));
        let r = hochbaum_shmoys_kcenter(&inst, 4);
        assert!(r.centers.len() <= 4);
        assert!(r.radius <= 4.0 + 1e-9, "radius {}", r.radius);
    }

    #[test]
    fn both_algorithms_respect_2_approximation_vs_brute_force() {
        for seed in 0..6 {
            let inst = gen::clustering(GenParams::uniform_square(12, 12).with_seed(seed));
            for k in 1..4 {
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
                let g = gonzalez_kcenter(&inst, k);
                let h = hochbaum_shmoys_kcenter(&inst, k);
                assert!(
                    g.radius <= 2.0 * opt + 1e-9,
                    "seed {seed} k {k}: Gonzalez {} vs opt {opt}",
                    g.radius
                );
                assert!(
                    h.radius <= 2.0 * opt + 1e-9,
                    "seed {seed} k {k}: HS {} vs opt {opt}",
                    h.radius
                );
                assert!(g.centers.len() <= k);
                assert!(h.centers.len() <= k);
            }
        }
    }

    #[test]
    fn k_larger_than_n_selects_everything() {
        let inst = gen::clustering(GenParams::uniform_square(5, 5).with_seed(0));
        let g = gonzalez_kcenter(&inst, 10);
        assert!(g.radius <= 1e-12);
        let h = hochbaum_shmoys_kcenter(&inst, 10);
        assert_eq!(h.centers.len(), 5);
        assert_eq!(h.radius, 0.0);
    }

    #[test]
    fn k_equal_one_picks_a_single_center() {
        let inst = gen::clustering(GenParams::line(6, 6));
        let g = gonzalez_kcenter(&inst, 1);
        assert_eq!(g.centers.len(), 1);
        // With a single center at an endpoint the radius is 5; with the best center it
        // would be 2.5 (nodes at 0..5); Gonzalez starts from node 0 so radius = 5, still
        // within 2x of the optimum 2.5 (brute force check).
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 1, ClusterObjective::KCenter);
        assert!(g.radius <= 2.0 * opt + 1e-9);
    }

    #[test]
    fn radius_matches_objective_evaluation() {
        let inst = gen::clustering(GenParams::gaussian_clusters(30, 30, 3).with_seed(9));
        let r = gonzalez_kcenter(&inst, 3);
        assert!((r.radius - inst.kcenter_cost(&r.centers)).abs() < 1e-12);
    }
}
