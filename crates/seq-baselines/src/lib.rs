//! # parfaclo-seq-baselines
//!
//! Sequential baseline algorithms for facility-location problems.
//!
//! Every guarantee in *Blelloch & Tangwongsan (SPAA 2010)* is phrased relative to a
//! sequential algorithm: the parallel greedy mimics Jain–Mahdian–Markakis–Saberi–Vazirani
//! (JMS) greedy, the parallel primal-dual mimics Jain–Vazirani (JV), the parallel
//! k-center parallelises Hochbaum–Shmoys, and the parallel local search parallelises the
//! classical swap-based local search of Arya et al. The experiment harness therefore
//! needs faithful sequential implementations to compare against — both for solution
//! quality ("does the slack cost us anything?") and for measured work ("is the parallel
//! algorithm within a log factor of the sequential one?", Section 1.1).
//!
//! This crate implements, from scratch:
//!
//! * [`jms_greedy`] — the greedy algorithm of Jain et al. (J. ACM 2003): repeatedly open
//!   the cheapest maximal star (1.861-approximation);
//! * [`jain_vazirani`] — the primal-dual 3-approximation of Jain & Vazirani (J. ACM
//!   2001), implemented as an exact event-driven simulation of the continuous
//!   dual-raising process;
//! * [`kcenter`] — Gonzalez's farthest-point 2-approximation and the sequential
//!   Hochbaum–Shmoys bottleneck 2-approximation;
//! * [`local_search`] — sequential swap-based local search for k-median and k-means
//!   (5- and 81-approximations respectively) and Lloyd's heuristic for geometric
//!   k-means.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod jain_vazirani;
pub mod jms_greedy;
pub mod kcenter;
pub mod local_search;
pub mod solvers;

pub use jain_vazirani::jain_vazirani;
pub use jms_greedy::jms_greedy;
pub use kcenter::{gonzalez_kcenter, hochbaum_shmoys_kcenter};
pub use local_search::{lloyd_kmeans, local_search_kmeans, local_search_kmedian};
pub use solvers::{
    GonzalezSolver, HochbaumShmoysSolver, JainVaziraniSolver, JmsGreedySolver, SeqKMedianSolver,
};
