//! The solution type returned by every parallel facility-location algorithm.

use parfaclo_matrixops::CostReport;
use parfaclo_metric::{FacilityId, FlInstance};

/// A facility-location solution together with the certificates and statistics the
/// experiments need.
#[derive(Debug, Clone)]
pub struct FlSolution {
    /// The facilities opened by the algorithm, sorted ascending.
    pub open: Vec<FacilityId>,
    /// Total solution cost (Equation (1)): opening plus connection.
    pub cost: f64,
    /// Opening-cost part of `cost`.
    pub opening_cost: f64,
    /// Connection-cost part of `cost`.
    pub connection_cost: f64,
    /// Closest-open-facility assignment for every client.
    pub assignment: Vec<FacilityId>,
    /// The per-client dual values `α_j` produced by the run. For the primal-dual
    /// algorithm these are dual feasible as-is; for greedy they must be scaled down (by
    /// 1.861 or 3, Lemmas 4.6/4.7) to become feasible. For LP rounding this is empty.
    pub alpha: Vec<f64>,
    /// A certified lower bound on `opt` derived from the run (dual value after any
    /// necessary scaling, or the LP value for the rounding algorithm). Zero when the
    /// algorithm provides no certificate.
    pub lower_bound: f64,
    /// Number of outer rounds executed.
    pub rounds: usize,
    /// Total number of inner (subselection / Luby) iterations across all rounds.
    pub inner_rounds: usize,
    /// Work/primitive/round counters accumulated during the run.
    pub work: CostReport,
}

impl FlSolution {
    /// Builds a solution record from an open set by evaluating costs on the instance.
    ///
    /// # Panics
    /// Panics if `open` is empty.
    pub fn from_open_set(inst: &FlInstance, mut open: Vec<FacilityId>) -> Self {
        assert!(
            !open.is_empty(),
            "a solution must open at least one facility"
        );
        open.sort_unstable();
        open.dedup();
        let opening_cost = inst.opening_cost(&open);
        let connection_cost = inst.connection_cost(&open);
        let assignment = inst.closest_assignment(&open);
        FlSolution {
            cost: opening_cost + connection_cost,
            opening_cost,
            connection_cost,
            assignment,
            open,
            alpha: Vec::new(),
            lower_bound: 0.0,
            rounds: 0,
            inner_rounds: 0,
            work: CostReport::default(),
        }
    }

    /// The approximation ratio relative to the solution's own certified lower bound, or
    /// `None` if the run produced no certificate.
    pub fn certified_ratio(&self) -> Option<f64> {
        if self.lower_bound > 0.0 {
            Some(self.cost / self.lower_bound)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::DistanceMatrix;

    fn tiny() -> FlInstance {
        FlInstance::new(
            vec![10.0, 20.0],
            DistanceMatrix::from_rows(3, 2, vec![1.0, 4.0, 2.0, 3.0, 5.0, 1.0]),
        )
    }

    #[test]
    fn from_open_set_evaluates_costs() {
        let inst = tiny();
        let s = FlSolution::from_open_set(&inst, vec![1, 0, 0]);
        assert_eq!(s.open, vec![0, 1]);
        assert_eq!(s.opening_cost, 30.0);
        assert_eq!(s.connection_cost, 4.0);
        assert_eq!(s.cost, 34.0);
        assert_eq!(s.assignment, vec![0, 0, 1]);
        assert_eq!(s.certified_ratio(), None);
    }

    #[test]
    fn certified_ratio_uses_lower_bound() {
        let inst = tiny();
        let mut s = FlSolution::from_open_set(&inst, vec![0]);
        s.lower_bound = 9.0;
        assert!((s.certified_ratio().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one facility")]
    fn empty_open_set_rejected() {
        let inst = tiny();
        let _ = FlSolution::from_open_set(&inst, vec![]);
    }
}
