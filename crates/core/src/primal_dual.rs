//! The parallel primal-dual facility-location algorithm (Algorithm 5.1, Theorem 5.4).
//!
//! The Jain–Vazirani primal-dual scheme raises all client duals `α_j` continuously; the
//! parallel version instead raises them **geometrically**: in iteration `ℓ` every
//! unfrozen client has `α_j = (γ/m²)(1 + ε)^ℓ`. Each iteration then performs three
//! data-parallel steps over the distance matrix: open every facility whose (slack-
//! inflated) payments cover its cost, freeze every client that can reach an open
//! facility, and extend the client/facility graph `H` with the newly tight edges.
//! Because `α` values rise by `(1 + ε)` factors, `O(log_{1+ε} m)` iterations suffice.
//!
//! The preprocessing step (borrowed by the paper from Pandit & Pemmaraju's distributed
//! algorithm) opens "free" facilities that are already paid for at the starting dual
//! value `γ/m²` and freezes their co-located clients at `α = 0`, which is what pins the
//! iteration count.
//!
//! Post-processing computes `MaxUDom(H)` so each client contributes to at most one open
//! facility, exactly as in the sequential algorithm's conflict-graph MIS. The final
//! α vector is dual feasible (Claim 5.1), so `Σ_j α_j` is a certified lower bound on
//! `opt`, and the solution cost is at most `(3 + O(ε))` times it (Lemmas 5.2, 5.3).

use crate::config::FlConfig;
use crate::solution::FlSolution;
use parfaclo_bucket::{BucketMapping, BucketQueue, EventEngine};
use parfaclo_dominator::{max_u_dom, BipartiteGraph};
use parfaclo_lp::dual;
use parfaclo_matrixops::CostMeter;
use parfaclo_metric::{DistanceOracle, FacilityId, FlInstance};
use parfaclo_trace as trace;
use rayon::prelude::*;

/// Extended result of the parallel primal-dual algorithm.
#[derive(Debug, Clone)]
pub struct PrimalDualOutput {
    /// The solution (open set, costs, α values, work counters).
    pub solution: FlSolution,
    /// Facilities opened by the preprocessing step ("free facilities", `F_0`).
    pub free_facilities: Vec<FacilityId>,
    /// Facilities temporarily opened during the main iterations (`F_T`).
    pub temporarily_open: Vec<FacilityId>,
    /// Number of Luby rounds the `MaxUDom` post-processing used.
    pub postprocess_rounds: usize,
}

/// Runs Algorithm 5.1 and returns just the solution.
pub fn parallel_primal_dual(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
    parallel_primal_dual_detailed(inst, cfg).solution
}

/// Runs Algorithm 5.1, returning the solution plus the intermediate facility sets.
///
/// # Panics
/// Panics if the instance has no clients or no facilities, or if the defensive
/// `cfg.max_rounds` cap is exceeded.
pub fn parallel_primal_dual_detailed(inst: &FlInstance, cfg: &FlConfig) -> PrimalDualOutput {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nc > 0 && nf > 0,
        "instance must have clients and facilities"
    );
    let eps = cfg.epsilon;
    let slack = 1.0 + eps;
    let meter = CostMeter::new();
    let m = inst.m() as f64;

    let gamma = inst.gamma();
    // Starting dual value. γ > 0 whenever some client has a positive distance or some
    // facility a positive cost; if γ = 0 the whole instance is degenerate (every client
    // sits on a free facility) and the loop below terminates immediately anyway.
    let alpha0 = if cfg.preprocess {
        gamma / (m * m)
    } else {
        // Without preprocessing start at the smallest scale present in the input so the
        // guarantee still holds; only the round bound degrades.
        let min_pos = inst
            .distances()
            .min_positive_entry()
            .unwrap_or(1.0)
            .min(gamma.max(f64::MIN_POSITIVE));
        min_pos / (m * m)
    };

    let mut frozen: Vec<bool> = vec![false; nc];
    let mut alpha: Vec<f64> = vec![0.0; nc];
    let mut opened: Vec<bool> = vec![false; nf];
    let mut free_facilities: Vec<FacilityId> = Vec::new();
    let mut temporarily_open: Vec<FacilityId> = Vec::new();

    // ---- Preprocessing: free facilities ------------------------------------------------
    if cfg.preprocess && gamma > 0.0 {
        let _span = trace::span("preprocess", Some(&meter));
        meter.add_primitive(inst.m() as u64);
        let threshold = gamma / (m * m);
        let is_free = |i: usize| -> bool {
            let paid: f64 = (0..nc)
                .map(|j| (threshold - inst.dist(j, i)).max(0.0))
                .sum();
            paid >= inst.facility_cost(i)
        };
        let free: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
            (0..nf).into_par_iter().map(is_free).collect()
        } else {
            (0..nf).map(is_free).collect()
        };
        for i in 0..nf {
            if free[i] {
                opened[i] = true;
                free_facilities.push(i);
            }
        }
        // Clients adjacent to a free facility at distance <= γ/m² are freely connected.
        meter.add_primitive(inst.m() as u64);
        for j in 0..nc {
            if free_facilities
                .iter()
                .any(|&i| inst.dist(j, i) <= threshold)
            {
                frozen[j] = true;
                alpha[j] = 0.0;
            }
        }
    }

    // ---- Main iterations ---------------------------------------------------------------
    //
    // Both engines execute the *same* iteration ladder `t = α₀·(1+ε)^ℓ` and produce
    // byte-identical `(opened, frozen, α, temporarily_open, iterations)` — only the
    // work profile differs. `Scan` re-evaluates every facility and client each
    // iteration (the paper's data-parallel formulation); `Bucket` schedules each
    // facility/client on a deterministic bucket queue and touches it only when its
    // event level arrives.
    let ascent_span = trace::span("dual-ascent", Some(&meter));
    let mut iterations = 0usize;
    let mut t = alpha0;
    match cfg.engine {
        EventEngine::Scan => {
            while frozen.iter().any(|&f| !f) && opened.iter().any(|&o| !o) {
                iterations += 1;
                meter.add_round();
                // Frontier = unfrozen clients at the start of the iteration;
                // identical to the bucket engine's `unfrozen_count` because
                // the engines replay the same ladder state-for-state.
                trace::round(
                    iterations as u64,
                    || frozen.iter().filter(|&&f| !f).count() as u64,
                    &meter,
                );
                assert!(
                    iterations <= cfg.max_rounds,
                    "parallel primal-dual exceeded {} iterations — this indicates a bug",
                    cfg.max_rounds
                );

                // Step 1: unfrozen clients raise their dual to the current level.
                for j in 0..nc {
                    if !frozen[j] {
                        alpha[j] = t;
                    }
                }
                meter.add_primitive(nc as u64);

                // Step 2: open facilities whose slack-inflated payments cover their cost.
                meter.add_primitive(inst.m() as u64);
                let should_open = |i: usize| -> bool {
                    if opened[i] {
                        return false;
                    }
                    let paid: f64 = (0..nc)
                        .map(|j| (slack * alpha[j] - inst.dist(j, i)).max(0.0))
                        .sum();
                    paid >= inst.facility_cost(i)
                };
                let newly: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
                    (0..nf).into_par_iter().map(should_open).collect()
                } else {
                    (0..nf).map(should_open).collect()
                };
                for i in 0..nf {
                    if newly[i] {
                        opened[i] = true;
                        temporarily_open.push(i);
                    }
                }

                // Step 3: freeze clients that can reach an open facility within the slack.
                meter.add_primitive(inst.m() as u64);
                let should_freeze = |j: usize| -> bool {
                    !frozen[j] && (0..nf).any(|i| opened[i] && slack * alpha[j] >= inst.dist(j, i))
                };
                let newly_frozen: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
                    (0..nc).into_par_iter().map(should_freeze).collect()
                } else {
                    (0..nc).map(should_freeze).collect()
                };
                for j in 0..nc {
                    if newly_frozen[j] {
                        frozen[j] = true;
                    }
                }

                // Step 4 (the graph H) is materialised once at the end from the final α
                // values: edges only ever get added and the membership test is monotone
                // in α.
                t *= slack;
            }
        }
        EventEngine::Bucket => {
            bucket_event_loop(
                inst,
                cfg,
                &meter,
                slack,
                alpha0,
                &mut frozen,
                &mut alpha,
                &mut opened,
                &free_facilities,
                &mut temporarily_open,
                &mut iterations,
                &mut t,
            );
        }
    }

    // If every facility opened before every client froze, the remaining clients' duals
    // rise just enough to reach their closest (now open) facility.
    for j in 0..nc {
        if !frozen[j] {
            let d_min = (0..nf)
                .filter(|&i| opened[i])
                .map(|i| inst.dist(j, i))
                .fold(f64::INFINITY, f64::min);
            alpha[j] = alpha[j].max(d_min);
            frozen[j] = true;
        }
    }
    drop(ascent_span);

    // ---- Post-processing: MaxUDom over the tight-edge graph ----------------------------
    // H = (F_T, C, E) with ij ∈ E iff (1+ε)·α_j > d(j, i).
    let postprocess_span = trace::span("postprocess-maxudom", Some(&meter));
    let ft: Vec<FacilityId> = temporarily_open.clone();
    let h =
        BipartiteGraph::from_predicate(ft.len(), nc, |u, j| slack * alpha[j] > inst.dist(j, ft[u]));
    meter.add_primitive((ft.len() * nc) as u64);
    let dom = if ft.is_empty() {
        parfaclo_dominator::DominatorResult {
            selected: vec![],
            rounds: 0,
        }
    } else {
        max_u_dom(&h, cfg.seed, cfg.policy, &meter)
    };
    let mut open_set: Vec<FacilityId> = dom.selected.iter().map(|&u| ft[u]).collect();
    open_set.extend(free_facilities.iter().copied());

    if open_set.is_empty() {
        // Degenerate guard (e.g. nf = 1 with an enormous cost and the loop cap): open
        // the cheapest facility so the solution is well-defined.
        open_set.push(
            (0..nf)
                .min_by(|&a, &b| {
                    inst.facility_cost(a)
                        .partial_cmp(&inst.facility_cost(b))
                        .unwrap()
                })
                .unwrap(),
        );
    }
    drop(postprocess_span);

    let certify_span = trace::span("certify", Some(&meter));
    let mut solution = FlSolution::from_open_set(inst, open_set);
    // α is dual feasible by Claim 5.1; certify numerically (and fall back to scaling if
    // floating-point slack pushed it marginally over).
    let scale = dual::max_feasible_scaling(inst, &alpha, 40);
    let scaled: Vec<f64> = alpha.iter().map(|a| a * scale).collect();
    solution.lower_bound = dual::dual_value(&scaled);
    solution.alpha = alpha;
    solution.rounds = iterations;
    solution.inner_rounds = dom.rounds;
    drop(certify_span);
    solution.work = meter.report();

    PrimalDualOutput {
        solution,
        free_facilities,
        temporarily_open,
        postprocess_rounds: dom.rounds,
    }
}

/// Earliest 0-based iteration at which facility `i` (cost `fi`) could possibly
/// open: payments are bounded by `nc·(1+ε)·t` because every dual is at most the
/// current level, so opening needs `t ≥ fi / (nc·(1+ε))`, i.e.
/// `(1+ε)^step ≥ fi / (nc·(1+ε)·α₀)`. The estimate is shifted two iterations
/// earlier so floating-point error in the logarithms can only cause a harmless
/// early (exact) re-check, never a late one.
fn earliest_open_step(fi: f64, nc: f64, slack: f64, alpha0: f64, ln_slack: f64) -> usize {
    if alpha0 <= 0.0 || fi <= nc * slack * alpha0 {
        return 0;
    }
    let est = ((fi / (nc * slack * alpha0)).ln() / ln_slack).ceil();
    if !est.is_finite() || est <= 2.0 {
        0
    } else {
        // Cap far above any real iteration count (max_rounds is 100k by default).
        (est.min(1e12) as usize).saturating_sub(2)
    }
}

/// How many iterations ahead a facility that failed its exact payment check by
/// `deficit` can safely be rescheduled. Payments grow by at most
/// `nc·(1+ε)·(t′ − t)` between levels `t` and `t′` (each of the `nc` duals rises
/// by at most `t′ − t` and `max(0, ·)` is 1-Lipschitz), so the facility cannot
/// open before `(1+ε)^k ≥ 1 + deficit/(nc·(1+ε)·t)`. As with
/// [`earliest_open_step`] the bound is shrunk by two iterations to absorb
/// floating-point error; re-checking early is always safe.
fn reschedule_ahead(deficit: f64, nc: f64, slack: f64, t: f64, ln_slack: f64) -> usize {
    // Degenerate levels (t = 0) or non-positive deficits make the ratio
    // non-finite or non-positive: just re-check next iteration.
    let ratio = deficit / (nc * slack * t);
    if !ratio.is_finite() || ratio <= 0.0 {
        return 1;
    }
    let k = (ratio.ln_1p() / ln_slack).ceil();
    if !k.is_finite() {
        return 1;
    }
    (k.min(1e12) as usize).saturating_sub(2).max(1)
}

/// The `EventEngine::Bucket` main loop of Algorithm 5.1.
///
/// Replays the scan engine's iteration ladder exactly — same `t` sequence (one
/// `t *= slack` per iteration), same exact open/freeze comparisons in the same
/// floating-point evaluation order — but instead of rescanning all `m` entries
/// per iteration it pops events from two deterministic bucket queues:
///
/// * an **open queue** keyed by the (integer) earliest iteration at which a
///   facility's payments could cover its cost; a popped facility gets the exact
///   `Σ_j max(0, (1+ε)·α_j − d(j,i))` check (identical fold order to the scan
///   engine) and is either opened or conservatively rescheduled, and
/// * a **freeze queue** keyed by each client's distance to its nearest opened
///   facility (`d_open_min`, an exact elementwise `min`); a client freezes in
///   the first iteration with `(1+ε)·t ≥ d_open_min[j]`, which is exactly the
///   scan engine's step-3 predicate because every unfrozen dual equals `t`.
///   Key decreases use lazy deletion: stale (higher-keyed) entries pop later
///   and are skipped via the `frozen` flag.
///
/// Within an iteration opens are processed before freezes (ascending facility
/// id, as the scan engine appends them), so clients reached by a facility
/// opened in the *same* iteration freeze in that iteration, matching step 2 →
/// step 3 ordering. Work-meter charges reflect the events actually evaluated,
/// so the work profile differs from the scan engine (by design); it is still a
/// pure function of the instance and configuration.
#[allow(clippy::too_many_arguments)]
fn bucket_event_loop(
    inst: &FlInstance,
    cfg: &FlConfig,
    meter: &CostMeter,
    slack: f64,
    alpha0: f64,
    frozen: &mut [bool],
    alpha: &mut [f64],
    opened: &mut [bool],
    free_facilities: &[FacilityId],
    temporarily_open: &mut Vec<FacilityId>,
    iterations: &mut usize,
    t: &mut f64,
) {
    let nc = inst.num_clients();
    let nc_f = nc as f64;
    let ln_slack = slack.ln();

    let mut unfrozen_count = frozen.iter().filter(|&&f| !f).count();
    let mut unopened_count = opened.iter().filter(|&&o| !o).count();

    // d_open_min[j] = min distance from client j to any opened facility (exact
    // f64 min, so the order of updates is immaterial). Seeded from the
    // preprocessing step's free facilities.
    let mut d_open_min = vec![f64::INFINITY; nc];
    let mut col = vec![0.0f64; nc];
    for &i in free_facilities {
        inst.distances().col_range_into(i, 0, &mut col);
        meter.add_primitive(nc as u64);
        for (m, &d) in d_open_min.iter_mut().zip(col.iter()) {
            if d < *m {
                *m = d;
            }
        }
    }

    let mut freeze_q = BucketQueue::new(BucketMapping::geometric_default());
    for j in 0..nc {
        if !frozen[j] && d_open_min[j].is_finite() {
            freeze_q.insert(j as u32, d_open_min[j]);
        }
    }

    // Integer iteration indices are exact as f64, so a linear unit-width
    // mapping gives one bucket per iteration and exact readiness tests.
    let mut open_q = BucketQueue::new(BucketMapping::Linear {
        origin: 0.0,
        width: 1.0,
    });
    for (i, &is_open) in opened.iter().enumerate() {
        if !is_open {
            let step = earliest_open_step(inst.facility_cost(i), nc_f, slack, alpha0, ln_slack);
            open_q.insert(i as u32, step as f64);
        }
    }

    // Level of the last executed iteration: the scan engine's step 1 leaves
    // every still-unfrozen dual at that value (0.0 if no iteration ran).
    let mut last_level = 0.0f64;
    while unfrozen_count > 0 && unopened_count > 0 {
        *iterations += 1;
        meter.add_round();
        // Mirrors the scan engine's frontier exactly (same ladder state).
        trace::round(*iterations as u64, || unfrozen_count as u64, meter);
        assert!(
            *iterations <= cfg.max_rounds,
            "parallel primal-dual exceeded {} iterations — this indicates a bug",
            cfg.max_rounds
        );
        let step = (*iterations - 1) as f64;
        let level = *t;
        last_level = level;

        // Step 2 (event form): exact payment check for every facility whose
        // scheduled iteration has arrived; ascending facility id so
        // `temporarily_open` matches the scan engine's append order.
        let mut ready = open_q.extract_ready(step);
        ready.sort_unstable_by_key(|&(i, _)| i);
        for (iu, _) in ready {
            let i = iu as usize;
            // Identical fold (order and operations) to the scan engine's
            // `should_open`; unfrozen duals conceptually hold `t` (the scan
            // engine's step 1 writes it, we defer the write until freeze).
            let paid: f64 = (0..nc)
                .map(|j| {
                    let aj = if frozen[j] { alpha[j] } else { level };
                    (slack * aj - inst.dist(j, i)).max(0.0)
                })
                .sum();
            meter.add_primitive(nc as u64);
            let fi = inst.facility_cost(i);
            if paid >= fi {
                opened[i] = true;
                unopened_count -= 1;
                temporarily_open.push(i);
                // Fold the new facility's column into d_open_min and re-key
                // clients whose nearest open facility got closer.
                inst.distances().col_range_into(i, 0, &mut col);
                meter.add_primitive(nc as u64);
                for j in 0..nc {
                    if col[j] < d_open_min[j] {
                        d_open_min[j] = col[j];
                        if !frozen[j] {
                            freeze_q.insert(j as u32, col[j]);
                        }
                    }
                }
            } else {
                let ahead = reschedule_ahead(fi - paid, nc_f, slack, level, ln_slack);
                open_q.insert(iu, step + ahead as f64);
            }
        }

        // Step 3 (event form): every unfrozen client with an opened facility
        // within `(1+ε)·t` freezes now; `α_j = t` exactly as the scan engine's
        // step 1 would have set before its step-3 test.
        let threshold = slack * level;
        let ready = freeze_q.extract_ready(threshold);
        meter.add_primitive(ready.len() as u64);
        for (ju, _) in ready {
            let j = ju as usize;
            if !frozen[j] {
                frozen[j] = true;
                alpha[j] = level;
                unfrozen_count -= 1;
            }
        }

        *t *= slack;
    }

    // Mirror the scan engine's step-1 writes for clients that never froze, so
    // the shared post-loop raise (`α_j = max(α_j, d_min)`) sees identical state.
    for j in 0..nc {
        if !frozen[j] {
            alpha[j] = last_level;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_matrixops::ExecPolicy;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;
    use parfaclo_seq_baselines::jain_vazirani;

    #[test]
    fn single_facility_single_client() {
        // With m = 1 the γ/m² preprocessing threshold equals γ itself, so the facility
        // is opened as a "free" facility straight away (the paper assumes large m; for
        // m = 1 this costs nothing since the solution is forced anyway).
        let inst = FlInstance::new(vec![2.0], DistanceMatrix::from_rows(1, 1, vec![1.0]));
        let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        assert_eq!(sol.open, vec![0]);
        assert!((sol.cost - 3.0).abs() < 1e-9);
        assert!(sol.alpha[0] <= 3.0 * 1.1 + 1e-9);

        // Without preprocessing the dual must rise to (roughly) the exact JV value 3.
        let sol2 = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_preprocess(false));
        assert_eq!(sol2.open, vec![0]);
        assert!(sol2.alpha[0] <= 3.0 * 1.1 + 1e-9 && sol2.alpha[0] >= 3.0 / 1.1 - 1e-9);
    }

    #[test]
    fn within_theorem_bound_on_small_instances() {
        // Theorem 5.4: (3 + ε')-approximation. Check against brute force.
        for seed in 0..10 {
            let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(seed));
            let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_seed(seed));
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                sol.cost <= (3.0 + 3.0 * 0.1 + 0.05) * opt + 1e-6,
                "seed {seed}: cost {} vs opt {opt}",
                sol.cost
            );
            assert!(sol.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn alpha_is_dual_feasible_and_certifies_lower_bound() {
        for seed in 0..6 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(14, 7, 3).with_seed(seed));
            let sol = parallel_primal_dual(&inst, &FlConfig::new(0.2).with_seed(seed));
            // Claim 5.1: α with canonical β is dual feasible (tolerate tiny fp slack).
            assert!(
                dual::check_alpha_feasible(&inst, &sol.alpha, 1e-6).is_ok(),
                "seed {seed}: α not dual feasible"
            );
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(sol.lower_bound <= opt + 1e-6, "seed {seed}");
            assert!(sol.lower_bound > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn comparable_to_sequential_jain_vazirani() {
        for seed in 0..6 {
            let inst = gen::facility_location(GenParams::uniform_square(25, 10).with_seed(seed));
            let seq = jain_vazirani(&inst);
            let par = parallel_primal_dual(&inst, &FlConfig::new(0.05).with_seed(seed));
            // Both are ≤ 3(1+O(ε))·opt; relative to each other they should be within a
            // small constant factor (and usually nearly identical).
            assert!(
                par.cost <= 1.5 * seq.cost + 1e-6,
                "seed {seed}: parallel {} vs sequential {}",
                par.cost,
                seq.cost
            );
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let inst = gen::facility_location(GenParams::uniform_square(80, 40).with_seed(2));
        let cfg = FlConfig::new(0.1);
        let out = parallel_primal_dual_detailed(&inst, &cfg);
        // Theory: at most ~3·log_{1+ε}(m) iterations with preprocessing.
        let m = inst.m() as f64;
        let bound = 3.0 * m.ln() / (1.1_f64).ln() + 10.0;
        assert!(
            (out.solution.rounds as f64) <= bound,
            "rounds {} exceed bound {bound}",
            out.solution.rounds
        );
        assert!(out.solution.rounds >= 1);
    }

    #[test]
    fn deterministic_and_policy_independent() {
        let inst = gen::facility_location(GenParams::grid(30, 15).with_seed(0));
        let cfg_seq = FlConfig::new(0.2)
            .with_seed(3)
            .with_policy(ExecPolicy::Sequential);
        let cfg_par = FlConfig::new(0.2)
            .with_seed(3)
            .with_policy(ExecPolicy::Parallel);
        let a = parallel_primal_dual(&inst, &cfg_seq);
        let b = parallel_primal_dual(&inst, &cfg_par);
        assert_eq!(a.open, b.open);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn free_facility_preprocessing_handles_zero_cost_colocated_facilities() {
        // A zero-cost facility at distance 0 from client 0 is opened as a free facility
        // by the preprocessing step (γ = 1 > 0 here because client 1 sits at distance 1).
        let dist = DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 1.0, 5.0]);
        let inst = FlInstance::new(vec![0.0, 3.0], dist);
        let out = parallel_primal_dual_detailed(&inst, &FlConfig::new(0.1));
        assert!(out.free_facilities.contains(&0));
        assert!(out.solution.open.contains(&0));
        // Optimal cost is 1 (open the free facility; client 1 connects at distance 1).
        assert!(out.solution.cost <= 3.5, "cost {}", out.solution.cost);
        assert!(out.solution.cost >= 1.0 - 1e-9);

        // The fully degenerate case (γ = 0: every client co-located with a free
        // facility) must also work — preprocessing is skipped and the main loop opens
        // the free facility in its first iteration at zero cost.
        let dist0 = DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 0.0, 5.0]);
        let inst0 = FlInstance::new(vec![0.0, 1.0], dist0);
        let sol0 = parallel_primal_dual(&inst0, &FlConfig::new(0.1));
        assert!(sol0.open.contains(&0));
        assert!((sol0.cost - 0.0).abs() < 1e-9);
    }

    #[test]
    fn no_client_pays_for_two_open_facilities() {
        // The MaxUDom post-processing guarantees each client contributes to at most one
        // opened (non-free) facility.
        let inst = gen::facility_location(GenParams::uniform_square(30, 12).with_seed(7));
        let cfg = FlConfig::new(0.25).with_seed(7);
        let out = parallel_primal_dual_detailed(&inst, &cfg);
        let slack = 1.25;
        let non_free: Vec<_> = out
            .solution
            .open
            .iter()
            .copied()
            .filter(|i| !out.free_facilities.contains(i))
            .collect();
        for j in 0..inst.num_clients() {
            let paying: usize = non_free
                .iter()
                .filter(|&&i| slack * out.solution.alpha[j] > inst.dist(j, i))
                .count();
            assert!(paying <= 1, "client {j} pays for {paying} facilities");
        }
    }

    #[test]
    fn zero_cost_facilities_everywhere() {
        let inst = gen::facility_location(
            GenParams::uniform_square(16, 8)
                .with_seed(5)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(sol.cost <= (3.0 + 0.4) * opt + 1e-6);
    }

    #[test]
    fn preprocessing_ablation_still_meets_guarantee() {
        let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(11));
        let without = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_preprocess(false));
        let with = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(without.cost <= (3.0 + 0.4) * opt + 1e-6);
        assert!(with.cost <= (3.0 + 0.4) * opt + 1e-6);
    }

    #[test]
    fn scan_and_bucket_engines_agree_bit_for_bit() {
        // The bucket event engine must replay the scan engine's iteration
        // ladder exactly: same opens (order included), same freeze levels,
        // same α bits, same iteration count — only the work profile differs.
        for seed in 0..4 {
            let inst = gen::facility_location(GenParams::uniform_square(24, 10).with_seed(seed));
            for preprocess in [true, false] {
                let base = FlConfig::new(0.15)
                    .with_seed(seed)
                    .with_preprocess(preprocess);
                let scan =
                    parallel_primal_dual_detailed(&inst, &base.with_engine(EventEngine::Scan));
                let bucket =
                    parallel_primal_dual_detailed(&inst, &base.with_engine(EventEngine::Bucket));
                assert_eq!(
                    scan.temporarily_open, bucket.temporarily_open,
                    "seed {seed}"
                );
                assert_eq!(scan.free_facilities, bucket.free_facilities, "seed {seed}");
                assert_eq!(scan.solution.open, bucket.solution.open, "seed {seed}");
                assert_eq!(scan.solution.rounds, bucket.solution.rounds, "seed {seed}");
                assert_eq!(
                    scan.solution.cost.to_bits(),
                    bucket.solution.cost.to_bits(),
                    "seed {seed}"
                );
                assert_eq!(
                    scan.solution.lower_bound.to_bits(),
                    bucket.solution.lower_bound.to_bits(),
                    "seed {seed}"
                );
                for (a, b) in scan.solution.alpha.iter().zip(&bucket.solution.alpha) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}: α diverged");
                }
                assert_eq!(
                    scan.solution.work.rounds, bucket.solution.work.rounds,
                    "seed {seed}: round charges must agree"
                );
            }
        }
    }

    #[test]
    fn bucket_engine_handles_degenerate_zero_gamma_instances() {
        // γ = 0: every client co-located with a zero-cost facility; the event
        // loop must open it in iteration 1 at level t = 0 and freeze everyone.
        let dist0 = DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 0.0, 5.0]);
        let inst0 = FlInstance::new(vec![0.0, 1.0], dist0);
        for engine in [EventEngine::Scan, EventEngine::Bucket] {
            let sol = parallel_primal_dual(&inst0, &FlConfig::new(0.1).with_engine(engine));
            assert!(sol.open.contains(&0), "{engine}");
            assert!((sol.cost - 0.0).abs() < 1e-9, "{engine}");
        }
    }

    #[test]
    fn work_counters_and_round_stats_populated() {
        let inst = gen::facility_location(GenParams::uniform_square(40, 20).with_seed(1));
        let out = parallel_primal_dual_detailed(&inst, &FlConfig::new(0.1));
        assert!(out.solution.work.element_ops > 0);
        assert!(out.solution.work.primitive_calls > 0);
        assert!(out.solution.rounds > 0);
        // Every temporarily-open facility index is valid and distinct.
        let mut t = out.temporarily_open.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), out.temporarily_open.len());
    }
}
