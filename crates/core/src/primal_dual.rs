//! The parallel primal-dual facility-location algorithm (Algorithm 5.1, Theorem 5.4).
//!
//! The Jain–Vazirani primal-dual scheme raises all client duals `α_j` continuously; the
//! parallel version instead raises them **geometrically**: in iteration `ℓ` every
//! unfrozen client has `α_j = (γ/m²)(1 + ε)^ℓ`. Each iteration then performs three
//! data-parallel steps over the distance matrix: open every facility whose (slack-
//! inflated) payments cover its cost, freeze every client that can reach an open
//! facility, and extend the client/facility graph `H` with the newly tight edges.
//! Because `α` values rise by `(1 + ε)` factors, `O(log_{1+ε} m)` iterations suffice.
//!
//! The preprocessing step (borrowed by the paper from Pandit & Pemmaraju's distributed
//! algorithm) opens "free" facilities that are already paid for at the starting dual
//! value `γ/m²` and freezes their co-located clients at `α = 0`, which is what pins the
//! iteration count.
//!
//! Post-processing computes `MaxUDom(H)` so each client contributes to at most one open
//! facility, exactly as in the sequential algorithm's conflict-graph MIS. The final
//! α vector is dual feasible (Claim 5.1), so `Σ_j α_j` is a certified lower bound on
//! `opt`, and the solution cost is at most `(3 + O(ε))` times it (Lemmas 5.2, 5.3).

use crate::config::FlConfig;
use crate::solution::FlSolution;
use parfaclo_dominator::{max_u_dom, BipartiteGraph};
use parfaclo_lp::dual;
use parfaclo_matrixops::CostMeter;
use parfaclo_metric::{DistanceOracle, FacilityId, FlInstance};
use rayon::prelude::*;

/// Extended result of the parallel primal-dual algorithm.
#[derive(Debug, Clone)]
pub struct PrimalDualOutput {
    /// The solution (open set, costs, α values, work counters).
    pub solution: FlSolution,
    /// Facilities opened by the preprocessing step ("free facilities", `F_0`).
    pub free_facilities: Vec<FacilityId>,
    /// Facilities temporarily opened during the main iterations (`F_T`).
    pub temporarily_open: Vec<FacilityId>,
    /// Number of Luby rounds the `MaxUDom` post-processing used.
    pub postprocess_rounds: usize,
}

/// Runs Algorithm 5.1 and returns just the solution.
pub fn parallel_primal_dual(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
    parallel_primal_dual_detailed(inst, cfg).solution
}

/// Runs Algorithm 5.1, returning the solution plus the intermediate facility sets.
///
/// # Panics
/// Panics if the instance has no clients or no facilities, or if the defensive
/// `cfg.max_rounds` cap is exceeded.
pub fn parallel_primal_dual_detailed(inst: &FlInstance, cfg: &FlConfig) -> PrimalDualOutput {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nc > 0 && nf > 0,
        "instance must have clients and facilities"
    );
    let eps = cfg.epsilon;
    let slack = 1.0 + eps;
    let meter = CostMeter::new();
    let m = inst.m() as f64;

    let gamma = inst.gamma();
    // Starting dual value. γ > 0 whenever some client has a positive distance or some
    // facility a positive cost; if γ = 0 the whole instance is degenerate (every client
    // sits on a free facility) and the loop below terminates immediately anyway.
    let alpha0 = if cfg.preprocess {
        gamma / (m * m)
    } else {
        // Without preprocessing start at the smallest scale present in the input so the
        // guarantee still holds; only the round bound degrades.
        let min_pos = inst
            .distances()
            .min_positive_entry()
            .unwrap_or(1.0)
            .min(gamma.max(f64::MIN_POSITIVE));
        min_pos / (m * m)
    };

    let mut frozen: Vec<bool> = vec![false; nc];
    let mut alpha: Vec<f64> = vec![0.0; nc];
    let mut opened: Vec<bool> = vec![false; nf];
    let mut free_facilities: Vec<FacilityId> = Vec::new();
    let mut temporarily_open: Vec<FacilityId> = Vec::new();

    // ---- Preprocessing: free facilities ------------------------------------------------
    if cfg.preprocess && gamma > 0.0 {
        meter.add_primitive(inst.m() as u64);
        let threshold = gamma / (m * m);
        let is_free = |i: usize| -> bool {
            let paid: f64 = (0..nc)
                .map(|j| (threshold - inst.dist(j, i)).max(0.0))
                .sum();
            paid >= inst.facility_cost(i)
        };
        let free: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
            (0..nf).into_par_iter().map(is_free).collect()
        } else {
            (0..nf).map(is_free).collect()
        };
        for i in 0..nf {
            if free[i] {
                opened[i] = true;
                free_facilities.push(i);
            }
        }
        // Clients adjacent to a free facility at distance <= γ/m² are freely connected.
        meter.add_primitive(inst.m() as u64);
        for j in 0..nc {
            if free_facilities
                .iter()
                .any(|&i| inst.dist(j, i) <= threshold)
            {
                frozen[j] = true;
                alpha[j] = 0.0;
            }
        }
    }

    // ---- Main iterations ---------------------------------------------------------------
    let mut iterations = 0usize;
    let mut t = alpha0;
    while frozen.iter().any(|&f| !f) && opened.iter().any(|&o| !o) {
        iterations += 1;
        meter.add_round();
        assert!(
            iterations <= cfg.max_rounds,
            "parallel primal-dual exceeded {} iterations — this indicates a bug",
            cfg.max_rounds
        );

        // Step 1: unfrozen clients raise their dual to the current level.
        for j in 0..nc {
            if !frozen[j] {
                alpha[j] = t;
            }
        }
        meter.add_primitive(nc as u64);

        // Step 2: open facilities whose slack-inflated payments cover their cost.
        meter.add_primitive(inst.m() as u64);
        let should_open = |i: usize| -> bool {
            if opened[i] {
                return false;
            }
            let paid: f64 = (0..nc)
                .map(|j| (slack * alpha[j] - inst.dist(j, i)).max(0.0))
                .sum();
            paid >= inst.facility_cost(i)
        };
        let newly: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
            (0..nf).into_par_iter().map(should_open).collect()
        } else {
            (0..nf).map(should_open).collect()
        };
        for i in 0..nf {
            if newly[i] {
                opened[i] = true;
                temporarily_open.push(i);
            }
        }

        // Step 3: freeze clients that can reach an open facility within the slack.
        meter.add_primitive(inst.m() as u64);
        let should_freeze = |j: usize| -> bool {
            !frozen[j] && (0..nf).any(|i| opened[i] && slack * alpha[j] >= inst.dist(j, i))
        };
        let newly_frozen: Vec<bool> = if cfg.policy.run_parallel(inst.m()) {
            (0..nc).into_par_iter().map(should_freeze).collect()
        } else {
            (0..nc).map(should_freeze).collect()
        };
        for j in 0..nc {
            if newly_frozen[j] {
                frozen[j] = true;
            }
        }

        // Step 4 (the graph H) is materialised once at the end from the final α values:
        // edges only ever get added and the membership test is monotone in α.
        t *= slack;
    }

    // If every facility opened before every client froze, the remaining clients' duals
    // rise just enough to reach their closest (now open) facility.
    for j in 0..nc {
        if !frozen[j] {
            let d_min = (0..nf)
                .filter(|&i| opened[i])
                .map(|i| inst.dist(j, i))
                .fold(f64::INFINITY, f64::min);
            alpha[j] = alpha[j].max(d_min);
            frozen[j] = true;
        }
    }

    // ---- Post-processing: MaxUDom over the tight-edge graph ----------------------------
    // H = (F_T, C, E) with ij ∈ E iff (1+ε)·α_j > d(j, i).
    let ft: Vec<FacilityId> = temporarily_open.clone();
    let h =
        BipartiteGraph::from_predicate(ft.len(), nc, |u, j| slack * alpha[j] > inst.dist(j, ft[u]));
    meter.add_primitive((ft.len() * nc) as u64);
    let dom = if ft.is_empty() {
        parfaclo_dominator::DominatorResult {
            selected: vec![],
            rounds: 0,
        }
    } else {
        max_u_dom(&h, cfg.seed, cfg.policy, &meter)
    };
    let mut open_set: Vec<FacilityId> = dom.selected.iter().map(|&u| ft[u]).collect();
    open_set.extend(free_facilities.iter().copied());

    if open_set.is_empty() {
        // Degenerate guard (e.g. nf = 1 with an enormous cost and the loop cap): open
        // the cheapest facility so the solution is well-defined.
        open_set.push(
            (0..nf)
                .min_by(|&a, &b| {
                    inst.facility_cost(a)
                        .partial_cmp(&inst.facility_cost(b))
                        .unwrap()
                })
                .unwrap(),
        );
    }

    let mut solution = FlSolution::from_open_set(inst, open_set);
    // α is dual feasible by Claim 5.1; certify numerically (and fall back to scaling if
    // floating-point slack pushed it marginally over).
    let scale = dual::max_feasible_scaling(inst, &alpha, 40);
    let scaled: Vec<f64> = alpha.iter().map(|a| a * scale).collect();
    solution.lower_bound = dual::dual_value(&scaled);
    solution.alpha = alpha;
    solution.rounds = iterations;
    solution.inner_rounds = dom.rounds;
    solution.work = meter.report();

    PrimalDualOutput {
        solution,
        free_facilities,
        temporarily_open,
        postprocess_rounds: dom.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_matrixops::ExecPolicy;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;
    use parfaclo_seq_baselines::jain_vazirani;

    #[test]
    fn single_facility_single_client() {
        // With m = 1 the γ/m² preprocessing threshold equals γ itself, so the facility
        // is opened as a "free" facility straight away (the paper assumes large m; for
        // m = 1 this costs nothing since the solution is forced anyway).
        let inst = FlInstance::new(vec![2.0], DistanceMatrix::from_rows(1, 1, vec![1.0]));
        let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        assert_eq!(sol.open, vec![0]);
        assert!((sol.cost - 3.0).abs() < 1e-9);
        assert!(sol.alpha[0] <= 3.0 * 1.1 + 1e-9);

        // Without preprocessing the dual must rise to (roughly) the exact JV value 3.
        let sol2 = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_preprocess(false));
        assert_eq!(sol2.open, vec![0]);
        assert!(sol2.alpha[0] <= 3.0 * 1.1 + 1e-9 && sol2.alpha[0] >= 3.0 / 1.1 - 1e-9);
    }

    #[test]
    fn within_theorem_bound_on_small_instances() {
        // Theorem 5.4: (3 + ε')-approximation. Check against brute force.
        for seed in 0..10 {
            let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(seed));
            let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_seed(seed));
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                sol.cost <= (3.0 + 3.0 * 0.1 + 0.05) * opt + 1e-6,
                "seed {seed}: cost {} vs opt {opt}",
                sol.cost
            );
            assert!(sol.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn alpha_is_dual_feasible_and_certifies_lower_bound() {
        for seed in 0..6 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(14, 7, 3).with_seed(seed));
            let sol = parallel_primal_dual(&inst, &FlConfig::new(0.2).with_seed(seed));
            // Claim 5.1: α with canonical β is dual feasible (tolerate tiny fp slack).
            assert!(
                dual::check_alpha_feasible(&inst, &sol.alpha, 1e-6).is_ok(),
                "seed {seed}: α not dual feasible"
            );
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(sol.lower_bound <= opt + 1e-6, "seed {seed}");
            assert!(sol.lower_bound > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn comparable_to_sequential_jain_vazirani() {
        for seed in 0..6 {
            let inst = gen::facility_location(GenParams::uniform_square(25, 10).with_seed(seed));
            let seq = jain_vazirani(&inst);
            let par = parallel_primal_dual(&inst, &FlConfig::new(0.05).with_seed(seed));
            // Both are ≤ 3(1+O(ε))·opt; relative to each other they should be within a
            // small constant factor (and usually nearly identical).
            assert!(
                par.cost <= 1.5 * seq.cost + 1e-6,
                "seed {seed}: parallel {} vs sequential {}",
                par.cost,
                seq.cost
            );
        }
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let inst = gen::facility_location(GenParams::uniform_square(80, 40).with_seed(2));
        let cfg = FlConfig::new(0.1);
        let out = parallel_primal_dual_detailed(&inst, &cfg);
        // Theory: at most ~3·log_{1+ε}(m) iterations with preprocessing.
        let m = inst.m() as f64;
        let bound = 3.0 * m.ln() / (1.1_f64).ln() + 10.0;
        assert!(
            (out.solution.rounds as f64) <= bound,
            "rounds {} exceed bound {bound}",
            out.solution.rounds
        );
        assert!(out.solution.rounds >= 1);
    }

    #[test]
    fn deterministic_and_policy_independent() {
        let inst = gen::facility_location(GenParams::grid(30, 15).with_seed(0));
        let cfg_seq = FlConfig::new(0.2)
            .with_seed(3)
            .with_policy(ExecPolicy::Sequential);
        let cfg_par = FlConfig::new(0.2)
            .with_seed(3)
            .with_policy(ExecPolicy::Parallel);
        let a = parallel_primal_dual(&inst, &cfg_seq);
        let b = parallel_primal_dual(&inst, &cfg_par);
        assert_eq!(a.open, b.open);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn free_facility_preprocessing_handles_zero_cost_colocated_facilities() {
        // A zero-cost facility at distance 0 from client 0 is opened as a free facility
        // by the preprocessing step (γ = 1 > 0 here because client 1 sits at distance 1).
        let dist = DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 1.0, 5.0]);
        let inst = FlInstance::new(vec![0.0, 3.0], dist);
        let out = parallel_primal_dual_detailed(&inst, &FlConfig::new(0.1));
        assert!(out.free_facilities.contains(&0));
        assert!(out.solution.open.contains(&0));
        // Optimal cost is 1 (open the free facility; client 1 connects at distance 1).
        assert!(out.solution.cost <= 3.5, "cost {}", out.solution.cost);
        assert!(out.solution.cost >= 1.0 - 1e-9);

        // The fully degenerate case (γ = 0: every client co-located with a free
        // facility) must also work — preprocessing is skipped and the main loop opens
        // the free facility in its first iteration at zero cost.
        let dist0 = DistanceMatrix::from_rows(2, 2, vec![0.0, 5.0, 0.0, 5.0]);
        let inst0 = FlInstance::new(vec![0.0, 1.0], dist0);
        let sol0 = parallel_primal_dual(&inst0, &FlConfig::new(0.1));
        assert!(sol0.open.contains(&0));
        assert!((sol0.cost - 0.0).abs() < 1e-9);
    }

    #[test]
    fn no_client_pays_for_two_open_facilities() {
        // The MaxUDom post-processing guarantees each client contributes to at most one
        // opened (non-free) facility.
        let inst = gen::facility_location(GenParams::uniform_square(30, 12).with_seed(7));
        let cfg = FlConfig::new(0.25).with_seed(7);
        let out = parallel_primal_dual_detailed(&inst, &cfg);
        let slack = 1.25;
        let non_free: Vec<_> = out
            .solution
            .open
            .iter()
            .copied()
            .filter(|i| !out.free_facilities.contains(i))
            .collect();
        for j in 0..inst.num_clients() {
            let paying: usize = non_free
                .iter()
                .filter(|&&i| slack * out.solution.alpha[j] > inst.dist(j, i))
                .count();
            assert!(paying <= 1, "client {j} pays for {paying} facilities");
        }
    }

    #[test]
    fn zero_cost_facilities_everywhere() {
        let inst = gen::facility_location(
            GenParams::uniform_square(16, 8)
                .with_seed(5)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let sol = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(sol.cost <= (3.0 + 0.4) * opt + 1e-6);
    }

    #[test]
    fn preprocessing_ablation_still_meets_guarantee() {
        let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(11));
        let without = parallel_primal_dual(&inst, &FlConfig::new(0.1).with_preprocess(false));
        let with = parallel_primal_dual(&inst, &FlConfig::new(0.1));
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        assert!(without.cost <= (3.0 + 0.4) * opt + 1e-6);
        assert!(with.cost <= (3.0 + 0.4) * opt + 1e-6);
    }

    #[test]
    fn work_counters_and_round_stats_populated() {
        let inst = gen::facility_location(GenParams::uniform_square(40, 20).with_seed(1));
        let out = parallel_primal_dual_detailed(&inst, &FlConfig::new(0.1));
        assert!(out.solution.work.element_ops > 0);
        assert!(out.solution.work.primitive_calls > 0);
        assert!(out.solution.rounds > 0);
        // Every temporarily-open facility index is valid and distinct.
        let mut t = out.temporarily_open.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), out.temporarily_open.len());
    }
}
