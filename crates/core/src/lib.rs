//! # parfaclo-core
//!
//! Parallel approximation algorithms for **metric facility location** from
//! *Blelloch & Tangwongsan, "Parallel Approximation Algorithms for Facility-Location
//! Problems", SPAA 2010* — the paper's primary contribution.
//!
//! Three algorithms are implemented, each with the preprocessing steps the paper uses to
//! bound its round count and each instrumented with the work/round accounting of
//! [`parfaclo_matrixops::CostMeter`]; a fourth (the Section 7 local-search extension)
//! rides along. Every algorithm is exposed twice:
//!
//! * as a free function (`greedy::parallel_greedy(&inst, &cfg)`, …) returning the rich
//!   [`FlSolution`] record — the historical entry points, kept stable;
//! * as a [`parfaclo_api::Solver`] implementation ([`solvers::GreedySolver`], …)
//!   returning the unified [`parfaclo_api::Run`] envelope, which is what the solver
//!   registry, the `parfaclo` CLI and the cross-solver tests consume.
//!
//! | Module | Solver name | Paper | Guarantee | Work bound |
//! |--------|-------------|-------|-----------|-----------|
//! | [`greedy`] | `greedy` | Algorithm 4.1, Theorem 4.9 | `3.722 + ε` (factor-revealing LP analysis; `6 + ε` by the self-contained analysis) | `O(m log²_{1+ε} m)` |
//! | [`primal_dual`] | `primal-dual` | Algorithm 5.1, Theorem 5.4 | `3 + ε` | `O(m log_{1+ε} m)` |
//! | [`lp_rounding`] | `lp-rounding` | Section 6.2, Theorem 6.5 | `4 + ε` given an optimal LP solution | `O(m log m log_{1+ε} m)` |
//! | [`local_search_fl`] | `local-search-fl` | Section 7 (closing remark) | `3 + ε` (rounds unbounded by theory) | — |
//!
//! The common pattern — and the paper's central idea — is to replace the sequential
//! "pick the single cheapest element" step with "pick **everything within a `(1 + ε)`
//! slack** of the cheapest", then run a clean-up/subselection step (randomized
//! subselection for greedy, `MaxUDom` for primal-dual and rounding) so the accounting
//! arguments still go through.
//!
//! ## Quick example — unified API
//!
//! ```
//! use parfaclo_api::{RunConfig, Solver};
//! use parfaclo_core::solvers::{GreedySolver, PrimalDualSolver};
//! use parfaclo_core::FlConfig;
//! use parfaclo_metric::gen::{self, GenParams};
//!
//! let inst = gen::facility_location(GenParams::uniform_square(40, 20).with_seed(1));
//! let cfg = FlConfig::from(&RunConfig::new(0.1).with_seed(7));
//!
//! let g = GreedySolver.solve(&inst, &cfg).unwrap();
//! let pd = PrimalDualSolver.solve(&inst, &cfg).unwrap();
//!
//! // Both produce valid Run envelopes with certified lower bounds.
//! g.validate().unwrap();
//! assert!(g.cost >= pd.lower_bound - 1e-9);
//! assert!(pd.cost <= (3.0 + 0.1 + 0.2) * pd.lower_bound + 1e-9);
//! ```
//!
//! ## Quick example — historical free functions
//!
//! ```
//! use parfaclo_metric::gen::{self, GenParams};
//! use parfaclo_core::{greedy, primal_dual, FlConfig};
//!
//! let inst = gen::facility_location(GenParams::uniform_square(40, 20).with_seed(1));
//! let cfg = FlConfig::new(0.1).with_seed(7);
//!
//! let g = greedy::parallel_greedy(&inst, &cfg);
//! let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
//!
//! assert!(g.cost >= pd.lower_bound - 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod greedy;
pub mod local_search_fl;
pub mod lp_rounding;
pub mod primal_dual;
pub mod solution;
pub mod solvers;
pub mod stars;
pub mod verify;

pub use config::FlConfig;
pub use solution::FlSolution;
pub use solvers::{FlLocalSearchSolver, GreedySolver, LpRoundingSolver, PrimalDualSolver};

/// Deprecated re-exports of the pre-registry entry points. The free
/// functions themselves remain fully supported (the solver adapters call
/// them); these aliases exist to steer new code toward [`solvers`] / the
/// registry in `parfaclo-bench`.
pub mod compat {
    use super::*;
    use parfaclo_metric::FlInstance;

    /// Delegates to [`greedy::parallel_greedy`].
    #[deprecated(since = "0.1.0", note = "use `solvers::GreedySolver` via the registry")]
    pub fn parallel_greedy(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
        greedy::parallel_greedy(inst, cfg)
    }

    /// Delegates to [`primal_dual::parallel_primal_dual`].
    #[deprecated(
        since = "0.1.0",
        note = "use `solvers::PrimalDualSolver` via the registry"
    )]
    pub fn parallel_primal_dual(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
        primal_dual::parallel_primal_dual(inst, cfg)
    }
}
