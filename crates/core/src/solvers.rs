//! [`Solver`] adapters for the parallel facility-location algorithms.
//!
//! The free functions (`greedy::parallel_greedy`, …) remain the
//! implementations; the types here are thin adapters that project a
//! [`RunConfig`] into an [`FlConfig`], call the algorithm, and repackage the
//! [`FlSolution`] into the unified [`Run`] envelope so the registry, the
//! `parfaclo` CLI and the conformance tests can drive every algorithm
//! uniformly.

use crate::config::FlConfig;
use crate::solution::FlSolution;
use crate::{greedy, local_search_fl, lp_rounding, primal_dual};
use parfaclo_api::{ProblemKind, Run, RunConfig, Solver};
use parfaclo_lp::solve_facility_lp;
use parfaclo_metric::FlInstance;
use parfaclo_trace as trace;

impl From<&RunConfig> for FlConfig {
    fn from(cfg: &RunConfig) -> Self {
        FlConfig {
            epsilon: cfg.epsilon,
            seed: cfg.seed,
            policy: cfg.policy,
            preprocess: cfg.preprocess,
            subselection: cfg.subselection,
            max_rounds: cfg.max_rounds,
            engine: cfg.engine,
        }
    }
}

/// Repackages an [`FlSolution`] into the unified envelope.
fn fl_envelope(
    solver: &(impl Solver + ?Sized),
    inst: &FlInstance,
    sol: FlSolution,
    cfg: &FlConfig,
) -> Run {
    Run::new(Solver::name(solver), Solver::problem(solver))
        .with_guarantee(Solver::guarantee(solver))
        .with_instance_size(inst.num_clients(), inst.m())
        .with_cost(sol.cost)
        .with_lower_bound(sol.lower_bound)
        .with_selected(sol.open)
        .with_assignment(sol.assignment)
        .with_rounds(sol.rounds, sol.inner_rounds)
        .with_work(sol.work)
        .with_extra("opening_cost", sol.opening_cost)
        .with_extra("connection_cost", sol.connection_cost)
        .with_extra("preprocess", cfg.preprocess as u8 as f64)
        .with_extra("subselection", cfg.subselection as u8 as f64)
}

/// Stamps the ε/seed echo (the typed entry point receives `FlConfig`, which
/// carries both).
fn echo(mut run: Run, cfg: &FlConfig) -> Run {
    run.epsilon = cfg.epsilon;
    run.seed = cfg.seed;
    run
}

/// The parallel greedy algorithm (Algorithm 4.1) behind the unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    type Instance = FlInstance;
    type Config = FlConfig;

    fn name(&self) -> &str {
        "greedy"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        3.722
    }

    fn paper_ref(&self) -> &str {
        "Algorithm 4.1, Theorem 4.9"
    }

    fn solve(&self, inst: &FlInstance, cfg: &FlConfig) -> Result<Run, String> {
        let sol = greedy::parallel_greedy(inst, cfg);
        Ok(echo(fl_envelope(self, inst, sol, cfg), cfg))
    }
}

/// The parallel primal-dual algorithm (Algorithm 5.1) behind the unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimalDualSolver;

impl Solver for PrimalDualSolver {
    type Instance = FlInstance;
    type Config = FlConfig;

    fn name(&self) -> &str {
        "primal-dual"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        3.0
    }

    fn paper_ref(&self) -> &str {
        "Algorithm 5.1, Theorem 5.4"
    }

    fn solve(&self, inst: &FlInstance, cfg: &FlConfig) -> Result<Run, String> {
        let sol = primal_dual::parallel_primal_dual(inst, cfg);
        Ok(echo(fl_envelope(self, inst, sol, cfg), cfg))
    }
}

/// Parallel LP rounding (Section 6.2) behind the unified API.
///
/// The paper's algorithm consumes an optimal fractional LP solution; this
/// adapter solves the relaxation first (with the workspace's own simplex
/// solver), so it is practical only for small/medium instances — the
/// `O((nc·nf)³)`-ish simplex cost dominates well before the rounding does.
///
/// If the simplex solver fails, the run is reported infeasible. The
/// facility-location relaxation of a well-formed instance is always feasible
/// (open everything) and bounded (costs are non-negative), so this only
/// occurs on numerically degenerate inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LpRoundingSolver;

impl Solver for LpRoundingSolver {
    type Instance = FlInstance;
    type Config = FlConfig;

    fn name(&self) -> &str {
        "lp-rounding"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        4.0
    }

    fn paper_ref(&self) -> &str {
        "Section 6.2, Theorem 6.5"
    }

    fn solve(&self, inst: &FlInstance, cfg: &FlConfig) -> Result<Run, String> {
        let lp = {
            let _span = trace::span("lp-solve", None);
            solve_facility_lp(inst)
                .map_err(|e| format!("facility-location LP relaxation unsolvable: {e}"))?
        };
        let sol = lp_rounding::parallel_lp_rounding(inst, &lp, cfg);
        Ok(echo(
            fl_envelope(self, inst, sol, cfg).with_extra("lp_value", lp.value()),
            cfg,
        ))
    }
}

/// The parallel add/drop/swap local search for facility location (the
/// Section 7 extension) behind the unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlLocalSearchSolver;

impl Solver for FlLocalSearchSolver {
    type Instance = FlInstance;
    type Config = FlConfig;

    fn name(&self) -> &str {
        "local-search-fl"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::FacilityLocation
    }

    fn guarantee(&self) -> f64 {
        3.0
    }

    fn paper_ref(&self) -> &str {
        "Section 7 (closing remark)"
    }

    fn solve(&self, inst: &FlInstance, cfg: &FlConfig) -> Result<Run, String> {
        let sol = local_search_fl::parallel_local_search_fl(inst, cfg);
        Ok(echo(fl_envelope(self, inst, sol, cfg), cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};

    fn tiny() -> FlInstance {
        gen::facility_location(GenParams::uniform_square(12, 6).with_seed(3))
    }

    #[test]
    fn greedy_adapter_matches_free_function() {
        let inst = tiny();
        let rc = RunConfig::new(0.1).with_seed(5);
        let cfg = FlConfig::from(&rc);
        let direct = greedy::parallel_greedy(&inst, &cfg);
        let run = GreedySolver.solve(&inst, &cfg).expect("feasible");
        assert_eq!(run.cost, direct.cost);
        assert_eq!(run.selected, direct.open);
        assert_eq!(run.lower_bound, direct.lower_bound);
        assert_eq!(run.rounds, direct.rounds);
        assert_eq!(run.seed, 5);
        run.validate().expect("valid envelope");
    }

    #[test]
    fn runconfig_projection_preserves_ablation_knobs() {
        let rc = RunConfig::new(0.3)
            .with_seed(9)
            .with_preprocess(false)
            .with_subselection(false);
        let cfg = FlConfig::from(&rc);
        assert_eq!(cfg.epsilon, 0.3);
        assert_eq!(cfg.seed, 9);
        assert!(!cfg.preprocess);
        assert!(!cfg.subselection);
        assert_eq!(cfg.max_rounds, rc.max_rounds);
    }

    #[test]
    fn all_fl_adapters_produce_valid_runs() {
        let inst = tiny();
        let cfg = FlConfig::from(&RunConfig::new(0.2).with_seed(1));
        for run in [
            GreedySolver.solve(&inst, &cfg).expect("feasible"),
            PrimalDualSolver.solve(&inst, &cfg).expect("feasible"),
            LpRoundingSolver.solve(&inst, &cfg).expect("feasible"),
            FlLocalSearchSolver.solve(&inst, &cfg).expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            assert_eq!(run.problem, ProblemKind::FacilityLocation);
            assert_eq!(run.n, 12);
            assert!(run.cost > 0.0);
        }
    }

    #[test]
    fn primal_dual_run_carries_certificate() {
        let inst = tiny();
        let cfg = FlConfig::from(&RunConfig::new(0.1));
        let run = PrimalDualSolver.solve(&inst, &cfg).expect("feasible");
        let ratio = run.certified_ratio().expect("primal-dual certifies");
        assert!(ratio >= 1.0 - 1e-9);
        assert!(ratio <= 3.0 + 0.4, "ratio {ratio} exceeds guarantee");
    }
}
