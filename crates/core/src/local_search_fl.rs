//! Parallel local search for facility location (the extension remarked on at the end of
//! Section 7 of the paper).
//!
//! > "Furthermore, there is a factor-3 approximation local-search algorithm for facility
//! > location, in which a similar idea can be used to perform each local-search step
//! > efficiently; however, we do not know how to bound the number of rounds."
//!
//! This module implements that extension: the classical add / drop / swap local search
//! for facility location (Arya et al., Korupolu et al.), with each local-search step
//! evaluated **in parallel** over all candidate moves exactly the way Section 7
//! parallelises the k-median swap step (precompute each client's closest and
//! second-closest open facility, then every candidate move's Δ is an independent `O(n_c)`
//! reduction). As the paper notes, the number of rounds is not bounded by the theory;
//! we expose an explicit `max_rounds` knob and report the number of rounds taken so the
//! E10 ablation can chart it. The `(1 − β)` improvement-threshold trick still bounds the
//! rounds by `O(log(initial/opt)/β)` for a `(3 + ε)`-style guarantee in practice.

use crate::config::FlConfig;
use crate::solution::FlSolution;
use parfaclo_matrixops::CostMeter;
use parfaclo_metric::{FacilityId, FlInstance};
use parfaclo_trace as trace;
use rayon::prelude::*;

/// One candidate local-search move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    /// Open a currently closed facility.
    Add(FacilityId),
    /// Close a currently open facility (only valid if at least one other stays open).
    Drop(FacilityId),
    /// Close `drop` and open `add` in one step.
    Swap {
        /// The facility to close.
        drop: FacilityId,
        /// The facility to open.
        add: FacilityId,
    },
}

/// Cost of a facility set given, for every client, its best and second-best open
/// facility distances and the identity of the best.
fn move_cost(
    inst: &FlInstance,
    opening_cost: f64,
    best: &[(FacilityId, f64, f64)],
    mv: Move,
) -> f64 {
    let nc = inst.num_clients();
    match mv {
        Move::Add(a) => {
            let conn: f64 = (0..nc).map(|j| best[j].1.min(inst.dist(j, a))).sum();
            opening_cost + inst.facility_cost(a) + conn
        }
        Move::Drop(d) => {
            let conn: f64 = (0..nc)
                .map(|j| if best[j].0 == d { best[j].2 } else { best[j].1 })
                .sum();
            opening_cost - inst.facility_cost(d) + conn
        }
        Move::Swap { drop, add } => {
            let conn: f64 = (0..nc)
                .map(|j| {
                    let keep = if best[j].0 == drop {
                        best[j].2
                    } else {
                        best[j].1
                    };
                    keep.min(inst.dist(j, add))
                })
                .sum();
            opening_cost - inst.facility_cost(drop) + inst.facility_cost(add) + conn
        }
    }
}

/// Runs the parallel add/drop/swap local search, starting from the solution that opens
/// the single facility minimising the total cost, and applying the best improving move
/// per round while it improves the cost by at least a `(1 − β)` factor with
/// `β = ε/(4(1+ε))` (the standard scaling that preserves the `3(1 + O(ε))` local-search
/// guarantee).
///
/// # Panics
/// Panics if the instance has no clients or facilities, or if `cfg.max_rounds` is
/// exceeded (the paper gives no worst-case round bound for this algorithm).
pub fn parallel_local_search_fl(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nc > 0 && nf > 0,
        "instance must have clients and facilities"
    );
    let meter = CostMeter::new();

    // Initial solution: the best single facility.
    let mut open: Vec<bool> = vec![false; nf];
    let best_single = (0..nf)
        .min_by(|&a, &b| {
            inst.solution_cost(&[a])
                .partial_cmp(&inst.solution_cost(&[b]))
                .unwrap()
        })
        .unwrap();
    open[best_single] = true;
    meter.add_primitive(inst.m() as u64);

    let open_set = |open: &[bool]| -> Vec<FacilityId> { (0..nf).filter(|&i| open[i]).collect() };
    let mut cost = inst.solution_cost(&open_set(&open));
    let beta = cfg.epsilon / (4.0 * (1.0 + cfg.epsilon));
    let threshold = 1.0 - beta;
    let mut rounds = 0usize;

    let search_span = trace::span("swap-search", Some(&meter));
    loop {
        assert!(
            rounds <= cfg.max_rounds,
            "facility-location local search exceeded {} rounds",
            cfg.max_rounds
        );
        let opened: Vec<FacilityId> = open_set(&open);
        let opening_cost: f64 = opened.iter().map(|&i| inst.facility_cost(i)).sum();

        // Closest and second-closest open facility for every client.
        meter.add_primitive((nc * opened.len()) as u64);
        let best: Vec<(FacilityId, f64, f64)> = (0..nc)
            .map(|j| {
                let mut b = (usize::MAX, f64::INFINITY);
                let mut second = f64::INFINITY;
                for &i in &opened {
                    let d = inst.dist(j, i);
                    if d < b.1 {
                        second = b.1;
                        b = (i, d);
                    } else if d < second {
                        second = d;
                    }
                }
                (b.0, b.1, second)
            })
            .collect();

        // Enumerate all candidate moves.
        let mut moves: Vec<Move> = Vec::new();
        for (i, &is_open) in open.iter().enumerate() {
            if !is_open {
                moves.push(Move::Add(i));
                for &d in &opened {
                    moves.push(Move::Swap { drop: d, add: i });
                }
            } else if opened.len() > 1 {
                moves.push(Move::Drop(i));
            }
        }
        meter.add_primitive((moves.len() * nc) as u64);
        let evaluated: Vec<(Move, f64)> = if cfg.policy.run_parallel(moves.len() * nc) {
            moves
                .par_iter()
                .map(|&mv| (mv, move_cost(inst, opening_cost, &best, mv)))
                .collect()
        } else {
            moves
                .iter()
                .map(|&mv| (mv, move_cost(inst, opening_cost, &best, mv)))
                .collect()
        };
        let best_move = evaluated
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());

        match best_move {
            Some(&(mv, new_cost)) if new_cost < threshold * cost => {
                match mv {
                    Move::Add(a) => open[a] = true,
                    Move::Drop(d) => open[d] = false,
                    Move::Swap { drop, add } => {
                        open[drop] = false;
                        open[add] = true;
                    }
                }
                cost = new_cost;
                rounds += 1;
                meter.add_round();
                // Swap-round frontier = candidate moves the sweep evaluated.
                trace::round(rounds as u64, || moves.len() as u64, &meter);
            }
            _ => break,
        }
    }
    drop(search_span);

    let mut solution = FlSolution::from_open_set(inst, open_set(&open));
    solution.rounds = rounds;
    solution.work = meter.report();
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_matrixops::ExecPolicy;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds;

    #[test]
    fn within_local_search_guarantee_on_small_instances() {
        // The add/drop/swap local search is a 3-approximation (up to the 1+O(ε)
        // threshold slack); verify against brute force.
        for seed in 0..8 {
            let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(seed));
            let sol = parallel_local_search_fl(&inst, &FlConfig::new(0.1).with_seed(seed));
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                sol.cost <= 3.0 * (1.0 + 0.1) * opt + 1e-6,
                "seed {seed}: {} vs opt {opt}",
                sol.cost
            );
            assert!(sol.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn often_matches_optimum_on_clustered_instances() {
        let inst = gen::facility_location(GenParams::gaussian_clusters(16, 6, 3).with_seed(5));
        let sol = parallel_local_search_fl(&inst, &FlConfig::new(0.05));
        let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
        // Local search is typically near-optimal on well-clustered inputs.
        assert!(sol.cost <= 1.5 * opt + 1e-6, "{} vs {opt}", sol.cost);
    }

    #[test]
    fn policy_independent_and_deterministic() {
        let inst = gen::facility_location(GenParams::uniform_square(30, 12).with_seed(2));
        let a = parallel_local_search_fl(
            &inst,
            &FlConfig::new(0.1).with_policy(ExecPolicy::Sequential),
        );
        let b =
            parallel_local_search_fl(&inst, &FlConfig::new(0.1).with_policy(ExecPolicy::Parallel));
        assert_eq!(a.open, b.open);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn improves_monotonically_from_single_facility_start() {
        let inst = gen::facility_location(GenParams::line(24, 12).with_seed(1));
        let sol = parallel_local_search_fl(&inst, &FlConfig::new(0.2));
        let single_best = (0..12)
            .map(|i| inst.solution_cost(&[i]))
            .fold(f64::INFINITY, f64::min);
        assert!(sol.cost <= single_best + 1e-9);
        assert!(sol.rounds <= 1000);
    }

    #[test]
    fn single_facility_instance_trivial() {
        let inst = gen::facility_location(GenParams::uniform_square(5, 1).with_seed(0));
        let sol = parallel_local_search_fl(&inst, &FlConfig::new(0.1));
        assert_eq!(sol.open, vec![0]);
        assert_eq!(sol.rounds, 0);
    }
}
