//! Parallel LP rounding (Section 6.2, Theorem 6.5).
//!
//! Given an **optimal fractional solution** `(x, y)` of the facility-location LP
//! relaxation (Figure 1), the algorithm of Shmoys, Tardos and Aardal filters it and
//! rounds it to an integral solution. The paper parallelises both phases:
//!
//! * **Filtering** (Lemma 6.2): for each client compute its fractional connection cost
//!   `δ_j = Σ_i d(j,i)·x_ij` and its ball `B_j = {i : d(j,i) <= (1+α)·δ_j}`; renormalise
//!   `x` inside the ball and inflate `y` by `(1 + 1/α)`. Entirely data-parallel.
//! * **Rounding**: the sequential algorithm scans clients by increasing `δ_j`; the
//!   parallel version processes, per round, **every** remaining client within a
//!   `(1 + ε)` factor of the smallest remaining `δ` (the eager set `S`), uses
//!   `MaxUDom` on the client/ball bipartite graph to pick a subset `J ⊆ S` with disjoint
//!   balls, opens the cheapest facility of each selected ball, and removes `S` and the
//!   processed balls from the graph. The `θ/m²` preprocessing keeps the number of rounds
//!   at `O(log_{1+ε} m)`.
//!
//! With `α = 1/3` the result is a `(4 + ε)`-approximation relative to the LP value
//! (which itself lower-bounds `opt`).

use crate::config::FlConfig;
use crate::solution::FlSolution;
use parfaclo_dominator::{max_u_dom, BipartiteGraph};
use parfaclo_lp::FlLpSolution;
use parfaclo_matrixops::CostMeter;
use parfaclo_metric::{ClientId, FacilityId, FlInstance};
use parfaclo_trace as trace;
use rayon::prelude::*;

/// Extended result of the parallel rounding algorithm.
#[derive(Debug, Clone)]
pub struct RoundingOutput {
    /// The rounded integral solution; `lower_bound` is the LP value.
    pub solution: FlSolution,
    /// The filter parameter α used (default 1/3).
    pub filter_alpha: f64,
    /// For each client, the facility the analysis charges it to (`π` in the paper).
    pub pi: Vec<FacilityId>,
    /// Per-round number of clients processed.
    pub clients_per_round: Vec<usize>,
}

/// Runs the parallel rounding with the default filter parameter `α = 1/3` (the value
/// that balances facility and connection blow-ups into the `4 + ε` guarantee).
pub fn parallel_lp_rounding(inst: &FlInstance, lp: &FlLpSolution, cfg: &FlConfig) -> FlSolution {
    parallel_lp_rounding_detailed(inst, lp, cfg, 1.0 / 3.0).solution
}

/// Runs the parallel rounding with an explicit filter parameter `filter_alpha ∈ (0, 1)`.
///
/// # Panics
/// Panics if dimensions mismatch, `filter_alpha` is outside `(0, 1)`, or the LP solution
/// is not primal feasible.
pub fn parallel_lp_rounding_detailed(
    inst: &FlInstance,
    lp: &FlLpSolution,
    cfg: &FlConfig,
    filter_alpha: f64,
) -> RoundingOutput {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nc > 0 && nf > 0,
        "instance must have clients and facilities"
    );
    assert_eq!(lp.num_clients(), nc, "LP solution has wrong client count");
    assert_eq!(
        lp.num_facilities(),
        nf,
        "LP solution has wrong facility count"
    );
    assert!(
        filter_alpha > 0.0 && filter_alpha < 1.0,
        "filter parameter must lie in (0, 1)"
    );
    lp.check_feasible(inst, 1e-6)
        .expect("LP solution must be primal feasible");

    let eps = cfg.epsilon;
    let meter = CostMeter::new();

    // ---- Filtering (Lemma 6.2) ---------------------------------------------------------
    let filter_span = trace::span("filtering", Some(&meter));
    meter.add_primitive(inst.m() as u64);
    let delta: Vec<f64> = if cfg.policy.run_parallel(inst.m()) {
        (0..nc).into_par_iter().map(|j| lp.delta(inst, j)).collect()
    } else {
        (0..nc).map(|j| lp.delta(inst, j)).collect()
    };
    // Balls B_j and the cheapest facility in each ball.
    meter.add_primitive(inst.m() as u64);
    let ball_radius: Vec<f64> = delta.iter().map(|d| (1.0 + filter_alpha) * d).collect();
    let ball = |j: usize| -> Vec<FacilityId> {
        (0..nf)
            .filter(|&i| inst.dist(j, i) <= ball_radius[j] + 1e-12)
            .collect()
    };
    let balls: Vec<Vec<FacilityId>> = if cfg.policy.run_parallel(inst.m()) {
        (0..nc).into_par_iter().map(ball).collect()
    } else {
        (0..nc).map(ball).collect()
    };
    let cheapest_in_ball: Vec<FacilityId> = balls
        .iter()
        .enumerate()
        .map(|(j, b)| {
            *b.iter()
                .min_by(|&&a, &&c| {
                    inst.facility_cost(a)
                        .partial_cmp(&inst.facility_cost(c))
                        .unwrap()
                        .then(a.cmp(&c))
                })
                .unwrap_or_else(|| panic!("client {j} has an empty ball — LP solution malformed"))
        })
        .collect();
    // y' = min(1, (1 + 1/α) y) — only used in the analysis (Claim 6.3); we do not need
    // it to run the algorithm, but it is cheap to expose for verification in tests.
    let _y_prime: Vec<f64> = lp
        .y_slice()
        .iter()
        .map(|&y| (1.0_f64).min((1.0 + 1.0 / filter_alpha) * y))
        .collect();
    drop(filter_span);

    // ---- Rounding rounds ----------------------------------------------------------------
    let rounds_span = trace::span("rounding-rounds", Some(&meter));
    let theta = lp.value();
    let mut client_alive: Vec<bool> = vec![true; nc];
    let mut facility_alive: Vec<bool> = vec![true; nf];
    let mut open: Vec<bool> = vec![false; nf];
    let mut pi: Vec<Option<FacilityId>> = vec![None; nc];
    let mut clients_per_round: Vec<usize> = Vec::new();
    let mut rounds = 0usize;
    let mut inner_rounds = 0usize;

    // Preprocessing: clients with δ_j <= θ/m² are processed in the very first batch (the
    // paper folds them into round one; we simply make them eligible immediately because
    // τ = min δ already admits them — nothing extra to do beyond noting the bound).
    let _cheap_threshold = theta / (inst.m() as f64 * inst.m() as f64);

    while client_alive.iter().any(|&a| a) {
        rounds += 1;
        meter.add_round();
        // Round frontier = clients still unprocessed; counted only when traced.
        trace::round(
            rounds as u64,
            || client_alive.iter().filter(|&&a| a).count() as u64,
            &meter,
        );
        assert!(
            rounds <= cfg.max_rounds,
            "LP rounding exceeded {} rounds — this indicates a bug",
            cfg.max_rounds
        );

        // τ = smallest remaining δ; S = remaining clients within the (1+ε) slack.
        meter.add_primitive(nc as u64);
        let tau = (0..nc)
            .filter(|&j| client_alive[j])
            .map(|j| delta[j])
            .fold(f64::INFINITY, f64::min);
        let s: Vec<ClientId> = (0..nc)
            .filter(|&j| client_alive[j] && delta[j] <= (1.0 + eps) * tau + 1e-12)
            .collect();
        debug_assert!(!s.is_empty());

        // MaxUDom over the bipartite graph (S, alive facilities, ball membership).
        let h = BipartiteGraph::from_predicate(s.len(), nf, |u, i| {
            facility_alive[i] && balls[s[u]].contains(&i)
        });
        meter.add_primitive((s.len() * nf) as u64);
        let dom = max_u_dom(&h, cfg.seed ^ rounds as u64, cfg.policy, &meter);
        inner_rounds += dom.rounds;
        let selected: Vec<ClientId> = dom.selected.iter().map(|&u| s[u]).collect();

        // Open the cheapest facility of each selected client's ball and assign π.
        for &j in &selected {
            let fac = cheapest_in_ball[j];
            open[fac] = true;
            pi[j] = Some(fac);
        }
        // Unselected processed clients charge to a selected client that blocks them:
        // same round, overlapping (still-alive) ball; or an earlier round that removed a
        // facility from their ball.
        for &j in &s {
            if pi[j].is_some() {
                continue;
            }
            // Same-round blocker: a selected client sharing a surviving ball facility.
            let blocker = selected.iter().copied().find(|&j2| {
                balls[j]
                    .iter()
                    .any(|&i| facility_alive[i] && balls[j2].contains(&i))
            });
            // Earlier-round blocker: some facility of the ball is already dead; charge
            // to the facility that the analysis says killed it — the cheapest open
            // facility within the ball if any, otherwise the closest open facility.
            let fac = match blocker {
                Some(j2) => cheapest_in_ball[j2],
                None => {
                    let in_ball_open = balls[j].iter().copied().find(|&i| open[i]);
                    in_ball_open.unwrap_or_else(|| {
                        (0..nf)
                            .filter(|&i| open[i])
                            .min_by(|&a, &b| inst.dist(j, a).partial_cmp(&inst.dist(j, b)).unwrap())
                            .expect("at least one facility is open by now")
                    })
                }
            };
            pi[j] = Some(fac);
        }

        // Remove S and all facilities inside processed balls from the graph.
        for &j in &s {
            client_alive[j] = false;
            for &i in &balls[j] {
                facility_alive[i] = false;
            }
        }
        clients_per_round.push(s.len());
    }
    drop(rounds_span);

    let finalize_span = trace::span("finalize", Some(&meter));
    let open_set: Vec<FacilityId> = (0..nf).filter(|&i| open[i]).collect();
    debug_assert!(!open_set.is_empty());
    let mut solution = FlSolution::from_open_set(inst, open_set);
    solution.lower_bound = lp.value();
    solution.rounds = rounds;
    solution.inner_rounds = inner_rounds;
    drop(finalize_span);
    solution.work = meter.report();

    RoundingOutput {
        solution,
        filter_alpha,
        pi: pi
            .into_iter()
            .map(|p| p.expect("every client assigned"))
            .collect(),
        clients_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_lp::solve_facility_lp;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds;

    fn run(seed: u64, nc: usize, nf: usize, eps: f64) -> (FlInstance, RoundingOutput) {
        let inst = gen::facility_location(GenParams::uniform_square(nc, nf).with_seed(seed));
        let lp = solve_facility_lp(&inst).expect("lp solve");
        let cfg = FlConfig::new(eps).with_seed(seed);
        let out = parallel_lp_rounding_detailed(&inst, &lp, &cfg, 1.0 / 3.0);
        (inst, out)
    }

    #[test]
    fn rounded_cost_is_within_constant_of_lp_value() {
        for seed in 0..6 {
            let (_, out) = run(seed, 10, 6, 0.1);
            let ratio = out.solution.cost / out.solution.lower_bound;
            // Theorem 6.5 guarantee is 4 + ε; allow the ε and a little fp slack.
            assert!(
                ratio <= 4.0 + 0.2,
                "seed {seed}: ratio {ratio} exceeds 4 + ε"
            );
        }
    }

    #[test]
    fn rounded_cost_upper_bounds_optimum_and_lp_lower_bounds_it() {
        for seed in 0..4 {
            let (inst, out) = run(seed, 9, 5, 0.1);
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(out.solution.lower_bound <= opt + 1e-6, "seed {seed}");
            assert!(out.solution.cost >= opt - 1e-9, "seed {seed}");
            assert!(out.solution.cost <= (4.0 + 0.2) * opt + 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn claim_6_4_per_client_charging_bound() {
        // Every client's assigned facility (π) is within 3(1+α)(1+ε)·δ_j — and clients
        // whose own ball facility opened are within (1+α)·δ_j.
        for seed in 0..5 {
            let inst = gen::facility_location(GenParams::uniform_square(12, 7).with_seed(seed));
            let lp = solve_facility_lp(&inst).expect("lp");
            let cfg = FlConfig::new(0.15).with_seed(seed);
            let alpha = 1.0 / 3.0;
            let out = parallel_lp_rounding_detailed(&inst, &lp, &cfg, alpha);
            for j in 0..inst.num_clients() {
                let dj = lp.delta(&inst, j);
                let bound = 3.0 * (1.0 + alpha) * (1.0 + 0.15) * dj + 1e-9;
                let d = inst.dist(j, out.pi[j]);
                assert!(
                    d <= bound.max((1.0 + alpha) * dj + 1e-9),
                    "seed {seed} client {j}: d(j,π)={d} exceeds bound {bound} (δ={dj})"
                );
            }
        }
    }

    #[test]
    fn every_pi_facility_is_open() {
        let (_, out) = run(3, 14, 8, 0.2);
        for (j, &f) in out.pi.iter().enumerate() {
            assert!(
                out.solution.open.contains(&f),
                "client {j} charged to unopened facility {f}"
            );
        }
    }

    #[test]
    fn rounds_are_few_and_cover_all_clients() {
        let (_, out) = run(5, 16, 8, 0.3);
        let total: usize = out.clients_per_round.iter().sum();
        assert_eq!(total, 16, "every client processed exactly once");
        assert_eq!(out.clients_per_round.len(), out.solution.rounds);
        assert!(out.solution.rounds <= 16);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let inst = gen::facility_location(GenParams::uniform_square(10, 6).with_seed(2));
        let lp = solve_facility_lp(&inst).expect("lp");
        let cfg = FlConfig::new(0.1).with_seed(42);
        let a = parallel_lp_rounding(&inst, &lp, &cfg);
        let b = parallel_lp_rounding(&inst, &lp, &cfg);
        assert_eq!(a.open, b.open);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    #[should_panic(expected = "filter parameter")]
    fn invalid_filter_alpha_rejected() {
        let inst = gen::facility_location(GenParams::uniform_square(4, 3).with_seed(1));
        let lp = solve_facility_lp(&inst).expect("lp");
        let _ = parallel_lp_rounding_detailed(&inst, &lp, &FlConfig::new(0.1), 1.5);
    }

    #[test]
    fn larger_filter_alpha_trades_facility_for_connection_cost() {
        let inst = gen::facility_location(GenParams::gaussian_clusters(14, 8, 3).with_seed(4));
        let lp = solve_facility_lp(&inst).expect("lp");
        let cfg = FlConfig::new(0.1).with_seed(4);
        let small = parallel_lp_rounding_detailed(&inst, &lp, &cfg, 0.1);
        let large = parallel_lp_rounding_detailed(&inst, &lp, &cfg, 0.9);
        // Both must still be valid solutions with every client served.
        assert_eq!(small.solution.assignment.len(), 14);
        assert_eq!(large.solution.assignment.len(), 14);
        // The bound constants differ, but both stay within the worst of the two bounds.
        for out in [&small, &large] {
            let ratio = out.solution.cost / lp.value();
            assert!(ratio <= 11.0, "ratio {ratio} unexpectedly large");
        }
    }
}
