//! Shared configuration for the parallel facility-location algorithms.

use parfaclo_bucket::EventEngine;
use parfaclo_matrixops::ExecPolicy;

/// Configuration shared by the parallel greedy, primal-dual and LP-rounding algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlConfig {
    /// The slack parameter `ε > 0` of the paper: every round admits all elements within
    /// a `(1 + ε)` factor of the cheapest. Smaller values track the sequential algorithm
    /// more closely (better constants, more rounds); larger values increase parallelism.
    pub epsilon: f64,
    /// RNG seed for the randomized subselection / dominator-set steps. Fixed seed ⇒
    /// deterministic output.
    pub seed: u64,
    /// Whether primitives run sequentially or on the rayon pool.
    pub policy: ExecPolicy,
    /// Whether to run the `γ/m²` preprocessing step that bounds the number of rounds
    /// (Sections 4 and 5). Disabling it is an ablation knob for experiment E10; the
    /// guarantees still hold but the round bound becomes input-dependent.
    pub preprocess: bool,
    /// Whether the greedy subselection uses the paper's `deg/(2(1+ε))` vote threshold.
    /// Disabling it ("open every candidate") is an ablation knob for experiment E10 and
    /// voids the approximation guarantee.
    pub subselection: bool,
    /// Defensive cap on outer rounds (the theory bounds rounds by `O(log_{1+ε} m)`; the
    /// cap is orders of magnitude larger and only exists to turn a logic bug into a
    /// panic instead of an infinite loop).
    pub max_rounds: usize,
    /// Which event engine drives the round loops: `Bucket` (the default)
    /// serves greedy's sorted distance prefixes lazily from deterministic
    /// bucket queues and pops primal-dual's freeze/open events from them;
    /// `Scan` keeps the historical full-presort / per-iteration-rescan
    /// paths. Output is byte-identical between the two engines — only the
    /// work profile changes.
    pub engine: EventEngine,
}

impl FlConfig {
    /// Creates a configuration with the given `ε`, defaulting to parallel execution,
    /// preprocessing on, subselection on, and seed 0.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        FlConfig {
            epsilon,
            seed: 0,
            policy: ExecPolicy::Parallel,
            preprocess: true,
            subselection: true,
            max_rounds: 100_000,
            engine: EventEngine::default(),
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables the round-bounding preprocessing step (ablation).
    pub fn with_preprocess(mut self, preprocess: bool) -> Self {
        self.preprocess = preprocess;
        self
    }

    /// Enables or disables the greedy subselection vote threshold (ablation).
    pub fn with_subselection(mut self, subselection: bool) -> Self {
        self.subselection = subselection;
        self
    }

    /// Replaces the event engine.
    pub fn with_engine(mut self, engine: EventEngine) -> Self {
        self.engine = engine;
        self
    }
}

impl Default for FlConfig {
    fn default() -> Self {
        FlConfig::new(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = FlConfig::new(0.25)
            .with_seed(9)
            .with_policy(ExecPolicy::Sequential)
            .with_preprocess(false)
            .with_subselection(false)
            .with_engine(EventEngine::Scan);
        assert_eq!(cfg.epsilon, 0.25);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.policy, ExecPolicy::Sequential);
        assert!(!cfg.preprocess);
        assert!(!cfg.subselection);
        assert_eq!(cfg.engine, EventEngine::Scan);
    }

    #[test]
    fn default_is_sane() {
        let cfg = FlConfig::default();
        assert!(cfg.epsilon > 0.0);
        assert!(cfg.preprocess);
        assert!(cfg.subselection);
        assert_eq!(cfg.engine, EventEngine::Bucket, "buckets by default");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epsilon_rejected() {
        let _ = FlConfig::new(0.0);
    }
}
