//! Solution verification and ratio certification.
//!
//! Every experiment in `EXPERIMENTS.md` reports approximation ratios **against certified
//! lower bounds** (dual-feasible values or the LP optimum), never against heuristic
//! estimates. This module bundles the checks: structural validity of a solution, dual
//! feasibility of the α certificate it carries, and the best available lower bound for
//! an instance.

use crate::solution::FlSolution;
use parfaclo_lp::{dual, faclp};
use parfaclo_metric::{approx_eq, FlInstance};

/// Structural validation of a solution against its instance: indices in range, costs
/// consistent, assignment pointing at open, closest facilities.
pub fn verify_solution(inst: &FlInstance, sol: &FlSolution) -> Result<(), String> {
    if sol.open.is_empty() {
        return Err("solution opens no facility".to_string());
    }
    for &i in &sol.open {
        if i >= inst.num_facilities() {
            return Err(format!("open facility {i} out of range"));
        }
    }
    if sol.assignment.len() != inst.num_clients() {
        return Err(format!(
            "assignment covers {} clients, instance has {}",
            sol.assignment.len(),
            inst.num_clients()
        ));
    }
    for (j, &i) in sol.assignment.iter().enumerate() {
        if !sol.open.contains(&i) {
            return Err(format!("client {j} assigned to unopened facility {i}"));
        }
        let (best, best_d) = inst.closest_open(j, &sol.open).unwrap();
        if inst.dist(j, i) > best_d + 1e-9 {
            return Err(format!(
                "client {j} assigned to facility {i} at distance {} but facility {best} is at {}",
                inst.dist(j, i),
                best_d
            ));
        }
    }
    let opening = inst.opening_cost(&sol.open);
    let connection = inst.connection_cost(&sol.open);
    if !approx_eq(opening, sol.opening_cost, 1e-9)
        || !approx_eq(connection, sol.connection_cost, 1e-9)
        || !approx_eq(opening + connection, sol.cost, 1e-9)
    {
        return Err(format!(
            "cost mismatch: recorded {} + {} = {}, recomputed {} + {} = {}",
            sol.opening_cost,
            sol.connection_cost,
            sol.cost,
            opening,
            connection,
            opening + connection
        ));
    }
    if sol.lower_bound > sol.cost + 1e-6 {
        return Err(format!(
            "lower bound {} exceeds solution cost {}",
            sol.lower_bound, sol.cost
        ));
    }
    Ok(())
}

/// The best certified lower bound available for an instance, used by the experiment
/// tables. Solving the LP is only attempted when `m` is at most `lp_size_limit` (the
/// simplex substrate is polynomial but not fast); the γ lower bound of Equation (2) is
/// always available.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceLowerBound {
    /// The γ bound of Equation (2).
    pub gamma: f64,
    /// The LP relaxation value, if it was computed.
    pub lp_value: Option<f64>,
}

impl InstanceLowerBound {
    /// The strongest available bound.
    pub fn best(&self) -> f64 {
        self.lp_value.map_or(self.gamma, |v| v.max(self.gamma))
    }
}

/// Computes the lower bounds for an instance, solving the LP only when
/// `inst.m() <= lp_size_limit`.
pub fn instance_lower_bound(inst: &FlInstance, lp_size_limit: usize) -> InstanceLowerBound {
    let gamma = inst.gamma();
    let lp_value = if inst.m() <= lp_size_limit {
        faclp::solve_facility_lp(inst).ok().map(|s| s.value())
    } else {
        None
    };
    InstanceLowerBound { gamma, lp_value }
}

/// Checks a solution's α certificate (if present) and returns the certified ratio
/// `cost / max(dual value, instance lower bound)`.
pub fn certified_ratio(inst: &FlInstance, sol: &FlSolution, extra_lower_bound: f64) -> Option<f64> {
    let mut bound = extra_lower_bound.max(sol.lower_bound);
    if !sol.alpha.is_empty() && dual::check_alpha_feasible(inst, &sol.alpha, 1e-6).is_ok() {
        bound = bound.max(dual::dual_value(&sol.alpha));
    }
    if bound > 0.0 {
        Some(sol.cost / bound)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlConfig;
    use crate::{greedy, primal_dual};
    use parfaclo_metric::gen::{self, GenParams};

    #[test]
    fn verify_accepts_algorithm_outputs() {
        let inst = gen::facility_location(GenParams::uniform_square(20, 10).with_seed(3));
        let cfg = FlConfig::new(0.1).with_seed(3);
        let g = greedy::parallel_greedy(&inst, &cfg);
        let pd = primal_dual::parallel_primal_dual(&inst, &cfg);
        assert!(verify_solution(&inst, &g).is_ok());
        assert!(verify_solution(&inst, &pd).is_ok());
    }

    #[test]
    fn verify_rejects_tampered_solutions() {
        let inst = gen::facility_location(GenParams::uniform_square(10, 5).with_seed(1));
        let cfg = FlConfig::new(0.1);
        let mut sol = greedy::parallel_greedy(&inst, &cfg);
        sol.cost += 5.0;
        assert!(verify_solution(&inst, &sol).is_err());

        let mut sol2 = greedy::parallel_greedy(&inst, &cfg);
        sol2.open.clear();
        assert!(verify_solution(&inst, &sol2).is_err());

        let mut sol3 = greedy::parallel_greedy(&inst, &cfg);
        sol3.lower_bound = sol3.cost * 10.0;
        assert!(verify_solution(&inst, &sol3).is_err());
    }

    #[test]
    fn instance_lower_bound_prefers_lp_when_available() {
        let inst = gen::facility_location(GenParams::uniform_square(6, 4).with_seed(2));
        let with_lp = instance_lower_bound(&inst, 10_000);
        let without_lp = instance_lower_bound(&inst, 0);
        assert!(with_lp.lp_value.is_some());
        assert!(without_lp.lp_value.is_none());
        assert!(with_lp.best() >= without_lp.best() - 1e-9);
    }

    #[test]
    fn certified_ratio_uses_best_bound() {
        let inst = gen::facility_location(GenParams::uniform_square(8, 5).with_seed(5));
        let cfg = FlConfig::new(0.1).with_seed(5);
        let sol = primal_dual::parallel_primal_dual(&inst, &cfg);
        let lb = instance_lower_bound(&inst, 10_000);
        let ratio = certified_ratio(&inst, &sol, lb.best()).expect("certificate");
        assert!(ratio >= 1.0 - 1e-9);
        assert!(ratio <= 3.5, "primal-dual ratio {ratio} suspiciously large");
    }
}
