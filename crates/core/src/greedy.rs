//! The parallel greedy facility-location algorithm (Algorithm 4.1, Theorem 4.9).
//!
//! The sequential JMS greedy repeatedly opens the single cheapest maximal star. The
//! parallel version instead admits, per round, **every** facility whose cheapest maximal
//! star is within a `(1 + ε)` factor of the global minimum `τ`, builds the bipartite
//! graph `H` connecting those facilities to the clients within distance `τ(1 + ε)`, and
//! then runs the **facility subselection** loop: in each inner iteration the candidate
//! facilities are randomly permuted, every client votes for its lowest-ranked adjacent
//! candidate, and a candidate is opened when it collects at least a
//! `1 / (2(1 + ε))` fraction of its neighbourhood's votes. Opened facilities have their
//! cost zeroed and their adjacent clients removed; candidates whose residual average
//! price exceeds `τ(1 + ε)` drop out of the round (they come back in later rounds).
//!
//! The `γ/m²` preprocessing of Section 4 opens ultra-cheap stars up front so that the
//! total number of outer rounds is `O(log_{1+ε} m)`; the subselection loop terminates in
//! `O(log_{1+ε} m)` iterations with high probability (Lemma 4.8).
//!
//! The recorded `α_j` (the `τ` value of the round in which client `j` was removed) feed
//! the dual-fitting analysis: scaled down by 1.861 (Lemma 4.6) — or 3 by the
//! self-contained Lemma 4.7 — they are dual feasible. The implementation certifies a
//! lower bound numerically by scaling `α` down until it passes the exact dual
//! feasibility check, which is at least as strong as either lemma.

use crate::config::FlConfig;
use crate::solution::FlSolution;
use crate::stars::{self, StarOrders};
use parfaclo_lp::dual;
use parfaclo_matrixops::CostMeter;
use parfaclo_metric::{ClientId, DistanceOracle, FacilityId, FlInstance};
use parfaclo_trace as trace;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Per-round diagnostics, used by experiments E2 and E10.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyRoundStats {
    /// The threshold `τ` of the round.
    pub tau: f64,
    /// Number of candidate facilities admitted (`|I|`).
    pub candidates: usize,
    /// Number of facilities opened this round.
    pub opened: usize,
    /// Number of clients removed this round.
    pub clients_removed: usize,
    /// Number of subselection iterations the round needed.
    pub subselection_iters: usize,
}

/// Extended result of the parallel greedy algorithm.
#[derive(Debug, Clone)]
pub struct GreedyOutput {
    /// The solution (open set, costs, α values, work counters).
    pub solution: FlSolution,
    /// Per-round diagnostics.
    pub round_stats: Vec<GreedyRoundStats>,
}

/// Runs Algorithm 4.1 and returns just the solution. See [`parallel_greedy_detailed`]
/// for per-round diagnostics.
pub fn parallel_greedy(inst: &FlInstance, cfg: &FlConfig) -> FlSolution {
    parallel_greedy_detailed(inst, cfg).solution
}

/// Runs Algorithm 4.1, returning the solution plus per-round statistics.
///
/// # Panics
/// Panics if the instance has no clients or no facilities, or if the defensive
/// `cfg.max_rounds` cap is exceeded (which would indicate a bug, not an input problem).
pub fn parallel_greedy_detailed(inst: &FlInstance, cfg: &FlConfig) -> GreedyOutput {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    assert!(
        nc > 0 && nf > 0,
        "instance must have clients and facilities"
    );
    let eps = cfg.epsilon;
    let slack = 1.0 + eps;
    let meter = CostMeter::new();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // Engine-selected client orders: the scan engine presorts every
    // facility's clients up front (`O(m log m)`); the bucket engine
    // partitions them into geometric distance buckets (`O(m)`) and sorts
    // each bucket only when a star scan actually reaches it. Both serve the
    // scans bit-identical distance sequences, so everything downstream —
    // stars, τ, the subselection RNG stream, the open set — is byte-equal.
    let mut orders = {
        let _span = trace::span("orders-build", Some(&meter));
        StarOrders::build(inst, cfg.engine, cfg.policy, &meter)
    };
    let mut remaining: Vec<bool> = vec![true; nc];
    let mut remaining_count = nc;
    let mut fcost: Vec<f64> = (0..nf).map(|i| inst.facility_cost(i)).collect();
    let mut opened: Vec<bool> = vec![false; nf];
    let mut alpha: Vec<f64> = vec![0.0; nc];
    let mut round_stats: Vec<GreedyRoundStats> = Vec::new();
    let mut inner_rounds_total = 0usize;

    // ---- Preprocessing (Section 4, "Bounding the number of rounds") ----------------
    // Open every facility whose cheapest maximal star costs at most γ/m²; this costs at
    // most opt/m extra and guarantees τ >= γ/m² in the first real round.
    if cfg.preprocess {
        let _span = trace::span("preprocess", Some(&meter));
        let gamma = inst.gamma();
        let threshold = gamma / (inst.m() as f64 * inst.m() as f64);
        let stars = stars::all_cheapest_stars_with(
            inst,
            &fcost,
            &mut orders,
            &remaining,
            cfg.policy,
            &meter,
        );
        for star in stars.into_iter().flatten() {
            if star.price <= threshold && remaining_count > 0 {
                let i = star.facility;
                if !opened[i] {
                    opened[i] = true;
                }
                fcost[i] = 0.0;
                for &j in &star.clients {
                    if remaining[j] {
                        remaining[j] = false;
                        remaining_count -= 1;
                        alpha[j] = star.price;
                    }
                }
            }
        }
    }

    // ---- Main rounds -----------------------------------------------------------------
    let rounds_span = trace::span("star-rounds", Some(&meter));
    let mut outer_rounds = 0usize;
    while remaining_count > 0 {
        outer_rounds += 1;
        meter.add_round();
        trace::round(outer_rounds as u64, || remaining_count as u64, &meter);
        assert!(
            outer_rounds <= cfg.max_rounds,
            "parallel greedy exceeded {} rounds — this indicates a bug",
            cfg.max_rounds
        );

        // Step 1: cheapest maximal star per facility.
        let stars = stars::all_cheapest_stars_with(
            inst,
            &fcost,
            &mut orders,
            &remaining,
            cfg.policy,
            &meter,
        );

        // Step 2: τ and the candidate set I.
        let tau = stars
            .iter()
            .flatten()
            .map(|s| s.price)
            .fold(f64::INFINITY, f64::min);
        assert!(tau.is_finite(), "no star exists while clients remain");
        let threshold = tau * slack;
        let mut candidates: Vec<FacilityId> = stars
            .iter()
            .flatten()
            .filter(|s| s.price <= threshold)
            .map(|s| s.facility)
            .collect();
        let num_candidates = candidates.len();

        // Step 3: bipartite graph H between candidates and nearby remaining clients.
        // adj[c] = remaining clients within distance τ(1+ε) of candidates[c].
        // An index-capable oracle answers the threshold neighbourhood with a
        // range query (sublinear in |C|); scan oracles keep the cheap
        // remaining-first short circuit. Batch-kernel oracles take the same
        // branch: their `rows_within` is a blocked vectorised sweep, which
        // beats the per-element scalar loop in the same regimes an index
        // does. The one regime where either query loses is a near-diameter
        // τ(1+ε) paired with a *very* sparse
        // remaining set — enumerating ~|C| ids only to discard nearly all
        // of them — so the query branch stands down below ~1.6% remaining
        // (any less sparse, and a dense neighbourhood means the subselection
        // work on it dominates the query cost anyway). Both paths produce
        // the same ascending client list, and the meter charge is the
        // paper's |I|·|C| work bound either way.
        meter.add_primitive((num_candidates * nc) as u64);
        let use_index = (inst.distances().has_sublinear_queries()
            || inst.distances().has_batch_distance_kernels())
            && remaining_count * 64 >= nc;
        let build_adj = |&i: &FacilityId| -> Vec<ClientId> {
            if use_index {
                inst.distances()
                    .rows_within(i, threshold)
                    .into_iter()
                    .filter(|&j| remaining[j])
                    .collect()
            } else {
                (0..nc)
                    .filter(|&j| remaining[j] && inst.dist(j, i) <= threshold)
                    .collect()
            }
        };
        let mut adj: Vec<Vec<ClientId>> = if cfg.policy.run_parallel(num_candidates * nc) {
            candidates.par_iter().map(build_adj).collect()
        } else {
            candidates.iter().map(build_adj).collect()
        };

        // Step 4: facility subselection.
        let mut opened_this_round = 0usize;
        let mut removed_this_round = 0usize;
        let mut subselection_iters = 0usize;
        while !candidates.is_empty() {
            subselection_iters += 1;
            inner_rounds_total += 1;
            assert!(
                subselection_iters <= cfg.max_rounds,
                "facility subselection exceeded {} iterations — this indicates a bug",
                cfg.max_rounds
            );

            // Refresh adjacency against the current remaining set and drop candidates
            // with no remaining neighbours.
            for a in adj.iter_mut() {
                a.retain(|&j| remaining[j]);
            }
            let keep: Vec<bool> = adj.iter().map(|a| !a.is_empty()).collect();
            let mut idx = 0usize;
            candidates.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
            adj.retain(|a| !a.is_empty());
            if candidates.is_empty() {
                break;
            }

            // (a) Random permutation Π of the candidates.
            let mut ranks: Vec<usize> = (0..candidates.len()).collect();
            ranks.shuffle(&mut rng);
            // rank_of[c] = Π(candidates[c])
            let rank_of: Vec<usize> = ranks;

            // (b) Every adjacent client votes for its lowest-ranked candidate.
            meter.add_primitive((candidates.len() * nc) as u64);
            let client_vote: Vec<Option<usize>> = {
                // For each client, the candidate index with minimal rank among
                // candidates adjacent to it.
                let mut vote: Vec<Option<usize>> = vec![None; nc];
                for (c, a) in adj.iter().enumerate() {
                    for &j in a {
                        match vote[j] {
                            None => vote[j] = Some(c),
                            Some(prev) => {
                                if rank_of[c] < rank_of[prev] {
                                    vote[j] = Some(c);
                                }
                            }
                        }
                    }
                }
                vote
            };
            let mut votes: Vec<usize> = vec![0; candidates.len()];
            for v in client_vote.iter().flatten() {
                votes[*v] += 1;
            }

            // (c) Open sufficiently-voted candidates; remove their clients.
            let vote_threshold = |deg: usize| -> f64 {
                if cfg.subselection {
                    deg as f64 / (2.0 * slack)
                } else {
                    0.0
                }
            };
            let to_open: Vec<usize> = (0..candidates.len())
                .filter(|&c| votes[c] as f64 >= vote_threshold(adj[c].len()))
                .collect();
            for &c in &to_open {
                let i = candidates[c];
                if !opened[i] {
                    opened[i] = true;
                }
                fcost[i] = 0.0;
                opened_this_round += 1;
                for &j in &adj[c] {
                    if remaining[j] {
                        remaining[j] = false;
                        remaining_count -= 1;
                        removed_this_round += 1;
                        alpha[j] = tau;
                    }
                }
            }
            if !to_open.is_empty() {
                let open_set: Vec<bool> = {
                    let mut v = vec![false; candidates.len()];
                    for &c in &to_open {
                        v[c] = true;
                    }
                    v
                };
                let mut idx = 0usize;
                candidates.retain(|_| {
                    let k = !open_set[idx];
                    idx += 1;
                    k
                });
                let mut idx = 0usize;
                adj.retain(|_| {
                    let k = !open_set[idx];
                    idx += 1;
                    k
                });
            }

            // (d) Prune candidates whose residual average price exceeds τ(1+ε).
            // Each candidate's live-client distances are gathered in one
            // blocked-kernel oracle call and summed left-to-right in the
            // same ascending client order as a per-element loop would.
            meter.add_primitive((candidates.len() * nc) as u64);
            let mut dist_buf: Vec<f64> = Vec::new();
            let prune: Vec<bool> = candidates
                .iter()
                .zip(adj.iter())
                .map(|(&i, a)| {
                    let live: Vec<ClientId> = a.iter().copied().filter(|&j| remaining[j]).collect();
                    if live.is_empty() {
                        return true;
                    }
                    dist_buf.clear();
                    dist_buf.resize(live.len(), 0.0);
                    inst.distances().col_gather(i, &live, &mut dist_buf);
                    let sum: f64 = dist_buf.iter().sum();
                    (fcost[i] + sum) / live.len() as f64 > threshold
                })
                .collect();
            let mut idx = 0usize;
            candidates.retain(|_| {
                let k = !prune[idx];
                idx += 1;
                k
            });
            let mut idx = 0usize;
            adj.retain(|_| {
                let k = !prune[idx];
                idx += 1;
                k
            });
        }

        round_stats.push(GreedyRoundStats {
            tau,
            candidates: num_candidates,
            opened: opened_this_round,
            clients_removed: removed_this_round,
            subselection_iters,
        });
    }
    drop(rounds_span);

    // ---- Wrap up ----------------------------------------------------------------------
    let finalize_span = trace::span("finalize", Some(&meter));
    let open: Vec<FacilityId> = (0..nf).filter(|&i| opened[i]).collect();
    let open = if open.is_empty() {
        // Degenerate: all clients were removed by preprocessing alone without opening
        // anything (cannot happen — preprocessing always opens the star's facility), but
        // guard anyway by opening the globally cheapest facility.
        vec![(0..nf)
            .min_by(|&a, &b| {
                inst.facility_cost(a)
                    .partial_cmp(&inst.facility_cost(b))
                    .unwrap()
            })
            .unwrap()]
    } else {
        open
    };

    let mut solution = FlSolution::from_open_set(inst, open);
    // Certified lower bound: scale α down until it is exactly dual feasible. Lemma 4.6
    // guarantees a scaling of 1/1.861 always works, so the certified bound is at least
    // Σα / 1.861 up to the numerical search granularity.
    let scale = dual::max_feasible_scaling(inst, &alpha, 40);
    let scaled: Vec<f64> = alpha.iter().map(|a| a * scale).collect();
    solution.lower_bound = dual::dual_value(&scaled);
    solution.alpha = alpha;
    solution.rounds = outer_rounds;
    solution.inner_rounds = inner_rounds_total;
    drop(finalize_span);
    solution.work = meter.report();

    GreedyOutput {
        solution,
        round_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_matrixops::ExecPolicy;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;
    use parfaclo_seq_baselines::jms_greedy;

    #[test]
    fn single_facility_instance_is_trivial() {
        let inst = FlInstance::new(
            vec![2.0],
            DistanceMatrix::from_rows(3, 1, vec![1.0, 1.0, 2.0]),
        );
        let out = parallel_greedy_detailed(&inst, &FlConfig::new(0.1));
        assert_eq!(out.solution.open, vec![0]);
        assert_eq!(out.solution.cost, 6.0);
        assert!(out.solution.rounds >= 1);
    }

    #[test]
    fn within_theorem_bound_on_small_instances() {
        // Theorem 4.9 / abstract: (3.722 + ε)-approximation (6 + ε by the weaker
        // analysis). Check the *stronger* bound against brute force on small instances.
        for seed in 0..10 {
            let inst = gen::facility_location(GenParams::uniform_square(12, 6).with_seed(seed));
            let cfg = FlConfig::new(0.1).with_seed(seed);
            let sol = parallel_greedy(&inst, &cfg);
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                sol.cost <= (3.722 + 0.1) * opt + 1e-6,
                "seed {seed}: cost {} vs opt {opt}",
                sol.cost
            );
            assert!(sol.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn certified_lower_bound_is_valid() {
        for seed in 0..6 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(10, 6, 3).with_seed(seed));
            let sol = parallel_greedy(&inst, &FlConfig::new(0.2).with_seed(seed));
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(sol.lower_bound <= opt + 1e-6, "seed {seed}");
            assert!(sol.lower_bound > 0.0, "seed {seed}: certificate missing");
            // The certificate must also be consistent with the reported cost.
            assert!(sol.cost >= sol.lower_bound - 1e-9);
        }
    }

    #[test]
    fn comparable_to_sequential_jms() {
        // The parallel algorithm may lose up to a constant factor against JMS; verify it
        // stays within the analysed 2(1+ε)² blow-up on a batch of instances.
        for seed in 0..6 {
            let inst = gen::facility_location(GenParams::uniform_square(30, 12).with_seed(seed));
            let seq = jms_greedy(&inst);
            let par = parallel_greedy(&inst, &FlConfig::new(0.1).with_seed(seed));
            assert!(
                par.cost <= 2.0 * (1.1_f64).powi(2) * seq.cost + 1e-6,
                "seed {seed}: parallel {} vs sequential {}",
                par.cost,
                seq.cost
            );
        }
    }

    #[test]
    fn rounds_grow_logarithmically_with_epsilon_slack() {
        let inst = gen::facility_location(GenParams::uniform_square(60, 30).with_seed(3));
        let tight = parallel_greedy_detailed(&inst, &FlConfig::new(0.05).with_seed(1));
        let loose = parallel_greedy_detailed(&inst, &FlConfig::new(1.0).with_seed(1));
        // A larger slack admits more facilities per round, so it needs at most as many
        // outer rounds (typically far fewer).
        assert!(loose.solution.rounds <= tight.solution.rounds);
        // And the round statistics are internally consistent.
        for out in [&tight, &loose] {
            let removed: usize = out.round_stats.iter().map(|r| r.clients_removed).sum();
            assert!(removed <= 60);
            assert_eq!(out.round_stats.len(), out.solution.rounds);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_policy_independent() {
        let inst = gen::facility_location(GenParams::grid(36, 18).with_seed(0));
        let cfg_seq = FlConfig::new(0.3)
            .with_seed(5)
            .with_policy(ExecPolicy::Sequential);
        let cfg_par = FlConfig::new(0.3)
            .with_seed(5)
            .with_policy(ExecPolicy::Parallel);
        let a = parallel_greedy(&inst, &cfg_seq);
        let b = parallel_greedy(&inst, &cfg_par);
        let c = parallel_greedy(&inst, &cfg_seq);
        assert_eq!(a.open, c.open, "same seed must give identical output");
        assert_eq!(a.open, b.open, "policy must not change the result");
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn zero_cost_facilities() {
        let inst = gen::facility_location(
            GenParams::uniform_square(20, 8)
                .with_seed(2)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let sol = parallel_greedy(&inst, &FlConfig::new(0.1));
        // With free facilities the optimum is the sum of nearest-facility distances.
        let opt: f64 = (0..20)
            .map(|j| {
                (0..8)
                    .map(|i| inst.dist(j, i))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!(sol.cost <= (3.722 + 0.1) * opt + 1e-6);
    }

    #[test]
    fn ablation_disabling_subselection_still_terminates() {
        let inst = gen::facility_location(GenParams::uniform_square(20, 10).with_seed(4));
        let cfg = FlConfig::new(0.2).with_subselection(false);
        let sol = parallel_greedy(&inst, &cfg);
        assert!(!sol.open.is_empty());
        // Without the vote threshold more facilities open, so the opening cost can only
        // be larger or equal compared to the guarded version with the same seed.
        let guarded = parallel_greedy(&inst, &FlConfig::new(0.2));
        assert!(sol.open.len() >= guarded.open.len());
    }

    #[test]
    fn ablation_disabling_preprocess_still_correct() {
        let inst = gen::facility_location(GenParams::uniform_square(15, 8).with_seed(6));
        let sol = parallel_greedy(&inst, &FlConfig::new(0.1).with_preprocess(false));
        let with = parallel_greedy(&inst, &FlConfig::new(0.1));
        let (_, opt) = lower_bounds::brute_force_facility_location(&gen::facility_location(
            GenParams::uniform_square(15, 8).with_seed(6),
        ));
        assert!(sol.cost <= (3.722 + 0.1) * opt + 1e-6);
        assert!(with.cost <= (3.722 + 0.1) * opt + 1e-6);
    }

    #[test]
    fn alpha_values_match_round_taus() {
        let inst = gen::facility_location(GenParams::uniform_square(25, 10).with_seed(9));
        let out = parallel_greedy_detailed(&inst, &FlConfig::new(0.15).with_seed(9));
        let taus: Vec<f64> = out.round_stats.iter().map(|r| r.tau).collect();
        for (j, &a) in out.solution.alpha.iter().enumerate() {
            // Every client's α is either a preprocessing star price (tiny) or one of the
            // round τ values.
            let matches_tau = taus.iter().any(|&t| (t - a).abs() < 1e-9);
            assert!(
                matches_tau || a <= inst.gamma() / (inst.m() as f64),
                "client {j}: α = {a} matches no round τ"
            );
        }
    }

    #[test]
    fn work_counters_are_populated() {
        // Sort accounting is engine-defined: the scan engine charges one
        // full presort up front; the bucket engine charges one sort per
        // lazily expanded bucket prefix. Either way at least one sort is
        // recorded (a star scan cannot produce a star without a sorted
        // prefix), counters are deterministic, and `rounds` agrees with the
        // solution's round count.
        use parfaclo_bucket::EventEngine;
        let inst = gen::facility_location(GenParams::uniform_square(30, 15).with_seed(1));
        for engine in [EventEngine::Scan, EventEngine::Bucket] {
            let sol = parallel_greedy(&inst, &FlConfig::new(0.1).with_engine(engine));
            assert!(sol.work.element_ops > 0, "{engine}");
            assert!(sol.work.primitive_calls > 0, "{engine}");
            assert!(
                sol.work.sort_calls >= 1,
                "{engine}: sorted-prefix work must be recorded"
            );
            assert_eq!(sol.work.rounds as usize, sol.rounds, "{engine}");
        }
    }

    #[test]
    fn scan_and_bucket_engines_agree_with_different_work_profiles() {
        use parfaclo_bucket::EventEngine;
        for seed in 0..4 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(40, 12, 3).with_seed(seed));
            let scan = parallel_greedy(
                &inst,
                &FlConfig::new(0.1)
                    .with_seed(seed)
                    .with_engine(EventEngine::Scan),
            );
            let bucket = parallel_greedy(
                &inst,
                &FlConfig::new(0.1)
                    .with_seed(seed)
                    .with_engine(EventEngine::Bucket),
            );
            // Results are byte-identical...
            assert_eq!(scan.open, bucket.open, "seed {seed}");
            assert_eq!(scan.cost.to_bits(), bucket.cost.to_bits(), "seed {seed}");
            assert_eq!(
                scan.lower_bound.to_bits(),
                bucket.lower_bound.to_bits(),
                "seed {seed}"
            );
            assert_eq!(scan.alpha, bucket.alpha, "seed {seed}");
            assert_eq!(scan.assignment, bucket.assignment, "seed {seed}");
            assert_eq!(scan.rounds, bucket.rounds, "seed {seed}");
            assert_eq!(scan.inner_rounds, bucket.inner_rounds, "seed {seed}");
            // ...while the sort profile legitimately differs: the scan
            // engine's single presort covers every client, the bucket
            // engine sorts at most what the scans consumed.
            assert_eq!(scan.work.rounds, bucket.work.rounds, "seed {seed}");
            assert_eq!(
                scan.work.primitive_calls, bucket.work.primitive_calls,
                "seed {seed}: both engines charge the paper's per-round primitives"
            );
        }
    }
}
