//! Stars and maximal-star computation (Definition 4.1, Fact 4.2).
//!
//! A *star* `S = (i, C')` is a facility together with a set of clients; its price is
//! `(f_i + Σ_{j∈C'} d(j,i)) / |C'|`. The greedy algorithms (sequential and parallel)
//! repeatedly need, for every facility, the **cheapest maximal star** over the remaining
//! clients. By Fact 4.2 this star consists of the `κ` closest remaining clients for some
//! `κ`, so after presorting each facility's client distances once, each round only needs
//! a prefix sum along the sorted order — which is exactly how Algorithm 4.1 implements
//! its step 1.

use parfaclo_bucket::{BucketMapping, EventEngine};
use parfaclo_matrixops::{sort, CostMeter, ExecPolicy};
use parfaclo_metric::{ClientId, DistanceOracle, FacilityId, FlInstance};
use rayon::prelude::*;

/// Pre-sorted client order for every facility: `orders[i]` lists the client indices in
/// non-decreasing distance from facility `i`.
#[derive(Debug, Clone)]
pub struct FacilityOrders {
    orders: Vec<Vec<u32>>,
}

impl FacilityOrders {
    /// Presorts every facility's clients by distance. Costs one (virtual) row sort
    /// over the transposed distance matrix (`O(m log m)` work), done once per
    /// algorithm run. Distances are pulled straight from the instance's oracle one
    /// facility column at a time, so peak memory is `O(|C|)` scratch per in-flight
    /// facility — the dense `|C| x |F|` transpose is never materialised, which is
    /// what keeps the greedy algorithm feasible on implicit-backend instances with
    /// hundreds of thousands of clients.
    pub fn presort(inst: &FlInstance, policy: ExecPolicy, meter: &CostMeter) -> Self {
        let nc = inst.num_clients();
        let nf = inst.num_facilities();
        meter.add_primitive((nc * nf) as u64);
        // Facility-major view: virtual row i holds d(j, i) for every client
        // j — one oracle column, filled whole so the blocked distance
        // kernels serve it instead of `nc` per-element oracle calls.
        let oracle = inst.distances();
        let row_orders = sort::argsort_rows_filled(nf, nc, policy, meter, |i, row| {
            oracle.col_range_into(i, 0, row);
        });
        FacilityOrders {
            orders: row_orders.into_iter().map(|ro| ro.order).collect(),
        }
    }

    /// The sorted client order of facility `i`.
    #[inline]
    pub fn order(&self, i: FacilityId) -> &[u32] {
        &self.orders[i]
    }

    /// Number of facilities covered.
    pub fn num_facilities(&self) -> usize {
        self.orders.len()
    }
}

/// A maximal cheapest star: facility, price, and the clients it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct Star {
    /// The facility at the centre of the star.
    pub facility: FacilityId,
    /// The star's price `(f_i + Σ d(j,i)) / |C'|`.
    pub price: f64,
    /// The clients of the star (the `|C'|` closest remaining clients).
    pub clients: Vec<ClientId>,
}

/// Computes the cheapest maximal star of facility `i` over the clients for which
/// `remaining` is `true`, using the presorted `order` and the (possibly zeroed) facility
/// cost `fcost`. Returns `None` if no clients remain.
pub fn cheapest_maximal_star(
    inst: &FlInstance,
    i: FacilityId,
    fcost: f64,
    order: &[u32],
    remaining: &[bool],
) -> Option<Star> {
    // Remaining clients are walked in presorted order, one distance tile at
    // a time: a tile of surviving clients is gathered through the oracle's
    // blocked column kernel, then walked scalar with the early break below.
    // Wasted work on a break is bounded by one tile.
    const TILE: usize = 64;
    let oracle = inst.distances();
    let mut best_price = f64::INFINITY;
    let mut best_k = 0usize;
    let mut dist_sum = 0.0;
    let mut k = 0usize;
    let mut clients_in_order: Vec<ClientId> = Vec::new();
    let mut batch: Vec<usize> = Vec::with_capacity(TILE);
    let mut dists = [0.0f64; TILE];
    let mut cursor = 0usize;
    'scan: while cursor < order.len() {
        batch.clear();
        while cursor < order.len() && batch.len() < TILE {
            let j = order[cursor] as usize;
            cursor += 1;
            if remaining[j] {
                batch.push(j);
            }
        }
        if batch.is_empty() {
            continue;
        }
        oracle.col_gather(i, &batch, &mut dists[..batch.len()]);
        for (&j, &d) in batch.iter().zip(dists.iter()) {
            // Early termination: distances arrive in non-decreasing order, so
            // once `d > best_price` every later prefix price exceeds
            // `best_price` in real arithmetic (price_{k+1} is the k-weighted
            // average of price_k and d_{k+1}, and all later distances are >= d —
            // the unimodality behind Fact 4.2), turning the scan into
            // O(|star|) distance evaluations instead of O(|C|), on every
            // backend. Strictly greater only: a distance *equal* to the best
            // price still extends the maximal star at the same price. Defined
            // behaviour on sub-ulp edges: a full scan's rounded price can dip
            // back to == best_price even though the real price is larger; this
            // scan resolves such artificial ties by the real-arithmetic
            // semantics (the star is not extended). Identical everywhere it
            // matters: deterministic, and invariant across backends, thread
            // counts and policies, since every configuration runs this exact
            // loop on bit-identical distances.
            if d > best_price {
                break 'scan;
            }
            dist_sum += d;
            k += 1;
            clients_in_order.push(j);
            let price = (fcost + dist_sum) / k as f64;
            // Prefer smaller prices; on ties prefer the larger star (maximality) — ties are
            // handled automatically because `k` increases monotonically through the scan.
            if price <= best_price {
                best_price = price;
                best_k = k;
            }
        }
    }
    if k == 0 {
        return None;
    }
    clients_in_order.truncate(best_k);
    Some(Star {
        facility: i,
        price: best_price,
        clients: clients_in_order,
    })
}

/// Computes the cheapest maximal star of every facility in parallel. `fcosts` carries
/// the *current* facility costs (zeroed for already-open facilities, per the paper).
pub fn all_cheapest_stars(
    inst: &FlInstance,
    fcosts: &[f64],
    orders: &FacilityOrders,
    remaining: &[bool],
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<Option<Star>> {
    let nf = inst.num_facilities();
    meter.add_primitive((inst.num_clients() * nf) as u64);
    let one = |i: usize| cheapest_maximal_star(inst, i, fcosts[i], orders.order(i), remaining);
    if policy.run_parallel(inst.m()) {
        (0..nf).into_par_iter().map(one).collect()
    } else {
        (0..nf).map(one).collect()
    }
}

/// Number of distinct bucket keys under the default geometric mapping
/// (4 refinement bits: 12 exponent+mantissa bits survive the shift, and the
/// sign bit of a non-negative finite `f64` is always 0).
const LAZY_KEYS: usize = 1 << 16;

/// Per-facility lazily-sorted client order, bucketed by distance.
///
/// The clients are partitioned once into geometric distance buckets
/// (ascending bucket key, ascending client id within a bucket — a counting
/// pass, no comparison sort). `sorted` is the materialised prefix: whole
/// buckets, sorted on demand by packed `(distance_bits << 32) | id` exactly
/// like [`FacilityOrders::presort`]'s row sort, appended in bucket order.
/// Because the geometric mapping is monotone and its buckets bracket
/// disjoint value intervals, the concatenation of per-bucket sorted runs
/// reproduces the full presorted order — just only as far as the star scans
/// actually consume it.
#[derive(Debug, Clone)]
pub struct LazyFacilityOrder {
    /// Ascending keys of the non-empty buckets.
    bucket_keys: Vec<u32>,
    /// CSR offsets into `bucket_ids`, one per non-empty bucket plus the
    /// terminating total.
    bucket_offsets: Vec<u32>,
    /// Client ids grouped by bucket (ascending id within each bucket).
    bucket_ids: Vec<u32>,
    /// The sorted prefix: every expanded bucket's clients in full sorted
    /// order.
    sorted: Vec<u32>,
    /// Index of the first unexpanded bucket.
    next_bucket: usize,
}

impl LazyFacilityOrder {
    /// Buckets facility `i`'s client distances. One oracle column fill plus
    /// a counting pass — `O(|C| + K)` work, no sort.
    fn build(inst: &FlInstance, i: FacilityId, mapping: BucketMapping) -> Self {
        let nc = inst.num_clients();
        let mut row = vec![0.0f64; nc];
        inst.distances().col_range_into(i, 0, &mut row);
        let mut starts = vec![0u32; LAZY_KEYS];
        for &d in &row {
            let key = mapping.bucket_of(d) as usize;
            debug_assert!(key < LAZY_KEYS);
            starts[key] += 1;
        }
        let mut bucket_keys = Vec::new();
        let mut bucket_offsets = Vec::new();
        let mut total = 0u32;
        for (key, slot) in starts.iter_mut().enumerate() {
            let count = *slot;
            if count > 0 {
                bucket_keys.push(key as u32);
                bucket_offsets.push(total);
            }
            *slot = total;
            total += count;
        }
        bucket_offsets.push(total);
        let mut bucket_ids = vec![0u32; nc];
        for (j, &d) in row.iter().enumerate() {
            let key = mapping.bucket_of(d) as usize;
            bucket_ids[starts[key] as usize] = j as u32;
            starts[key] += 1;
        }
        LazyFacilityOrder {
            bucket_keys,
            bucket_offsets,
            bucket_ids,
            sorted: Vec::new(),
            next_bucket: 0,
        }
    }

    /// Key of the first unexpanded bucket, or `None` when fully expanded.
    fn next_bucket_key(&self) -> Option<u32> {
        self.bucket_keys.get(self.next_bucket).copied()
    }

    /// Sorts the next bucket's clients by `(distance_bits, id)` and appends
    /// them to the sorted prefix. Charges one sort of the bucket's size.
    fn expand_next_bucket(&mut self, inst: &FlInstance, i: FacilityId, meter: &CostMeter) {
        let b = self.next_bucket;
        debug_assert!(b < self.bucket_keys.len());
        let start = self.bucket_offsets[b] as usize;
        let end = self.bucket_offsets[b + 1] as usize;
        let ids = &self.bucket_ids[start..end];
        let clients: Vec<usize> = ids.iter().map(|&j| j as usize).collect();
        let mut dists = vec![0.0f64; clients.len()];
        inst.distances().col_gather(i, &clients, &mut dists);
        // The same packed representation as the presort's row argsort:
        // ties in distance break by ascending client id, so the appended
        // run continues the exact global presorted order.
        let mut packed: Vec<u128> = ids
            .iter()
            .zip(dists.iter())
            .map(|(&j, &d)| (u128::from(d.to_bits()) << 32) | u128::from(j))
            .collect();
        packed.sort_unstable();
        self.sorted
            .extend(packed.iter().map(|&p| (p & 0xFFFF_FFFF) as u32));
        meter.add_sort(clients.len() as u64);
        self.next_bucket += 1;
    }
}

/// Lazily-sorted client orders for every facility (the bucket event
/// engine's replacement for [`FacilityOrders`]).
#[derive(Debug, Clone)]
pub struct LazyOrders {
    mapping: BucketMapping,
    facilities: Vec<LazyFacilityOrder>,
}

impl LazyOrders {
    /// Buckets every facility's client distances — the same one-pass-over-m
    /// primitive charge as [`FacilityOrders::presort`], but no sort: sorting
    /// is deferred to [`cheapest_maximal_star_bucketed`]'s on-demand bucket
    /// expansions.
    pub fn build(inst: &FlInstance, policy: ExecPolicy, meter: &CostMeter) -> Self {
        let nc = inst.num_clients();
        let nf = inst.num_facilities();
        meter.add_primitive((nc * nf) as u64);
        let mapping = BucketMapping::geometric_default();
        let build_one = |i: usize| LazyFacilityOrder::build(inst, i, mapping);
        let facilities: Vec<LazyFacilityOrder> = if policy.run_parallel(inst.m()) {
            (0..nf).into_par_iter().map(build_one).collect()
        } else {
            (0..nf).map(build_one).collect()
        };
        LazyOrders {
            mapping,
            facilities,
        }
    }

    /// Number of facilities covered.
    pub fn num_facilities(&self) -> usize {
        self.facilities.len()
    }

    /// Total clients materialised into sorted prefixes so far (diagnostic).
    pub fn expanded_clients(&self) -> usize {
        self.facilities.iter().map(|f| f.sorted.len()).sum()
    }
}

/// The bucket-engine variant of [`cheapest_maximal_star`]: identical scan,
/// but the presorted order is served from the facility's lazily expanded
/// bucket prefix. When the prefix runs out, the next bucket's exact lower
/// bound decides between stopping (every later distance already exceeds the
/// best price — the same condition the presorted scan's early break would
/// hit) and sorting one more bucket. Byte-identical stars to the presort
/// path at every backend, policy and thread count.
pub fn cheapest_maximal_star_bucketed(
    inst: &FlInstance,
    i: FacilityId,
    fcost: f64,
    mapping: BucketMapping,
    state: &mut LazyFacilityOrder,
    remaining: &[bool],
    meter: &CostMeter,
) -> Option<Star> {
    const TILE: usize = 64;
    let oracle = inst.distances();
    let mut best_price = f64::INFINITY;
    let mut best_k = 0usize;
    let mut dist_sum = 0.0;
    let mut k = 0usize;
    let mut clients_in_order: Vec<ClientId> = Vec::new();
    let mut batch: Vec<usize> = Vec::with_capacity(TILE);
    let mut dists = [0.0f64; TILE];
    let mut cursor = 0usize;
    'outer: loop {
        // Scan the materialised prefix exactly like the presorted path.
        while cursor < state.sorted.len() {
            batch.clear();
            while cursor < state.sorted.len() && batch.len() < TILE {
                let j = state.sorted[cursor] as usize;
                cursor += 1;
                if remaining[j] {
                    batch.push(j);
                }
            }
            if batch.is_empty() {
                continue;
            }
            oracle.col_gather(i, &batch, &mut dists[..batch.len()]);
            for (&j, &d) in batch.iter().zip(dists.iter()) {
                // Same early-termination semantics as the presorted scan
                // (see `cheapest_maximal_star`): strictly greater ends the
                // whole scan.
                if d > best_price {
                    break 'outer;
                }
                dist_sum += d;
                k += 1;
                clients_in_order.push(j);
                let price = (fcost + dist_sum) / k as f64;
                if price <= best_price {
                    best_price = price;
                    best_k = k;
                }
            }
        }
        // Prefix exhausted. Geometric buckets bracket disjoint intervals,
        // so `lower_bound(next key)` under-approximates every not-yet-
        // materialised distance: above the best price, the presorted scan
        // would break on its first remaining client too.
        match state.next_bucket_key() {
            None => break,
            Some(key) => {
                if mapping.lower_bound(key) > best_price {
                    break;
                }
                state.expand_next_bucket(inst, i, meter);
            }
        }
    }
    if k == 0 {
        return None;
    }
    clients_in_order.truncate(best_k);
    Some(Star {
        facility: i,
        price: best_price,
        clients: clients_in_order,
    })
}

/// The bucket-engine variant of [`all_cheapest_stars`]: same per-round
/// primitive charge, per-facility scans in parallel over independent lazy
/// states.
pub fn all_cheapest_stars_lazy(
    inst: &FlInstance,
    fcosts: &[f64],
    orders: &mut LazyOrders,
    remaining: &[bool],
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<Option<Star>> {
    let nf = inst.num_facilities();
    meter.add_primitive((inst.num_clients() * nf) as u64);
    let mapping = orders.mapping;
    let one = |(i, state): (usize, &mut LazyFacilityOrder)| {
        cheapest_maximal_star_bucketed(inst, i, fcosts[i], mapping, state, remaining, meter)
    };
    if policy.run_parallel(inst.m()) {
        orders
            .facilities
            .par_iter_mut()
            .enumerate()
            .map(one)
            .collect()
    } else {
        orders.facilities.iter_mut().enumerate().map(one).collect()
    }
}

/// Engine-selected facility orders: the full presort or the lazy bucket
/// partition, behind one seam so the greedy round loop is engine-agnostic.
#[derive(Debug, Clone)]
pub enum StarOrders {
    /// Eager `O(m log m)` presort ([`EventEngine::Scan`]).
    Presort(FacilityOrders),
    /// Lazy bucket expansion ([`EventEngine::Bucket`]).
    Lazy(LazyOrders),
}

impl StarOrders {
    /// Builds the orders for the configured engine.
    pub fn build(
        inst: &FlInstance,
        engine: EventEngine,
        policy: ExecPolicy,
        meter: &CostMeter,
    ) -> Self {
        match engine {
            EventEngine::Scan => StarOrders::Presort(FacilityOrders::presort(inst, policy, meter)),
            EventEngine::Bucket => StarOrders::Lazy(LazyOrders::build(inst, policy, meter)),
        }
    }
}

/// Computes every facility's cheapest maximal star through whichever orders
/// representation the engine selected. Both arms return byte-identical
/// stars; only the work profile (one big sort vs lazily expanded bucket
/// sorts) differs.
pub fn all_cheapest_stars_with(
    inst: &FlInstance,
    fcosts: &[f64],
    orders: &mut StarOrders,
    remaining: &[bool],
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<Option<Star>> {
    match orders {
        StarOrders::Presort(o) => all_cheapest_stars(inst, fcosts, o, remaining, policy, meter),
        StarOrders::Lazy(o) => all_cheapest_stars_lazy(inst, fcosts, o, remaining, policy, meter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::DistanceMatrix;

    fn inst_one_facility() -> FlInstance {
        // Facility cost 3, clients at distances 1, 2, 100, 200.
        FlInstance::new(
            vec![3.0],
            DistanceMatrix::from_rows(4, 1, vec![1.0, 2.0, 100.0, 200.0]),
        )
    }

    #[test]
    fn presort_orders_clients_by_distance() {
        let inst = gen::facility_location(GenParams::uniform_square(12, 5).with_seed(3));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        assert_eq!(orders.num_facilities(), 5);
        for i in 0..5 {
            let o = orders.order(i);
            assert_eq!(o.len(), 12);
            for w in o.windows(2) {
                assert!(inst.dist(w[0] as usize, i) <= inst.dist(w[1] as usize, i));
            }
        }
        assert!(meter.report().sort_calls >= 1);
    }

    #[test]
    fn cheapest_star_known_answer() {
        let inst = inst_one_facility();
        let order = vec![0u32, 1, 2, 3];
        let remaining = vec![true; 4];
        let star = cheapest_maximal_star(&inst, 0, 3.0, &order, &remaining).unwrap();
        // Prices: k=1: 4, k=2: 3, k=3: 35.33, k=4: 76.5 → best is k=2, price 3.
        assert_eq!(star.clients, vec![0, 1]);
        assert!((star.price - 3.0).abs() < 1e-12);
    }

    #[test]
    fn removed_clients_are_skipped() {
        let inst = inst_one_facility();
        let order = vec![0u32, 1, 2, 3];
        let remaining = vec![false, true, true, false];
        let star = cheapest_maximal_star(&inst, 0, 3.0, &order, &remaining).unwrap();
        // Only clients 1 and 2 remain: k=1 → (3+2)/1 = 5; k=2 → (3+102)/2 = 52.5.
        assert_eq!(star.clients, vec![1]);
        assert!((star.price - 5.0).abs() < 1e-12);
        assert!(cheapest_maximal_star(&inst, 0, 3.0, &order, &[false; 4]).is_none());
    }

    /// Pins the defined behaviour of the early-terminated scan on sub-ulp
    /// near-ties: a distance strictly above the best price never extends
    /// the star, even where a full scan's *rounded* next price would have
    /// dipped back to exactly the best price (real arithmetic says it is
    /// strictly larger). Deterministic and backend/thread/policy-invariant
    /// either way; this test documents which semantics is canonical.
    #[test]
    fn sub_ulp_near_ties_resolve_by_real_arithmetic() {
        let eps = f64::EPSILON;
        let inst = FlInstance::new(
            vec![0.0],
            DistanceMatrix::from_rows(2, 1, vec![1.0, 1.0 + eps]),
        );
        let order = vec![0u32, 1];
        let star = cheapest_maximal_star(&inst, 0, 0.0, &order, &[true, true]).unwrap();
        // (1.0 + (1.0 + eps)) / 2 rounds to exactly 1.0, but the real value
        // exceeds 1.0 — the scan stops at the 1-client star of price 1.
        assert_eq!(star.clients, vec![0]);
        assert_eq!(star.price, 1.0);
        // An *exact* tie still extends the star (maximality).
        let tied = FlInstance::new(vec![0.0], DistanceMatrix::from_rows(2, 1, vec![1.0, 1.0]));
        let star = cheapest_maximal_star(&tied, 0, 0.0, &order, &[true, true]).unwrap();
        assert_eq!(star.clients, vec![0, 1]);
        assert_eq!(star.price, 1.0);
    }

    #[test]
    fn star_clients_are_within_price_distance() {
        // Fact 4.2(1): j is in the cheapest maximal star iff d(j,i) <= price.
        let inst = gen::facility_location(GenParams::gaussian_clusters(20, 6, 3).with_seed(5));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 20];
        let fcosts: Vec<f64> = (0..6).map(|i| inst.facility_cost(i)).collect();
        let stars = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        for star in stars.into_iter().flatten() {
            for &j in &star.clients {
                assert!(inst.dist(j, star.facility) <= star.price + 1e-9);
            }
            for j in 0..20 {
                if !star.clients.contains(&j) {
                    assert!(inst.dist(j, star.facility) >= star.price - 1e-9);
                }
            }
        }
    }

    #[test]
    fn fact_42_second_part_holds() {
        // Fact 4.2(2): if t = price(S_i) then Σ_j max(0, t − d(j,i)) = f_i.
        let inst = gen::facility_location(GenParams::uniform_square(15, 4).with_seed(8));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 15];
        for i in 0..4 {
            let star =
                cheapest_maximal_star(&inst, i, inst.facility_cost(i), orders.order(i), &remaining)
                    .unwrap();
            let lhs: f64 = (0..15)
                .map(|j| (star.price - inst.dist(j, i)).max(0.0))
                .sum();
            assert!(
                (lhs - inst.facility_cost(i)).abs() < 1e-6,
                "facility {i}: {lhs} vs {}",
                inst.facility_cost(i)
            );
        }
    }

    #[test]
    fn lazy_orders_match_presort_star_for_star() {
        // Drive both engines through a sequence of rounds with shrinking
        // remaining sets and zeroed facility costs — the exact access
        // pattern of the greedy loop — and demand identical stars (prices
        // bit-equal, client lists element-equal) at every step.
        let inst = gen::facility_location(GenParams::gaussian_clusters(60, 9, 4).with_seed(11));
        let meter = CostMeter::new();
        let presort = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let mut lazy = LazyOrders::build(&inst, ExecPolicy::Sequential, &meter);
        let mut remaining = vec![true; 60];
        let mut fcosts: Vec<f64> = (0..9).map(|i| inst.facility_cost(i)).collect();
        for round in 0..6 {
            let eager = all_cheapest_stars(
                &inst,
                &fcosts,
                &presort,
                &remaining,
                ExecPolicy::Sequential,
                &meter,
            );
            let bucketed = all_cheapest_stars_lazy(
                &inst,
                &fcosts,
                &mut lazy,
                &remaining,
                ExecPolicy::Sequential,
                &meter,
            );
            assert_eq!(eager, bucketed, "round {round}");
            // Mimic a greedy round: open the cheapest star, zero its cost,
            // remove its clients.
            let best = eager
                .iter()
                .flatten()
                .min_by(|a, b| a.price.partial_cmp(&b.price).unwrap())
                .cloned();
            let Some(star) = best else { break };
            fcosts[star.facility] = 0.0;
            for &j in &star.clients {
                remaining[j] = false;
            }
            if !remaining.iter().any(|&r| r) {
                break;
            }
        }
    }

    #[test]
    fn lazy_and_parallel_policies_agree() {
        let inst = gen::facility_location(GenParams::uniform_square(50, 30).with_seed(4));
        let meter = CostMeter::new();
        let mut seq_orders = LazyOrders::build(&inst, ExecPolicy::Sequential, &meter);
        let mut par_orders = LazyOrders::build(&inst, ExecPolicy::Parallel, &meter);
        let remaining = vec![true; 50];
        let fcosts: Vec<f64> = (0..30).map(|i| inst.facility_cost(i)).collect();
        let seq = all_cheapest_stars_lazy(
            &inst,
            &fcosts,
            &mut seq_orders,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        let par = all_cheapest_stars_lazy(
            &inst,
            &fcosts,
            &mut par_orders,
            &remaining,
            ExecPolicy::Parallel,
            &meter,
        );
        assert_eq!(seq, par);
        assert_eq!(seq_orders.expanded_clients(), par_orders.expanded_clients());
    }

    #[test]
    fn lazy_expansion_stops_early() {
        // One facility, a tight cluster of cheap clients and a far-away
        // crowd: the scan must stop at the bucket boundary without ever
        // sorting the expensive tail.
        let mut dists = vec![1.0, 1.5, 1.25, 2.0];
        dists.extend((0..60).map(|t| 1e6 + t as f64));
        let nc = dists.len();
        let inst = FlInstance::new(vec![2.0], DistanceMatrix::from_rows(nc, 1, dists));
        let meter = CostMeter::new();
        let mut lazy = LazyOrders::build(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; nc];
        let star = all_cheapest_stars_lazy(
            &inst,
            &[2.0],
            &mut lazy,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        )
        .remove(0)
        .expect("star exists");
        // Presort reference: the same star, computed eagerly.
        let presort = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let eager = cheapest_maximal_star(&inst, 0, 2.0, presort.order(0), &remaining).unwrap();
        assert_eq!(star, eager);
        assert!(
            lazy.expanded_clients() < nc,
            "the 1e6-distance tail must stay unsorted (expanded {} of {nc})",
            lazy.expanded_clients()
        );
    }

    #[test]
    fn lazy_build_records_no_sort_but_expansion_does() {
        let inst = gen::facility_location(GenParams::uniform_square(20, 4).with_seed(2));
        let build_meter = CostMeter::new();
        let mut lazy = LazyOrders::build(&inst, ExecPolicy::Sequential, &build_meter);
        assert_eq!(
            build_meter.report().sort_calls,
            0,
            "bucketing is a counting pass, not a sort"
        );
        assert!(build_meter.report().primitive_calls > 0);
        let remaining = vec![true; 20];
        let fcosts: Vec<f64> = (0..4).map(|i| inst.facility_cost(i)).collect();
        let scan_meter = CostMeter::new();
        let stars = all_cheapest_stars_lazy(
            &inst,
            &fcosts,
            &mut lazy,
            &remaining,
            ExecPolicy::Sequential,
            &scan_meter,
        );
        assert!(stars.iter().any(|s| s.is_some()));
        assert!(
            scan_meter.report().sort_calls >= 1,
            "expanded prefixes are charged as sorts"
        );
    }

    #[test]
    fn star_orders_engine_selection() {
        let inst = gen::facility_location(GenParams::uniform_square(10, 3).with_seed(1));
        let meter = CostMeter::new();
        let mut scan = StarOrders::build(&inst, EventEngine::Scan, ExecPolicy::Sequential, &meter);
        let mut bucket =
            StarOrders::build(&inst, EventEngine::Bucket, ExecPolicy::Sequential, &meter);
        assert!(matches!(scan, StarOrders::Presort(_)));
        assert!(matches!(bucket, StarOrders::Lazy(_)));
        let remaining = vec![true; 10];
        let fcosts: Vec<f64> = (0..3).map(|i| inst.facility_cost(i)).collect();
        let a = all_cheapest_stars_with(
            &inst,
            &fcosts,
            &mut scan,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        let b = all_cheapest_stars_with(
            &inst,
            &fcosts,
            &mut bucket,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_star_computation_agree() {
        let inst = gen::facility_location(GenParams::uniform_square(50, 30).with_seed(4));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 50];
        let fcosts: Vec<f64> = (0..30).map(|i| inst.facility_cost(i)).collect();
        let seq = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        let par = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Parallel,
            &meter,
        );
        assert_eq!(seq, par);
    }
}
