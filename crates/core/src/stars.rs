//! Stars and maximal-star computation (Definition 4.1, Fact 4.2).
//!
//! A *star* `S = (i, C')` is a facility together with a set of clients; its price is
//! `(f_i + Σ_{j∈C'} d(j,i)) / |C'|`. The greedy algorithms (sequential and parallel)
//! repeatedly need, for every facility, the **cheapest maximal star** over the remaining
//! clients. By Fact 4.2 this star consists of the `κ` closest remaining clients for some
//! `κ`, so after presorting each facility's client distances once, each round only needs
//! a prefix sum along the sorted order — which is exactly how Algorithm 4.1 implements
//! its step 1.

use parfaclo_matrixops::{sort, CostMeter, ExecPolicy};
use parfaclo_metric::{ClientId, DistanceOracle, FacilityId, FlInstance};
use rayon::prelude::*;

/// Pre-sorted client order for every facility: `orders[i]` lists the client indices in
/// non-decreasing distance from facility `i`.
#[derive(Debug, Clone)]
pub struct FacilityOrders {
    orders: Vec<Vec<u32>>,
}

impl FacilityOrders {
    /// Presorts every facility's clients by distance. Costs one (virtual) row sort
    /// over the transposed distance matrix (`O(m log m)` work), done once per
    /// algorithm run. Distances are pulled straight from the instance's oracle one
    /// facility column at a time, so peak memory is `O(|C|)` scratch per in-flight
    /// facility — the dense `|C| x |F|` transpose is never materialised, which is
    /// what keeps the greedy algorithm feasible on implicit-backend instances with
    /// hundreds of thousands of clients.
    pub fn presort(inst: &FlInstance, policy: ExecPolicy, meter: &CostMeter) -> Self {
        let nc = inst.num_clients();
        let nf = inst.num_facilities();
        meter.add_primitive((nc * nf) as u64);
        // Facility-major view: virtual row i holds d(j, i) for every client
        // j — one oracle column, filled whole so the blocked distance
        // kernels serve it instead of `nc` per-element oracle calls.
        let oracle = inst.distances();
        let row_orders = sort::argsort_rows_filled(nf, nc, policy, meter, |i, row| {
            oracle.col_range_into(i, 0, row);
        });
        FacilityOrders {
            orders: row_orders.into_iter().map(|ro| ro.order).collect(),
        }
    }

    /// The sorted client order of facility `i`.
    #[inline]
    pub fn order(&self, i: FacilityId) -> &[u32] {
        &self.orders[i]
    }

    /// Number of facilities covered.
    pub fn num_facilities(&self) -> usize {
        self.orders.len()
    }
}

/// A maximal cheapest star: facility, price, and the clients it contains.
#[derive(Debug, Clone, PartialEq)]
pub struct Star {
    /// The facility at the centre of the star.
    pub facility: FacilityId,
    /// The star's price `(f_i + Σ d(j,i)) / |C'|`.
    pub price: f64,
    /// The clients of the star (the `|C'|` closest remaining clients).
    pub clients: Vec<ClientId>,
}

/// Computes the cheapest maximal star of facility `i` over the clients for which
/// `remaining` is `true`, using the presorted `order` and the (possibly zeroed) facility
/// cost `fcost`. Returns `None` if no clients remain.
pub fn cheapest_maximal_star(
    inst: &FlInstance,
    i: FacilityId,
    fcost: f64,
    order: &[u32],
    remaining: &[bool],
) -> Option<Star> {
    // Remaining clients are walked in presorted order, one distance tile at
    // a time: a tile of surviving clients is gathered through the oracle's
    // blocked column kernel, then walked scalar with the early break below.
    // Wasted work on a break is bounded by one tile.
    const TILE: usize = 64;
    let oracle = inst.distances();
    let mut best_price = f64::INFINITY;
    let mut best_k = 0usize;
    let mut dist_sum = 0.0;
    let mut k = 0usize;
    let mut clients_in_order: Vec<ClientId> = Vec::new();
    let mut batch: Vec<usize> = Vec::with_capacity(TILE);
    let mut dists = [0.0f64; TILE];
    let mut cursor = 0usize;
    'scan: while cursor < order.len() {
        batch.clear();
        while cursor < order.len() && batch.len() < TILE {
            let j = order[cursor] as usize;
            cursor += 1;
            if remaining[j] {
                batch.push(j);
            }
        }
        if batch.is_empty() {
            continue;
        }
        oracle.col_gather(i, &batch, &mut dists[..batch.len()]);
        for (&j, &d) in batch.iter().zip(dists.iter()) {
            // Early termination: distances arrive in non-decreasing order, so
            // once `d > best_price` every later prefix price exceeds
            // `best_price` in real arithmetic (price_{k+1} is the k-weighted
            // average of price_k and d_{k+1}, and all later distances are >= d —
            // the unimodality behind Fact 4.2), turning the scan into
            // O(|star|) distance evaluations instead of O(|C|), on every
            // backend. Strictly greater only: a distance *equal* to the best
            // price still extends the maximal star at the same price. Defined
            // behaviour on sub-ulp edges: a full scan's rounded price can dip
            // back to == best_price even though the real price is larger; this
            // scan resolves such artificial ties by the real-arithmetic
            // semantics (the star is not extended). Identical everywhere it
            // matters: deterministic, and invariant across backends, thread
            // counts and policies, since every configuration runs this exact
            // loop on bit-identical distances.
            if d > best_price {
                break 'scan;
            }
            dist_sum += d;
            k += 1;
            clients_in_order.push(j);
            let price = (fcost + dist_sum) / k as f64;
            // Prefer smaller prices; on ties prefer the larger star (maximality) — ties are
            // handled automatically because `k` increases monotonically through the scan.
            if price <= best_price {
                best_price = price;
                best_k = k;
            }
        }
    }
    if k == 0 {
        return None;
    }
    clients_in_order.truncate(best_k);
    Some(Star {
        facility: i,
        price: best_price,
        clients: clients_in_order,
    })
}

/// Computes the cheapest maximal star of every facility in parallel. `fcosts` carries
/// the *current* facility costs (zeroed for already-open facilities, per the paper).
pub fn all_cheapest_stars(
    inst: &FlInstance,
    fcosts: &[f64],
    orders: &FacilityOrders,
    remaining: &[bool],
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<Option<Star>> {
    let nf = inst.num_facilities();
    meter.add_primitive((inst.num_clients() * nf) as u64);
    let one = |i: usize| cheapest_maximal_star(inst, i, fcosts[i], orders.order(i), remaining);
    if policy.run_parallel(inst.m()) {
        (0..nf).into_par_iter().map(one).collect()
    } else {
        (0..nf).map(one).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::DistanceMatrix;

    fn inst_one_facility() -> FlInstance {
        // Facility cost 3, clients at distances 1, 2, 100, 200.
        FlInstance::new(
            vec![3.0],
            DistanceMatrix::from_rows(4, 1, vec![1.0, 2.0, 100.0, 200.0]),
        )
    }

    #[test]
    fn presort_orders_clients_by_distance() {
        let inst = gen::facility_location(GenParams::uniform_square(12, 5).with_seed(3));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        assert_eq!(orders.num_facilities(), 5);
        for i in 0..5 {
            let o = orders.order(i);
            assert_eq!(o.len(), 12);
            for w in o.windows(2) {
                assert!(inst.dist(w[0] as usize, i) <= inst.dist(w[1] as usize, i));
            }
        }
        assert!(meter.report().sort_calls >= 1);
    }

    #[test]
    fn cheapest_star_known_answer() {
        let inst = inst_one_facility();
        let order = vec![0u32, 1, 2, 3];
        let remaining = vec![true; 4];
        let star = cheapest_maximal_star(&inst, 0, 3.0, &order, &remaining).unwrap();
        // Prices: k=1: 4, k=2: 3, k=3: 35.33, k=4: 76.5 → best is k=2, price 3.
        assert_eq!(star.clients, vec![0, 1]);
        assert!((star.price - 3.0).abs() < 1e-12);
    }

    #[test]
    fn removed_clients_are_skipped() {
        let inst = inst_one_facility();
        let order = vec![0u32, 1, 2, 3];
        let remaining = vec![false, true, true, false];
        let star = cheapest_maximal_star(&inst, 0, 3.0, &order, &remaining).unwrap();
        // Only clients 1 and 2 remain: k=1 → (3+2)/1 = 5; k=2 → (3+102)/2 = 52.5.
        assert_eq!(star.clients, vec![1]);
        assert!((star.price - 5.0).abs() < 1e-12);
        assert!(cheapest_maximal_star(&inst, 0, 3.0, &order, &[false; 4]).is_none());
    }

    /// Pins the defined behaviour of the early-terminated scan on sub-ulp
    /// near-ties: a distance strictly above the best price never extends
    /// the star, even where a full scan's *rounded* next price would have
    /// dipped back to exactly the best price (real arithmetic says it is
    /// strictly larger). Deterministic and backend/thread/policy-invariant
    /// either way; this test documents which semantics is canonical.
    #[test]
    fn sub_ulp_near_ties_resolve_by_real_arithmetic() {
        let eps = f64::EPSILON;
        let inst = FlInstance::new(
            vec![0.0],
            DistanceMatrix::from_rows(2, 1, vec![1.0, 1.0 + eps]),
        );
        let order = vec![0u32, 1];
        let star = cheapest_maximal_star(&inst, 0, 0.0, &order, &[true, true]).unwrap();
        // (1.0 + (1.0 + eps)) / 2 rounds to exactly 1.0, but the real value
        // exceeds 1.0 — the scan stops at the 1-client star of price 1.
        assert_eq!(star.clients, vec![0]);
        assert_eq!(star.price, 1.0);
        // An *exact* tie still extends the star (maximality).
        let tied = FlInstance::new(vec![0.0], DistanceMatrix::from_rows(2, 1, vec![1.0, 1.0]));
        let star = cheapest_maximal_star(&tied, 0, 0.0, &order, &[true, true]).unwrap();
        assert_eq!(star.clients, vec![0, 1]);
        assert_eq!(star.price, 1.0);
    }

    #[test]
    fn star_clients_are_within_price_distance() {
        // Fact 4.2(1): j is in the cheapest maximal star iff d(j,i) <= price.
        let inst = gen::facility_location(GenParams::gaussian_clusters(20, 6, 3).with_seed(5));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 20];
        let fcosts: Vec<f64> = (0..6).map(|i| inst.facility_cost(i)).collect();
        let stars = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        for star in stars.into_iter().flatten() {
            for &j in &star.clients {
                assert!(inst.dist(j, star.facility) <= star.price + 1e-9);
            }
            for j in 0..20 {
                if !star.clients.contains(&j) {
                    assert!(inst.dist(j, star.facility) >= star.price - 1e-9);
                }
            }
        }
    }

    #[test]
    fn fact_42_second_part_holds() {
        // Fact 4.2(2): if t = price(S_i) then Σ_j max(0, t − d(j,i)) = f_i.
        let inst = gen::facility_location(GenParams::uniform_square(15, 4).with_seed(8));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 15];
        for i in 0..4 {
            let star =
                cheapest_maximal_star(&inst, i, inst.facility_cost(i), orders.order(i), &remaining)
                    .unwrap();
            let lhs: f64 = (0..15)
                .map(|j| (star.price - inst.dist(j, i)).max(0.0))
                .sum();
            assert!(
                (lhs - inst.facility_cost(i)).abs() < 1e-6,
                "facility {i}: {lhs} vs {}",
                inst.facility_cost(i)
            );
        }
    }

    #[test]
    fn parallel_and_sequential_star_computation_agree() {
        let inst = gen::facility_location(GenParams::uniform_square(50, 30).with_seed(4));
        let meter = CostMeter::new();
        let orders = FacilityOrders::presort(&inst, ExecPolicy::Sequential, &meter);
        let remaining = vec![true; 50];
        let fcosts: Vec<f64> = (0..30).map(|i| inst.facility_cost(i)).collect();
        let seq = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Sequential,
            &meter,
        );
        let par = all_cheapest_stars(
            &inst,
            &fcosts,
            &orders,
            &remaining,
            ExecPolicy::Parallel,
            &meter,
        );
        assert_eq!(seq, par);
    }
}
