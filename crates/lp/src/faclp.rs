//! The facility-location LP relaxation (the primal program of Figure 1) and its
//! solution.
//!
//! ```text
//! minimise   Σ_{i,j} d(j,i) x_ij + Σ_i f_i y_i
//! subject to Σ_i x_ij            >= 1      for every client j
//!            y_i - x_ij          >= 0      for every facility i, client j
//!            x_ij >= 0, y_i >= 0
//! ```
//!
//! The optimal value of this relaxation lower-bounds `opt`, which makes it the
//! certification tool used throughout the experiment harness, and its optimal solution
//! `(x, y)` is the input the parallel rounding algorithm of Section 6.2 expects.

use crate::simplex::{self, Constraint, ConstraintOp, LinearProgram, SimplexOutcome};
use parfaclo_metric::FlInstance;

/// An (optimal or at least feasible) fractional solution of the facility-location LP.
#[derive(Debug, Clone)]
pub struct FlLpSolution {
    num_clients: usize,
    num_facilities: usize,
    /// `x[j * nf + i]` is the fractional assignment of client `j` to facility `i`.
    x: Vec<f64>,
    /// `y[i]` is the fractional opening of facility `i`.
    y: Vec<f64>,
    /// Objective value of `(x, y)`.
    value: f64,
    /// Number of simplex pivots taken to find it (0 if constructed by hand).
    pub pivots: usize,
}

impl FlLpSolution {
    /// Wraps an existing fractional solution (used by tests and by callers that obtain
    /// fractional solutions from elsewhere).
    ///
    /// # Panics
    /// Panics if dimensions are inconsistent.
    pub fn from_parts(inst: &FlInstance, x: Vec<f64>, y: Vec<f64>) -> Self {
        let nc = inst.num_clients();
        let nf = inst.num_facilities();
        assert_eq!(x.len(), nc * nf, "x must have nc*nf entries");
        assert_eq!(y.len(), nf, "y must have nf entries");
        let value = Self::objective_of(inst, &x, &y);
        FlLpSolution {
            num_clients: nc,
            num_facilities: nf,
            x,
            y,
            value,
            pivots: 0,
        }
    }

    fn objective_of(inst: &FlInstance, x: &[f64], y: &[f64]) -> f64 {
        let nf = inst.num_facilities();
        let conn: f64 = (0..inst.num_clients())
            .map(|j| {
                (0..nf)
                    .map(|i| inst.dist(j, i) * x[j * nf + i])
                    .sum::<f64>()
            })
            .sum();
        let open: f64 = (0..nf).map(|i| inst.facility_cost(i) * y[i]).sum();
        conn + open
    }

    /// Fractional assignment `x_ij` of client `j` to facility `i`.
    #[inline]
    pub fn x(&self, j: usize, i: usize) -> f64 {
        self.x[j * self.num_facilities + i]
    }

    /// Fractional opening `y_i`.
    #[inline]
    pub fn y(&self, i: usize) -> f64 {
        self.y[i]
    }

    /// All fractional openings.
    pub fn y_slice(&self) -> &[f64] {
        &self.y
    }

    /// Objective value of the solution — a lower bound on `opt` when the solution is
    /// optimal for the relaxation.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of clients.
    #[inline]
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of facilities.
    #[inline]
    pub fn num_facilities(&self) -> usize {
        self.num_facilities
    }

    /// The fractional connection cost `δ_j = Σ_i d(j,i) x_ij` of client `j` (the
    /// quantity the filtering step of Section 6.2 is built around).
    pub fn delta(&self, inst: &FlInstance, j: usize) -> f64 {
        (0..self.num_facilities)
            .map(|i| inst.dist(j, i) * self.x(j, i))
            .sum()
    }

    /// Checks primal feasibility up to tolerance `tol`:
    /// every client fully (fractionally) assigned, assignments covered by openings, and
    /// everything non-negative.
    pub fn check_feasible(&self, inst: &FlInstance, tol: f64) -> Result<(), String> {
        let nc = self.num_clients;
        let nf = self.num_facilities;
        assert_eq!(nc, inst.num_clients());
        assert_eq!(nf, inst.num_facilities());
        for j in 0..nc {
            let total: f64 = (0..nf).map(|i| self.x(j, i)).sum();
            if total < 1.0 - tol {
                return Err(format!("client {j} only {total} assigned"));
            }
            for i in 0..nf {
                if self.x(j, i) < -tol {
                    return Err(format!("x[{j},{i}] negative"));
                }
                if self.x(j, i) > self.y(i) + tol {
                    return Err(format!(
                        "x[{j},{i}] = {} exceeds y[{i}] = {}",
                        self.x(j, i),
                        self.y(i)
                    ));
                }
            }
        }
        for i in 0..nf {
            if self.y(i) < -tol {
                return Err(format!("y[{i}] negative"));
            }
        }
        Ok(())
    }
}

/// Errors from [`solve_facility_lp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The LP was reported infeasible (cannot happen for well-formed instances, since
    /// opening every facility fully is always feasible).
    Infeasible,
    /// The LP was reported unbounded (cannot happen: the objective is non-negative).
    Unbounded,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "facility-location LP reported infeasible"),
            LpError::Unbounded => write!(f, "facility-location LP reported unbounded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Builds the LP relaxation of Figure 1 for `inst`.
///
/// Variable layout: `x_ij` occupies index `j * nf + i` for `j` in `0..nc`, `i` in
/// `0..nf`; `y_i` occupies index `nc * nf + i`.
pub fn build_facility_lp(inst: &FlInstance) -> LinearProgram {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    let num_vars = nc * nf + nf;
    let mut lp = LinearProgram::new(num_vars);
    // Objective.
    for j in 0..nc {
        for i in 0..nf {
            lp.set_objective(j * nf + i, inst.dist(j, i));
        }
    }
    for i in 0..nf {
        lp.set_objective(nc * nf + i, inst.facility_cost(i));
    }
    // Coverage: Σ_i x_ij >= 1.
    for j in 0..nc {
        let coeffs: Vec<(usize, f64)> = (0..nf).map(|i| (j * nf + i, 1.0)).collect();
        lp.add_constraint(Constraint::new(coeffs, ConstraintOp::Ge, 1.0));
    }
    // Capacity: y_i - x_ij >= 0.
    for j in 0..nc {
        for i in 0..nf {
            lp.add_constraint(Constraint::new(
                vec![(nc * nf + i, 1.0), (j * nf + i, -1.0)],
                ConstraintOp::Ge,
                0.0,
            ));
        }
    }
    lp
}

/// Solves the facility-location LP relaxation of `inst` with the simplex solver and
/// returns the optimal fractional solution.
///
/// The work is polynomial but **not** polylogarithmic-depth — exactly the situation the
/// paper describes; the rounding algorithm in `parfaclo-core` treats the result as
/// given input.
pub fn solve_facility_lp(inst: &FlInstance) -> Result<FlLpSolution, LpError> {
    let nc = inst.num_clients();
    let nf = inst.num_facilities();
    let lp = build_facility_lp(inst);
    let sol = simplex::solve(&lp);
    match sol.outcome {
        SimplexOutcome::Infeasible => Err(LpError::Infeasible),
        SimplexOutcome::Unbounded => Err(LpError::Unbounded),
        SimplexOutcome::Optimal => {
            let x = sol.x[..nc * nf].to_vec();
            let y = sol.x[nc * nf..nc * nf + nf].to_vec();
            let mut out = FlLpSolution::from_parts(inst, x, y);
            out.pivots = sol.pivots;
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, FacilityCostModel, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;

    #[test]
    fn lp_value_lower_bounds_integral_optimum() {
        for seed in 0..4 {
            let inst = gen::facility_location(GenParams::uniform_square(6, 4).with_seed(seed));
            let lp = solve_facility_lp(&inst).expect("solve");
            lp.check_feasible(&inst, 1e-6).expect("feasible");
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                lp.value() <= opt + 1e-6,
                "seed {seed}: LP value {} exceeds integral optimum {opt}",
                lp.value()
            );
            // The LP relaxation of facility location has integrality gap < 2; sanity
            // check that the bound is not absurdly loose.
            assert!(lp.value() >= opt / 3.0);
        }
    }

    #[test]
    fn single_facility_lp_is_exact() {
        // With one facility the LP optimum equals the integral optimum: open it.
        let dist = DistanceMatrix::from_rows(3, 1, vec![1.0, 2.0, 3.0]);
        let inst = FlInstance::new(vec![5.0], dist);
        let lp = solve_facility_lp(&inst).expect("solve");
        assert!((lp.value() - 11.0).abs() < 1e-6);
        assert!((lp.y(0) - 1.0).abs() < 1e-6);
        for j in 0..3 {
            assert!((lp.x(j, 0) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_cost_facilities_give_zero_opening_cost() {
        let inst = gen::facility_location(
            GenParams::uniform_square(5, 3)
                .with_seed(9)
                .with_cost_model(FacilityCostModel::Zero),
        );
        let lp = solve_facility_lp(&inst).expect("solve");
        // With free facilities the LP just assigns each client to its nearest facility.
        let expected: f64 = (0..5)
            .map(|j| {
                (0..3)
                    .map(|i| inst.dist(j, i))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum();
        assert!((lp.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn delta_matches_definition() {
        let inst = gen::facility_location(GenParams::uniform_square(4, 3).with_seed(3));
        let lp = solve_facility_lp(&inst).expect("solve");
        for j in 0..4 {
            let direct: f64 = (0..3).map(|i| inst.dist(j, i) * lp.x(j, i)).sum();
            assert!((lp.delta(&inst, j) - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn check_feasible_rejects_bad_solutions() {
        let dist = DistanceMatrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        let inst = FlInstance::new(vec![1.0, 1.0], dist);
        // Client 1 not fully assigned.
        let bad = FlLpSolution::from_parts(&inst, vec![1.0, 0.0, 0.3, 0.0], vec![1.0, 0.0]);
        assert!(bad.check_feasible(&inst, 1e-9).is_err());
        // Assignment exceeding opening.
        let bad2 = FlLpSolution::from_parts(&inst, vec![1.0, 0.0, 1.0, 0.0], vec![0.5, 0.0]);
        assert!(bad2.check_feasible(&inst, 1e-9).is_err());
        // A genuinely feasible solution passes.
        let good = FlLpSolution::from_parts(&inst, vec![1.0, 0.0, 1.0, 0.0], vec![1.0, 0.0]);
        assert!(good.check_feasible(&inst, 1e-9).is_ok());
        assert!((good.value() - (1.0 + 2.0 + 1.0)).abs() < 1e-9);
    }

    #[test]
    fn lp_bounded_by_gamma_bounds() {
        let inst = gen::facility_location(GenParams::gaussian_clusters(6, 5, 2).with_seed(8));
        let lp = solve_facility_lp(&inst).expect("solve");
        let gb = lower_bounds::gamma_bounds(&inst);
        // γ is a lower bound on opt but NOT necessarily on the LP value; however the LP
        // value is at most the integral optimum which is at most gamma_sum.
        assert!(lp.value() <= gb.upper + 1e-6);
    }
}
