//! A dense two-phase primal simplex solver.
//!
//! The solver minimises `c · x` subject to linear constraints `a_i · x {<=, >=, =} b_i`
//! and `x >= 0`. It uses the standard tableau method with Bland's rule for both the
//! entering and the leaving variable, which guarantees termination (no cycling) at the
//! cost of speed — entirely acceptable for the instance sizes the rounding experiments
//! need (a few hundred variables and constraints).
//!
//! The implementation favours clarity over micro-optimisation: the tableau is a dense
//! row-major `Vec<f64>`, and each pivot is a rank-1 update over the full tableau,
//! parallelised over rows with rayon when the tableau is large.

use rayon::prelude::*;

/// Relational operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a · x <= b`
    Le,
    /// `a · x >= b`
    Ge,
    /// `a · x = b`
    Eq,
}

/// One linear constraint `a · x (op) b`, with `a` given sparsely as
/// `(variable index, coefficient)` pairs.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse coefficient list; indices must be `< num_vars` of the program.
    pub coeffs: Vec<(usize, f64)>,
    /// The relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Convenience constructor.
    pub fn new(coeffs: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) -> Self {
        Constraint { coeffs, op, rhs }
    }
}

/// A linear program in minimisation form over non-negative variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Number of decision variables.
    pub num_vars: usize,
    /// Objective coefficients (length `num_vars`); the solver minimises.
    pub objective: Vec<f64>,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program with `num_vars` variables and a zero objective.
    pub fn new(num_vars: usize) -> Self {
        LinearProgram {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
        }
    }

    /// Sets the objective coefficient of variable `var`.
    pub fn set_objective(&mut self, var: usize, coeff: f64) {
        assert!(var < self.num_vars, "variable index out of range");
        self.objective[var] = coeff;
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, c: Constraint) {
        for &(v, _) in &c.coeffs {
            assert!(
                v < self.num_vars,
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(c);
    }
}

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexOutcome {
    /// An optimal solution was found.
    Optimal,
    /// The constraints are inconsistent.
    Infeasible,
    /// The objective is unbounded below on the feasible region.
    Unbounded,
}

/// The result of solving a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct SimplexSolution {
    /// Whether the solve succeeded.
    pub outcome: SimplexOutcome,
    /// Optimal objective value (only meaningful when `outcome == Optimal`).
    pub value: f64,
    /// Optimal variable assignment (only meaningful when `outcome == Optimal`).
    pub x: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
}

const TOL: f64 = 1e-9;

struct Tableau {
    rows: usize, // number of constraints
    cols: usize, // total columns incl. rhs
    data: Vec<f64>,
    basis: Vec<usize>,
    /// objective row (reduced costs) with one extra entry for the objective value
    obj: Vec<f64>,
    pivots: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let cols = self.cols;
        let pivot_val = self.at(row, col);
        debug_assert!(pivot_val.abs() > TOL);
        // Normalise the pivot row.
        {
            let r = &mut self.data[row * cols..(row + 1) * cols];
            for v in r.iter_mut() {
                *v /= pivot_val;
            }
        }
        let pivot_row: Vec<f64> = self.data[row * cols..(row + 1) * cols].to_vec();
        // Eliminate the pivot column from all other rows (parallel when large).
        let eliminate = |r_idx: usize, r: &mut [f64]| {
            if r_idx == row {
                return;
            }
            let factor = r[col];
            if factor.abs() > TOL {
                for (v, &p) in r.iter_mut().zip(pivot_row.iter()) {
                    *v -= factor * p;
                }
            }
        };
        if self.rows * cols > 64 * 1024 {
            self.data
                .par_chunks_mut(cols)
                .enumerate()
                .for_each(|(r_idx, r)| eliminate(r_idx, r));
        } else {
            for (r_idx, r) in self.data.chunks_mut(cols).enumerate() {
                eliminate(r_idx, r);
            }
        }
        // Objective row.
        let factor = self.obj[col];
        if factor.abs() > TOL {
            for (v, &p) in self.obj.iter_mut().zip(pivot_row.iter()) {
                *v -= factor * p;
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Runs simplex iterations with Bland's rule until optimality or unboundedness.
    /// `active_cols` restricts the entering-variable choice (used to freeze artificial
    /// columns in phase 2).
    fn run(&mut self, active_cols: usize, max_pivots: usize) -> SimplexOutcome {
        loop {
            if self.pivots > max_pivots {
                // With Bland's rule this should never happen; treat as a defensive limit.
                panic!("simplex exceeded {max_pivots} pivots — numerical trouble");
            }
            // Bland: entering variable = smallest index with negative reduced cost.
            let entering = (0..active_cols).find(|&c| self.obj[c] < -TOL);
            let col = match entering {
                Some(c) => c,
                None => return SimplexOutcome::Optimal,
            };
            // Ratio test with Bland tie-breaking (smallest basis variable index).
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.rows {
                let a = self.at(r, col);
                if a > TOL {
                    let ratio = self.at(r, self.cols - 1) / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - TOL
                                || ((ratio - bratio).abs() <= TOL && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            match best {
                None => return SimplexOutcome::Unbounded,
                Some((row, _)) => self.pivot(row, col),
            }
        }
    }
}

/// A constraint normalised to a non-negative right-hand side:
/// `(coefficients, operator, rhs)`.
type NormalisedRow = (Vec<(usize, f64)>, ConstraintOp, f64);

/// Solves the program with the two-phase primal simplex method.
pub fn solve(lp: &LinearProgram) -> SimplexSolution {
    let n = lp.num_vars;
    let m = lp.constraints.len();

    // Normalise constraints so every right-hand side is non-negative.
    let mut rows: Vec<NormalisedRow> = Vec::with_capacity(m);
    for c in &lp.constraints {
        if c.rhs < 0.0 {
            let flipped: Vec<(usize, f64)> = c.coeffs.iter().map(|&(v, a)| (v, -a)).collect();
            let op = match c.op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
            rows.push((flipped, op, -c.rhs));
        } else {
            rows.push((c.coeffs.clone(), c.op, c.rhs));
        }
    }

    // Column layout: [original vars | slacks/surpluses | artificials | rhs].
    let num_slack = rows
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Eq)
        .count();
    let num_artificial = rows
        .iter()
        .filter(|(_, op, _)| *op != ConstraintOp::Le)
        .count();
    let cols = n + num_slack + num_artificial + 1;
    let rhs_col = cols - 1;

    let mut data = vec![0.0; m * cols];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = n + num_slack;
    let mut artificial_cols = Vec::new();

    for (r, (coeffs, op, rhs)) in rows.iter().enumerate() {
        for &(v, a) in coeffs {
            data[r * cols + v] += a;
        }
        data[r * cols + rhs_col] = *rhs;
        match op {
            ConstraintOp::Le => {
                data[r * cols + slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                data[r * cols + slack_idx] = -1.0;
                slack_idx += 1;
                data[r * cols + art_idx] = 1.0;
                basis[r] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
            ConstraintOp::Eq => {
                data[r * cols + art_idx] = 1.0;
                basis[r] = art_idx;
                artificial_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    let max_pivots = 50_000 + 200 * (m + cols);

    // Phase 1: minimise the sum of artificial variables.
    let mut tab = Tableau {
        rows: m,
        cols,
        data,
        basis,
        obj: vec![0.0; cols],
        pivots: 0,
    };
    if !artificial_cols.is_empty() {
        // Phase-1 objective: sum of artificials, expressed in terms of non-basic
        // variables by subtracting the rows whose basic variable is artificial.
        let mut obj = vec![0.0; cols];
        for &a in &artificial_cols {
            obj[a] = 1.0;
        }
        for r in 0..m {
            if artificial_cols.contains(&tab.basis[r]) {
                for (c, o) in obj.iter_mut().enumerate() {
                    *o -= tab.at(r, c);
                }
            }
        }
        tab.obj = obj;
        match tab.run(cols - 1, max_pivots) {
            SimplexOutcome::Unbounded => unreachable!("phase-1 objective is bounded below by 0"),
            SimplexOutcome::Optimal => {}
            SimplexOutcome::Infeasible => unreachable!(),
        }
        let phase1_value = -tab.obj[rhs_col];
        if phase1_value > 1e-6 {
            return SimplexSolution {
                outcome: SimplexOutcome::Infeasible,
                value: f64::NAN,
                x: vec![],
                pivots: tab.pivots,
            };
        }
        // Drive any artificial variables still in the basis out of it (degenerate rows).
        for r in 0..m {
            if artificial_cols.contains(&tab.basis[r]) {
                // Find a non-artificial column with a non-zero entry to pivot on.
                if let Some(c) = (0..n + num_slack).find(|&c| tab.at(r, c).abs() > TOL) {
                    tab.pivot(r, c);
                }
                // If none exists the row is redundant; leaving the artificial at value 0
                // in the basis is harmless as long as it can never re-enter (phase 2
                // restricts entering columns to the non-artificial ones).
            }
        }
    }

    // Phase 2: original objective expressed over the current basis.
    let mut obj = vec![0.0; cols];
    obj[..n].copy_from_slice(&lp.objective[..n]);
    for r in 0..m {
        let b = tab.basis[r];
        let cb = if b < n { lp.objective[b] } else { 0.0 };
        if cb.abs() > 0.0 {
            for (c, o) in obj.iter_mut().enumerate() {
                *o -= cb * tab.at(r, c);
            }
        }
    }
    tab.obj = obj;
    // Artificial columns are frozen in phase 2 by restricting the entering choice.
    let outcome = tab.run(n + num_slack, max_pivots);
    if outcome == SimplexOutcome::Unbounded {
        return SimplexSolution {
            outcome,
            value: f64::NEG_INFINITY,
            x: vec![],
            pivots: tab.pivots,
        };
    }

    // Extract the solution.
    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = tab.basis[r];
        if b < n {
            x[b] = tab.at(r, rhs_col);
        }
    }
    let value: f64 = lp.objective.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
    SimplexSolution {
        outcome: SimplexOutcome::Optimal,
        value,
        x,
        pivots: tab.pivots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn simple_le_maximisation_as_minimisation() {
        // maximise x + y s.t. x + 2y <= 4, 3x + y <= 6  →  minimise -(x + y).
        // Optimum at intersection x = 8/5, y = 6/5, value 14/5.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 2.0)],
            ConstraintOp::Le,
            4.0,
        ));
        lp.add_constraint(Constraint::new(
            vec![(0, 3.0), (1, 1.0)],
            ConstraintOp::Le,
            6.0,
        ));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, -14.0 / 5.0);
        assert_close(sol.x[0], 8.0 / 5.0);
        assert_close(sol.x[1], 6.0 / 5.0);
    }

    #[test]
    fn ge_constraints_need_phase_one() {
        // minimise 2x + 3y s.t. x + y >= 4, x >= 1. Optimum x = 4, y = 0, value 8.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 2.0);
        lp.set_objective(1, 3.0);
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Ge,
            4.0,
        ));
        lp.add_constraint(Constraint::new(vec![(0, 1.0)], ConstraintOp::Ge, 1.0));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, 8.0);
        assert_close(sol.x[0], 4.0);
        assert_close(sol.x[1], 0.0);
    }

    #[test]
    fn equality_constraints() {
        // minimise x + y s.t. x + y = 3, x - y = 1 → x = 2, y = 1, value 3.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 1.0);
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Eq,
            3.0,
        ));
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, -1.0)],
            ConstraintOp::Eq,
            1.0,
        ));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, 3.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 1.0);
    }

    #[test]
    fn infeasible_program_detected() {
        // x >= 5 and x <= 2 simultaneously.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(Constraint::new(vec![(0, 1.0)], ConstraintOp::Ge, 5.0));
        lp.add_constraint(Constraint::new(vec![(0, 1.0)], ConstraintOp::Le, 2.0));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Infeasible);
    }

    #[test]
    fn unbounded_program_detected() {
        // minimise -x s.t. x >= 1 (x can grow without bound).
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, -1.0);
        lp.add_constraint(Constraint::new(vec![(0, 1.0)], ConstraintOp::Ge, 1.0));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_is_normalised() {
        // -x <= -2  ⇔  x >= 2; minimise x → 2.
        let mut lp = LinearProgram::new(1);
        lp.set_objective(0, 1.0);
        lp.add_constraint(Constraint::new(vec![(0, -1.0)], ConstraintOp::Le, -2.0));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, 2.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, -1.0);
        lp.set_objective(1, -1.0);
        lp.add_constraint(Constraint::new(vec![(0, 1.0)], ConstraintOp::Le, 1.0));
        lp.add_constraint(Constraint::new(vec![(1, 1.0)], ConstraintOp::Le, 1.0));
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Le,
            2.0,
        ));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, -2.0);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // x + y = 2 stated twice.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(0, 1.0);
        lp.set_objective(1, 2.0);
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Eq,
            2.0,
        ));
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Eq,
            2.0,
        ));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert_close(sol.value, 2.0);
        assert_close(sol.x[0], 2.0);
    }

    #[test]
    fn zero_objective_returns_any_feasible_point() {
        let mut lp = LinearProgram::new(2);
        lp.add_constraint(Constraint::new(
            vec![(0, 1.0), (1, 1.0)],
            ConstraintOp::Ge,
            1.0,
        ));
        let sol = solve(&lp);
        assert_eq!(sol.outcome, SimplexOutcome::Optimal);
        assert!(sol.x[0] + sol.x[1] >= 1.0 - 1e-9);
        assert_close(sol.value, 0.0);
    }
}
