//! The dual of the facility-location LP (the right-hand program of Figure 1) and the
//! dual-fitting machinery the paper's analyses rely on.
//!
//! ```text
//! maximise   Σ_j α_j
//! subject to Σ_j β_ij          <= f_i     for every facility i
//!            α_j − β_ij        <= d(j,i)  for every facility i, client j
//!            α_j >= 0, β_ij >= 0
//! ```
//!
//! By weak LP duality the value `Σ_j α_j` of **any** feasible dual solution is a lower
//! bound on the optimal fractional (hence also integral) cost. Both parallel
//! facility-location algorithms produce α vectors:
//!
//! * the primal-dual algorithm of Section 5 produces a dual-feasible α directly
//!   (Claim 5.1), and
//! * the greedy algorithm of Section 4 produces α values that become feasible after
//!   scaling down by γ = 1.861 (Lemma 4.6) or by 3 (Lemma 4.7).
//!
//! The experiment harness uses these α vectors (and the LP value) to certify measured
//! approximation ratios.

use parfaclo_metric::{DistanceOracle, FlInstance};

/// Canonical β choice for a given α: `β_ij = max(0, α_j − d(j,i))`.
///
/// This choice satisfies the `α_j − β_ij <= d(j,i)` constraints by construction and is
/// the one the paper always uses, so dual feasibility of `(α, β)` reduces to the
/// per-facility constraint checked by [`check_alpha_feasible`].
pub fn canonical_beta(inst: &FlInstance, alpha: &[f64], i: usize, j: usize) -> f64 {
    (alpha[j] - inst.dist(j, i)).max(0.0)
}

/// The dual objective `Σ_j α_j`.
pub fn dual_value(alpha: &[f64]) -> f64 {
    alpha.iter().sum()
}

/// Checks that α (with the canonical β) is dual feasible up to tolerance `tol`:
/// non-negative and, for every facility `i`, `Σ_j max(0, α_j − d(j,i)) <= f_i`.
///
/// Returns the first violated facility and the violation amount on failure.
pub fn check_alpha_feasible(
    inst: &FlInstance,
    alpha: &[f64],
    tol: f64,
) -> Result<(), (usize, f64)> {
    assert_eq!(alpha.len(), inst.num_clients(), "alpha length mismatch");
    for (j, &a) in alpha.iter().enumerate() {
        if a < -tol {
            return Err((j, a));
        }
    }
    // Only clients with d(j, i) < α_j contribute to facility i's constraint
    // (everything else adds an exact 0.0, which leaves an IEEE sum of
    // non-negative terms unchanged). On an index-capable oracle the
    // candidate clients come from one range query of radius max_j α_j per
    // facility — summed in the same ascending-j order as the full scan, so
    // the result is bit-identical while skipping the O(|C|·|F|) sweep that
    // dominates the feasibility binary search at 1M+ clients. One outlier
    // α_j (a client far from every facility) can make that radius cover
    // almost everything, though, and a range query returning ~|C| ids costs
    // more than the sweep it replaces — so the first dense result flips the
    // remaining facilities back to the scan. The planner choice never
    // changes the sums, only who computes them.
    let alpha_max = alpha.iter().fold(0.0_f64, |m, &a| m.max(a));
    let nc = inst.num_clients();
    let mut use_index = inst.distances().has_sublinear_queries();
    for i in 0..inst.num_facilities() {
        let contribution: f64 = if use_index {
            let candidates = inst.distances().rows_within(i, alpha_max);
            if candidates.len() * 2 > nc {
                use_index = false;
            }
            candidates
                .into_iter()
                .map(|j| canonical_beta(inst, alpha, i, j))
                .sum()
        } else {
            (0..nc).map(|j| canonical_beta(inst, alpha, i, j)).sum()
        };
        let excess = contribution - inst.facility_cost(i);
        if excess > tol * (1.0 + inst.facility_cost(i).abs()) {
            return Err((i, excess));
        }
    }
    Ok(())
}

/// Largest uniform scaling factor `s <= 1` such that `s·α` is dual feasible, found by
/// checking the per-facility constraints exactly (binary search on the piecewise-linear
/// constraint functions is unnecessary at the sizes we use — we simply evaluate the
/// worst facility ratio).
///
/// Useful to turn an *infeasible* α (e.g. the raw greedy α before the Lemma 4.6 scaling)
/// into a valid lower bound `s · Σ_j α_j`.
pub fn max_feasible_scaling(inst: &FlInstance, alpha: &[f64], granularity: usize) -> f64 {
    assert!(granularity >= 2);
    if check_alpha_feasible(inst, alpha, 1e-9).is_ok() {
        return 1.0;
    }
    // The constraint functions are increasing in s, so binary search works.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    for _ in 0..granularity {
        let mid = 0.5 * (lo + hi);
        let scaled: Vec<f64> = alpha.iter().map(|a| a * mid).collect();
        if check_alpha_feasible(inst, &scaled, 1e-9).is_ok() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds;
    use parfaclo_metric::DistanceMatrix;

    #[test]
    fn zero_alpha_is_always_feasible() {
        let inst = gen::facility_location(GenParams::uniform_square(6, 4).with_seed(1));
        let alpha = vec![0.0; 6];
        assert!(check_alpha_feasible(&inst, &alpha, 1e-9).is_ok());
        assert_eq!(dual_value(&alpha), 0.0);
    }

    #[test]
    fn feasible_alpha_lower_bounds_opt() {
        // α_j = γ_j / 2 need not be feasible in general, so use max_feasible_scaling to
        // produce a certified bound and compare against the brute-force optimum.
        for seed in 0..5 {
            let inst = gen::facility_location(GenParams::uniform_square(7, 4).with_seed(seed));
            let alpha: Vec<f64> = inst.gamma_per_client();
            let s = max_feasible_scaling(&inst, &alpha, 40);
            let scaled: Vec<f64> = alpha.iter().map(|a| a * s).collect();
            assert!(check_alpha_feasible(&inst, &scaled, 1e-7).is_ok());
            let (_, opt) = lower_bounds::brute_force_facility_location(&inst);
            assert!(
                dual_value(&scaled) <= opt + 1e-6,
                "seed {seed}: dual value {} exceeds optimum {opt}",
                dual_value(&scaled)
            );
        }
    }

    #[test]
    fn infeasible_alpha_is_rejected() {
        // One facility with cost 1, one client at distance 0. α = 2 over-pays.
        let inst = FlInstance::new(vec![1.0], DistanceMatrix::from_rows(1, 1, vec![0.0]));
        assert!(check_alpha_feasible(&inst, &[2.0], 1e-9).is_err());
        assert!(check_alpha_feasible(&inst, &[1.0], 1e-9).is_ok());
        assert!(check_alpha_feasible(&inst, &[-0.5], 1e-9).is_err());
    }

    #[test]
    fn canonical_beta_matches_definition() {
        let inst = FlInstance::new(
            vec![1.0, 2.0],
            DistanceMatrix::from_rows(1, 2, vec![3.0, 5.0]),
        );
        let alpha = vec![4.0];
        assert_eq!(canonical_beta(&inst, &alpha, 0, 0), 1.0);
        assert_eq!(canonical_beta(&inst, &alpha, 1, 0), 0.0);
    }

    #[test]
    fn scaling_of_feasible_alpha_is_one() {
        let inst = gen::facility_location(GenParams::uniform_square(5, 3).with_seed(2));
        let alpha = vec![0.0; 5];
        assert_eq!(max_feasible_scaling(&inst, &alpha, 20), 1.0);
    }

    #[test]
    fn weak_duality_against_lp() {
        use crate::faclp::solve_facility_lp;
        for seed in 0..3 {
            let inst =
                gen::facility_location(GenParams::gaussian_clusters(6, 4, 2).with_seed(seed));
            let lp = solve_facility_lp(&inst).expect("lp");
            // Any feasible dual value is at most the LP optimum.
            let alpha: Vec<f64> = inst.gamma_per_client();
            let s = max_feasible_scaling(&inst, &alpha, 40);
            let scaled: Vec<f64> = alpha.iter().map(|a| a * s).collect();
            assert!(
                dual_value(&scaled) <= lp.value() + 1e-6,
                "seed {seed}: dual {} > primal {}",
                dual_value(&scaled),
                lp.value()
            );
        }
    }
}
