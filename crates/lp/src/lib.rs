//! # parfaclo-lp
//!
//! Linear-programming substrate for the `parfaclo` workspace.
//!
//! Section 6.2 of *Blelloch & Tangwongsan (SPAA 2010)* parallelises the
//! randomized-rounding algorithm of Shmoys, Tardos and Aardal, which takes **an optimal
//! solution of the facility-location LP relaxation as input** — the paper explicitly
//! does not solve the LP ("we do not know how to solve the linear program for facility
//! location in polylogarithmic depth"). A reproduction therefore needs an LP solver as a
//! substrate; none being available offline, this crate implements one from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's anti-cycling
//!   rule, adequate for the small/medium instances the rounding experiments use;
//! * [`faclp`] — construction of the facility-location LP relaxation (Figure 1 of the
//!   paper), solving it, and validating primal feasibility/optimality;
//! * [`dual`] — the dual program of Figure 1: feasibility checks and objective value for
//!   `(α, β)` assignments. The greedy (Section 4) and primal-dual (Section 5) analyses
//!   both certify their solutions against dual-feasible vectors, and the experiment
//!   harness uses [`dual::dual_value`] and [`faclp::FlLpSolution::value`] as lower
//!   bounds on `opt` when reporting approximation ratios.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dual;
pub mod faclp;
pub mod simplex;

pub use faclp::{solve_facility_lp, FlLpSolution};
pub use simplex::{Constraint, ConstraintOp, LinearProgram, SimplexOutcome, SimplexSolution};
