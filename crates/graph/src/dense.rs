//! Dense graph representations.
//!
//! The graphs in the paper are all derived from the dense distance matrix by
//! thresholding (`H_α` in Section 6.1, the bipartite graph `H` in Algorithms 4.1 and
//! 5.1), so a dense boolean adjacency matrix is the natural representation — it makes
//! each Luby propagation step a pair of row/column reductions over an `n × n` (or
//! `|U| × |V|`) matrix, exactly the cost model the paper charges. The edge count is
//! cached at construction so the frontier engine's density heuristic can read it in
//! `O(1)`.

use rayon::prelude::*;

/// Counts set bits in parallel, row-chunked so the result (a plain sum of
/// per-chunk counts) is schedule-independent.
fn count_true(bits: &[bool], chunk: usize) -> usize {
    if bits.is_empty() {
        return 0;
    }
    let counts: Vec<usize> = bits
        .par_chunks(chunk.max(1))
        .map(|c| c.iter().filter(|&&b| b).count())
        .collect();
    counts.into_iter().sum()
}

/// A simple undirected graph on `n` nodes stored as a dense boolean adjacency matrix.
///
/// Self-loops are not represented (the diagonal is always `false`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseGraph {
    n: usize,
    adj: Vec<bool>,
    edges: usize,
}

impl DenseGraph {
    /// Creates an empty (edge-less) graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        DenseGraph {
            n,
            adj: vec![false; n * n],
            edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = DenseGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Builds the threshold graph `H_α` over `n` nodes from a symmetric distance matrix
    /// given as a row-major slice: nodes `a ≠ b` are adjacent iff `dist[a*n+b] <= alpha`.
    pub fn from_distance_threshold(dist: &[f64], n: usize, alpha: f64) -> Self {
        assert_eq!(dist.len(), n * n, "distance matrix shape mismatch");
        Self::from_threshold_fn(n, alpha, |a, b| dist[a * n + b])
    }

    /// Builds the threshold graph `H_α` from a distance *function* evaluated on demand
    /// (in parallel): nodes `a ≠ b` are adjacent iff `dist(a, b) <= alpha`. This is the
    /// oracle-friendly constructor — it works identically against a dense matrix or an
    /// implicit geometric backend without requiring a materialised `n x n` slice.
    pub fn from_threshold_fn<F>(n: usize, alpha: f64, dist: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let adj: Vec<bool> = (0..n * n)
            .into_par_iter()
            .with_min_len(4096)
            .map(|idx| {
                let (a, b) = (idx / n, idx % n);
                a != b && dist(a, b) <= alpha
            })
            .collect();
        let edges = count_true(&adj, n) / 2;
        DenseGraph { n, adj, edges }
    }

    /// Builds the threshold graph `H_α` directly from a square
    /// [`DistanceOracle`]: bit-identical to
    /// [`DenseGraph::from_threshold_fn`] over `oracle.dist`, but the spatial
    /// backend serves each node's neighbourhood with one index range query
    /// instead of an O(n) distance sweep — turning the O(n²) distance
    /// evaluations of every k-center probe into O(n · query).
    ///
    /// [`DistanceOracle`]: parfaclo_metric::DistanceOracle
    ///
    /// # Panics
    /// Panics if the oracle is not square.
    pub fn from_threshold_oracle(oracle: &parfaclo_metric::Oracle, alpha: f64) -> Self {
        use parfaclo_metric::DistanceOracle;
        let n = oracle.rows();
        assert_eq!(n, oracle.cols(), "threshold graphs need a square oracle");
        if !oracle.has_sublinear_queries() {
            return Self::from_threshold_rows(oracle, n, alpha);
        }
        // Density probe: on near-complete thresholds (the upper half of
        // every k-center binary search) a range query returns ~n ids per
        // node and pays an extra sort on top of the same n distance
        // evaluations — strictly worse than the flat scan. One probe row
        // decides for the whole graph; the choice never changes the bits,
        // only who computes them.
        if n > 0 && oracle.cols_within(0, alpha).len() * 2 > n {
            return Self::from_threshold_rows(oracle, n, alpha);
        }
        // One range query per node (ascending neighbour ids, inclusive <=),
        // written straight into that node's adjacency row in parallel — no
        // intermediate neighbour-list vectors, whose total size approaches
        // 8·n² bytes on near-complete thresholds.
        let mut adj = vec![false; n * n];
        adj.par_chunks_mut(n).enumerate().for_each(|(a, row)| {
            for b in oracle.cols_within(a, alpha) {
                if a != b {
                    row[b] = true;
                }
            }
        });
        let edges = count_true(&adj, n) / 2;
        DenseGraph { n, adj, edges }
    }

    /// Flat-scan oracle build: fills each node's distance row through the
    /// oracle's batch entry point (the blocked SoA kernels on geometric
    /// backends, a row copy on a materialised matrix) and thresholds it.
    /// Bit-identical to `from_threshold_fn` over `oracle.dist` — the batch
    /// path returns bitwise-equal distances and the predicate is unchanged.
    fn from_threshold_rows(oracle: &parfaclo_metric::Oracle, n: usize, alpha: f64) -> Self {
        use parfaclo_metric::DistanceOracle;
        let mut adj = vec![false; n * n];
        adj.par_chunks_mut(n.max(1))
            .enumerate()
            .for_each(|(a, row)| {
                let mut dists = vec![0.0f64; n];
                oracle.row_range_into(a, 0, &mut dists);
                for (b, (slot, &d)) in row.iter_mut().zip(dists.iter()).enumerate() {
                    *slot = a != b && d <= alpha;
                }
            });
        let edges = count_true(&adj, n) / 2;
        DenseGraph { n, adj, edges }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        assert_ne!(a, b, "self-loops are not allowed");
        if !self.adj[a * self.n + b] {
            self.edges += 1;
        }
        self.adj[a * self.n + b] = true;
        self.adj[b * self.n + a] = true;
    }

    /// Whether `a` and `b` are adjacent.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a * self.n + b]
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().filter(|&&b| b).count()
    }

    /// The neighbours of `v` as a vector of node indices.
    pub fn neighbors(&self, v: usize) -> Vec<usize> {
        self.row(v)
            .iter()
            .enumerate()
            .filter_map(|(u, &b)| if b { Some(u) } else { None })
            .collect()
    }

    /// Number of undirected edges (`O(1)` — cached at construction).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The adjacency row of `v` as a boolean slice.
    #[inline]
    pub fn row(&self, v: usize) -> &[bool] {
        &self.adj[v * self.n..(v + 1) * self.n]
    }

    /// Whether two nodes are adjacent in `G²`, i.e. adjacent in `G` or sharing a common
    /// neighbour. Quadratic per query; used by tests and verification only.
    pub fn adjacent_in_square(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        if self.has_edge(a, b) {
            return true;
        }
        (0..self.n).any(|z| self.has_edge(a, z) && self.has_edge(z, b))
    }
}

/// A bipartite graph `H = (U, V, E)` stored as a dense `|U| × |V|` boolean matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    nu: usize,
    nv: usize,
    adj: Vec<bool>,
    edges: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with `nu` U-side and `nv` V-side nodes.
    pub fn new(nu: usize, nv: usize) -> Self {
        BipartiteGraph {
            nu,
            nv,
            adj: vec![false; nu * nv],
            edges: 0,
        }
    }

    /// Builds a bipartite graph from an edge list of `(u, v)` pairs.
    pub fn from_edges(nu: usize, nv: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = BipartiteGraph::new(nu, nv);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds a bipartite graph from a predicate evaluated on every `(u, v)` pair (in
    /// parallel). This is how the facility-location algorithms construct their client /
    /// facility graphs from the distance matrix and a threshold.
    pub fn from_predicate<F>(nu: usize, nv: usize, pred: F) -> Self
    where
        F: Fn(usize, usize) -> bool + Sync,
    {
        let adj: Vec<bool> = (0..nu * nv)
            .into_par_iter()
            .with_min_len(4096)
            .map(|idx| pred(idx / nv, idx % nv))
            .collect();
        let edges = count_true(&adj, nv.max(1));
        BipartiteGraph { nu, nv, adj, edges }
    }

    /// Number of U-side nodes.
    #[inline]
    pub fn nu(&self) -> usize {
        self.nu
    }

    /// Number of V-side nodes.
    #[inline]
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// Adds the edge `(u, v)`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.nu && v < self.nv, "edge endpoint out of range");
        if !self.adj[u * self.nv + v] {
            self.edges += 1;
        }
        self.adj[u * self.nv + v] = true;
    }

    /// Whether `(u, v)` is an edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u * self.nv + v]
    }

    /// Degree of U-side node `u`.
    pub fn degree_u(&self, u: usize) -> usize {
        self.row_u(u).iter().filter(|&&b| b).count()
    }

    /// Degree of V-side node `v`.
    pub fn degree_v(&self, v: usize) -> usize {
        (0..self.nu).filter(|&u| self.has_edge(u, v)).count()
    }

    /// The V-side neighbours of U-node `u`.
    pub fn neighbors_u(&self, u: usize) -> Vec<usize> {
        self.row_u(u)
            .iter()
            .enumerate()
            .filter_map(|(v, &b)| if b { Some(v) } else { None })
            .collect()
    }

    /// The U-side neighbours of V-node `v`.
    pub fn neighbors_v(&self, v: usize) -> Vec<usize> {
        (0..self.nu).filter(|&u| self.has_edge(u, v)).collect()
    }

    /// Number of edges (`O(1)` — cached at construction).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// The adjacency row of U-node `u` (length `nv`).
    #[inline]
    pub fn row_u(&self, u: usize) -> &[bool] {
        &self.adj[u * self.nv..(u + 1) * self.nv]
    }

    /// Whether two U-side nodes share at least one V-side neighbour (adjacency in the
    /// implicit graph `H'`). Used by tests and verification only.
    pub fn share_v_neighbor(&self, u1: usize, u2: usize) -> bool {
        if u1 == u2 {
            return false;
        }
        self.row_u(u1)
            .iter()
            .zip(self.row_u(u2).iter())
            .any(|(&a, &b)| a && b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_graph_basic_ops() {
        let mut g = DenseGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.n(), 4);
    }

    #[test]
    fn square_adjacency() {
        // Path 0-1-2-3: in G², 0~2 (via 1), 1~3 (via 2), but 0 !~ 3.
        let g = DenseGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.adjacent_in_square(0, 1));
        assert!(g.adjacent_in_square(0, 2));
        assert!(!g.adjacent_in_square(0, 3));
        assert!(g.adjacent_in_square(1, 3));
        assert!(!g.adjacent_in_square(2, 2));
    }

    #[test]
    fn threshold_graph_construction() {
        // 3 nodes on a line at 0, 1, 3.
        let dist = vec![0.0, 1.0, 3.0, 1.0, 0.0, 2.0, 3.0, 2.0, 0.0];
        let g = DenseGraph::from_distance_threshold(&dist, 3, 1.5);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(0, 0), "no self loops from zero diagonal");
        assert_eq!(g.num_edges(), 1, "cached count matches the bits");
        let g2 = DenseGraph::from_distance_threshold(&dist, 3, 2.0);
        assert!(g2.has_edge(1, 2));
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn edge_count_ignores_duplicate_adds() {
        let mut g = DenseGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 1);
        let mut h = BipartiteGraph::new(2, 2);
        h.add_edge(0, 1);
        h.add_edge(0, 1);
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        let mut g = DenseGraph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn bipartite_basic_ops() {
        let mut h = BipartiteGraph::new(2, 3);
        h.add_edge(0, 0);
        h.add_edge(0, 2);
        h.add_edge(1, 2);
        assert!(h.has_edge(0, 2));
        assert!(!h.has_edge(1, 0));
        assert_eq!(h.degree_u(0), 2);
        assert_eq!(h.degree_v(2), 2);
        assert_eq!(h.neighbors_u(0), vec![0, 2]);
        assert_eq!(h.neighbors_v(2), vec![0, 1]);
        assert_eq!(h.num_edges(), 3);
        assert!(h.share_v_neighbor(0, 1));
        assert!(!h.share_v_neighbor(0, 0));
    }

    #[test]
    fn bipartite_from_predicate() {
        let h = BipartiteGraph::from_predicate(3, 4, |u, v| (u + v) % 2 == 0);
        for u in 0..3 {
            for v in 0..4 {
                assert_eq!(h.has_edge(u, v), (u + v) % 2 == 0);
            }
        }
        assert_eq!(h.num_edges(), 6);
    }

    #[test]
    fn bipartite_share_neighbor_requires_common_v() {
        let h = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 1), (2, 0)]);
        assert!(h.share_v_neighbor(0, 2));
        assert!(!h.share_v_neighbor(0, 1));
        assert!(!h.share_v_neighbor(1, 2));
    }
}
