//! The threshold-graph facade: one type, two representations.
//!
//! Every round-based solver in the workspace runs on the threshold graph
//! `H_α` of a metric instance. [`ThresholdGraph`] lets callers pick the
//! representation per run — the dense bit matrix (`O(n²)` bytes, the paper's
//! native cost model, refused beyond 4 GiB) or the CSR sparse form
//! (`O(n + m)` bytes, the only way to reach million-node sparse metrics) —
//! while the [`Neighbors`] impl guarantees identical adjacency, and therefore
//! byte-identical solver output, from either.

use crate::engine::Neighbors;
use crate::{CsrGraph, DenseGraph};

/// Dense threshold graphs allocate `n²` adjacency bytes; beyond this cap the
/// build is refused with a pointer at the CSR backend (mirroring the dense
/// distance-matrix refusal in the runner).
pub const DENSE_GRAPH_BYTES_CAP: u64 = 4 << 30;

/// Which representation a threshold graph is built in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GraphBackend {
    /// Dense `n × n` boolean adjacency matrix.
    #[default]
    Dense,
    /// Compressed sparse row: offsets plus sorted neighbour ids.
    Csr,
}

impl GraphBackend {
    /// The canonical lowercase name (`"dense"` / `"csr"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            GraphBackend::Dense => "dense",
            GraphBackend::Csr => "csr",
        }
    }
}

impl std::fmt::Display for GraphBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for GraphBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(GraphBackend::Dense),
            "csr" => Ok(GraphBackend::Csr),
            other => Err(format!(
                "unknown graph backend '{other}' (expected 'dense' or 'csr')"
            )),
        }
    }
}

/// A threshold graph `H_α` in either dense or CSR representation.
///
/// Both variants expose the same adjacency through [`Neighbors`], so a solver
/// written against the frontier engine produces byte-identical output on
/// either — the choice only moves the memory/build-cost trade-off.
#[derive(Debug, Clone)]
pub enum ThresholdGraph {
    /// Dense bit-matrix form (small `n`, conformance baseline).
    Dense(DenseGraph),
    /// CSR form (large sparse metrics).
    Csr(CsrGraph),
}

impl ThresholdGraph {
    /// Builds `H_α` from a square distance oracle in the requested backend.
    ///
    /// The dense backend refuses instances whose `n²` adjacency bytes exceed
    /// [`DENSE_GRAPH_BYTES_CAP`], pointing the caller at `--graph csr`
    /// instead of letting the allocator take the machine down.
    pub fn build(
        oracle: &parfaclo_metric::Oracle,
        alpha: f64,
        backend: GraphBackend,
    ) -> Result<Self, String> {
        use parfaclo_metric::DistanceOracle;
        let n = oracle.rows();
        match backend {
            GraphBackend::Dense => {
                let bytes = (n as u64) * (n as u64);
                if bytes > DENSE_GRAPH_BYTES_CAP {
                    return Err(format!(
                        "the dense graph backend would materialise a {:.1} GiB \
                         adjacency matrix for n = {}; use --graph csr, which stores \
                         only the edges actually present",
                        bytes as f64 / (1u64 << 30) as f64,
                        n
                    ));
                }
                Ok(ThresholdGraph::Dense(DenseGraph::from_threshold_oracle(
                    oracle, alpha,
                )))
            }
            GraphBackend::Csr => Ok(ThresholdGraph::Csr(CsrGraph::from_threshold_oracle(
                oracle, alpha,
            ))),
        }
    }

    /// Which backend this graph was built in.
    pub fn backend(&self) -> GraphBackend {
        match self {
            ThresholdGraph::Dense(_) => GraphBackend::Dense,
            ThresholdGraph::Csr(_) => GraphBackend::Csr,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        match self {
            ThresholdGraph::Dense(g) => g.n(),
            ThresholdGraph::Csr(g) => g.n(),
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        match self {
            ThresholdGraph::Dense(g) => g.num_edges(),
            ThresholdGraph::Csr(g) => g.num_edges(),
        }
    }

    /// Whether `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        match self {
            ThresholdGraph::Dense(g) => g.has_edge(a, b),
            ThresholdGraph::Csr(g) => g.has_edge(a, b),
        }
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: usize) -> usize {
        match self {
            ThresholdGraph::Dense(g) => g.degree(v),
            ThresholdGraph::Csr(g) => g.degree(v),
        }
    }

    /// Bytes of adjacency storage this representation holds.
    pub fn memory_bytes(&self) -> u64 {
        match self {
            ThresholdGraph::Dense(g) => (g.n() as u64) * (g.n() as u64),
            ThresholdGraph::Csr(g) => g.memory_bytes(),
        }
    }
}

impl Neighbors for ThresholdGraph {
    fn n(&self) -> usize {
        ThresholdGraph::n(self)
    }
    fn num_edges(&self) -> usize {
        ThresholdGraph::num_edges(self)
    }
    fn degree(&self, v: usize) -> usize {
        ThresholdGraph::degree(self, v)
    }
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        match self {
            ThresholdGraph::Dense(g) => Neighbors::for_each_neighbor(g, v, f),
            ThresholdGraph::Csr(g) => Neighbors::for_each_neighbor(g, v, f),
        }
    }
    fn any_neighbor(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        match self {
            ThresholdGraph::Dense(g) => Neighbors::any_neighbor(g, v, pred),
            ThresholdGraph::Csr(g) => Neighbors::any_neighbor(g, v, pred),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::{DistanceMatrix, Oracle};

    fn line_oracle(n: usize) -> Oracle {
        let mut dist = vec![0.0; n * n];
        for a in 0..n {
            for b in 0..n {
                dist[a * n + b] = (a as f64 - b as f64).abs();
            }
        }
        Oracle::Dense(DistanceMatrix::from_rows(n, n, dist))
    }

    #[test]
    fn backend_parsing_round_trips() {
        assert_eq!(
            "dense".parse::<GraphBackend>().unwrap(),
            GraphBackend::Dense
        );
        assert_eq!("csr".parse::<GraphBackend>().unwrap(), GraphBackend::Csr);
        assert_eq!(GraphBackend::Csr.to_string(), "csr");
        assert_eq!(GraphBackend::default(), GraphBackend::Dense);
        let err = "coo".parse::<GraphBackend>().unwrap_err();
        assert!(err.contains("coo") && err.contains("csr"), "{err}");
    }

    #[test]
    fn dense_and_csr_expose_identical_adjacency() {
        let o = line_oracle(12);
        for alpha in [0.5, 1.0, 2.5, 20.0] {
            let d = ThresholdGraph::build(&o, alpha, GraphBackend::Dense).unwrap();
            let c = ThresholdGraph::build(&o, alpha, GraphBackend::Csr).unwrap();
            assert_eq!(d.num_edges(), c.num_edges(), "alpha {alpha}");
            for a in 0..12 {
                assert_eq!(d.degree(a), c.degree(a));
                for b in 0..12 {
                    assert_eq!(
                        d.has_edge(a, b),
                        c.has_edge(a, b),
                        "alpha {alpha} ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn csr_memory_is_sublinear_in_n_squared() {
        let o = line_oracle(64);
        let c = ThresholdGraph::build(&o, 1.0, GraphBackend::Csr).unwrap();
        assert!(c.memory_bytes() < 64 * 64, "path graph: O(n) not O(n²)");
        let d = ThresholdGraph::build(&o, 1.0, GraphBackend::Dense).unwrap();
        assert_eq!(d.memory_bytes(), 64 * 64);
    }

    #[test]
    fn oversized_dense_build_is_refused_with_csr_pointer() {
        use parfaclo_metric::point::DistanceKind;
        use parfaclo_metric::{ImplicitMetric, Point};
        // Implicit oracle: no n² allocation anywhere until the dense graph
        // itself would materialise — exactly what the cap must prevent.
        let n = 100_000; // n² = 10 GiB of adjacency bytes > 4 GiB cap
        let points: Vec<Point> = (0..n).map(|i| Point::xy(i as f64, 0.0)).collect();
        let o = Oracle::Implicit(ImplicitMetric::symmetric(points, DistanceKind::Euclidean));
        let err = ThresholdGraph::build(&o, 0.001, GraphBackend::Dense).unwrap_err();
        assert!(err.contains("--graph csr"), "{err}");
        assert!(err.contains("GiB"), "{err}");
    }
}
