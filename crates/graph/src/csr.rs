//! Compressed sparse row (CSR) adjacency — the scale representation.
//!
//! A [`CsrGraph`] stores one offsets array and one concatenated neighbour
//! array, `O(n + m)` words total, against the `O(n²)` bits of
//! [`crate::DenseGraph`]. Construction from a [`DistanceOracle`] issues one
//! `cols_within` range query per node — the queries run in parallel, and
//! because every backend returns its hits in ascending column order (the
//! contract `cols_within` documents and tests), the assembled arrays are
//! byte-identical at any thread count.
//!
//! [`DistanceOracle`]: parfaclo_metric::DistanceOracle

use parfaclo_metric::{DistanceOracle, Oracle};
use rayon::prelude::*;

/// A simple undirected graph in CSR form: `neighbors[offsets[v]..offsets[v+1]]`
/// are the neighbours of `v`, strictly ascending, with no self-loops.
///
/// Node ids are stored as `u32`, so the representation supports up to
/// `u32::MAX` nodes — far beyond what the dense bit-matrix can reach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Assembles a CSR graph from per-node neighbour rows (each already
    /// strictly ascending, self-free). The rows were produced in parallel;
    /// the flatten here is a plain `O(m)` memcpy in node order, so the
    /// resulting arrays are positionally deterministic by construction.
    fn from_rows(n: usize, rows: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        offsets.push(0);
        for row in &rows {
            total += row.len();
            offsets.push(total);
        }
        let mut neighbors = Vec::with_capacity(total);
        for row in &rows {
            neighbors.extend_from_slice(row);
        }
        CsrGraph {
            n,
            offsets,
            neighbors,
        }
    }

    /// Builds a graph from an undirected edge list (duplicates tolerated).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            assert_ne!(a, b, "self-loops are not allowed");
            rows[a].push(b as u32);
            rows[b].push(a as u32);
        }
        for row in &mut rows {
            row.sort_unstable();
            row.dedup();
        }
        Self::from_rows(n, rows)
    }

    /// Builds the threshold graph `H_α` directly from a square
    /// [`DistanceOracle`]: nodes `a ≠ b` are adjacent iff `d(a, b) <= alpha`.
    ///
    /// One `cols_within(a, alpha)` range query per node, issued in parallel.
    /// The ascending-order contract of `cols_within` means each row arrives
    /// already sorted; on the spatial backend each query is sublinear, so the
    /// whole build is `O(n·query + m)` instead of the dense `O(n²)`.
    ///
    /// # Panics
    /// Panics if the oracle is not square or has `u32::MAX` or more rows.
    pub fn from_threshold_oracle(oracle: &Oracle, alpha: f64) -> Self {
        let n = oracle.rows();
        assert_eq!(n, oracle.cols(), "threshold graphs need a square oracle");
        assert!((n as u64) < u32::MAX as u64, "CSR node ids are u32");
        let rows: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .with_min_len(16)
            .map(|a| {
                oracle
                    .cols_within(a, alpha)
                    .into_iter()
                    .filter(|&b| b != a)
                    .map(|b| b as u32)
                    .collect()
            })
            .collect();
        Self::from_rows(n, rows)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The neighbours of `v`, strictly ascending.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether `a` and `b` are adjacent (binary search over `a`'s row).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Resident bytes of the adjacency arrays.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// A bipartite graph `H = (U, V, E)` in CSR form, stored from both sides so
/// the frontier engine can push `U → V` and pull `V → U` (and vice versa)
/// without scanning a dense `|U| × |V|` matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrBipartite {
    nu: usize,
    nv: usize,
    u_offsets: Vec<usize>,
    u_neighbors: Vec<u32>,
    v_offsets: Vec<usize>,
    v_neighbors: Vec<u32>,
}

impl CsrBipartite {
    /// Builds a bipartite graph from an edge list of `(u, v)` pairs
    /// (duplicates tolerated).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(nu: usize, nv: usize, edges: &[(usize, usize)]) -> Self {
        let mut u_rows: Vec<Vec<u32>> = vec![Vec::new(); nu];
        for &(u, v) in edges {
            assert!(u < nu && v < nv, "edge endpoint out of range");
            u_rows[u].push(v as u32);
        }
        for row in &mut u_rows {
            row.sort_unstable();
            row.dedup();
        }
        Self::from_u_rows(nu, nv, u_rows)
    }

    /// Builds a bipartite graph from a predicate evaluated on every `(u, v)`
    /// pair in parallel (the same interface as the dense
    /// [`crate::BipartiteGraph::from_predicate`]).
    pub fn from_predicate<F>(nu: usize, nv: usize, pred: F) -> Self
    where
        F: Fn(usize, usize) -> bool + Sync,
    {
        let u_rows: Vec<Vec<u32>> = (0..nu)
            .into_par_iter()
            .with_min_len(16)
            .map(|u| (0..nv).filter(|&v| pred(u, v)).map(|v| v as u32).collect())
            .collect();
        Self::from_u_rows(nu, nv, u_rows)
    }

    /// Assembles both CSR sides from ascending per-`u` rows. The `v`-side is
    /// derived with a counting sort: scanning `u` in ascending order fills
    /// each `v`-row in ascending `u` order, keeping both sides sorted and
    /// positionally deterministic.
    fn from_u_rows(nu: usize, nv: usize, u_rows: Vec<Vec<u32>>) -> Self {
        let mut u_offsets = Vec::with_capacity(nu + 1);
        let mut total = 0usize;
        u_offsets.push(0);
        for row in &u_rows {
            total += row.len();
            u_offsets.push(total);
        }
        let mut u_neighbors = Vec::with_capacity(total);
        for row in &u_rows {
            u_neighbors.extend_from_slice(row);
        }

        let mut v_deg = vec![0usize; nv];
        for &v in &u_neighbors {
            v_deg[v as usize] += 1;
        }
        let mut v_offsets = Vec::with_capacity(nv + 1);
        let mut acc = 0usize;
        v_offsets.push(0);
        for &d in &v_deg {
            acc += d;
            v_offsets.push(acc);
        }
        let mut cursor = v_offsets[..nv].to_vec();
        let mut v_neighbors = vec![0u32; total];
        for (u, row) in u_rows.iter().enumerate() {
            for &v in row {
                v_neighbors[cursor[v as usize]] = u as u32;
                cursor[v as usize] += 1;
            }
        }

        CsrBipartite {
            nu,
            nv,
            u_offsets,
            u_neighbors,
            v_offsets,
            v_neighbors,
        }
    }

    /// Number of U-side nodes.
    #[inline]
    pub fn nu(&self) -> usize {
        self.nu
    }

    /// Number of V-side nodes.
    #[inline]
    pub fn nv(&self) -> usize {
        self.nv
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.u_neighbors.len()
    }

    /// Degree of U-side node `u`.
    #[inline]
    pub fn degree_u(&self, u: usize) -> usize {
        self.u_offsets[u + 1] - self.u_offsets[u]
    }

    /// Degree of V-side node `v`.
    #[inline]
    pub fn degree_v(&self, v: usize) -> usize {
        self.v_offsets[v + 1] - self.v_offsets[v]
    }

    /// The V-side neighbours of U-node `u`, strictly ascending.
    #[inline]
    pub fn neighbors_u(&self, u: usize) -> &[u32] {
        &self.u_neighbors[self.u_offsets[u]..self.u_offsets[u + 1]]
    }

    /// The U-side neighbours of V-node `v`, strictly ascending.
    #[inline]
    pub fn neighbors_v(&self, v: usize) -> &[u32] {
        &self.v_neighbors[self.v_offsets[v]..self.v_offsets[v + 1]]
    }

    /// Whether `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.neighbors_u(u).binary_search(&(v as u32)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::DistanceMatrix;

    #[test]
    fn csr_basic_ops() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn csr_rows_are_strictly_ascending_and_deduped() {
        let g = CsrGraph::from_edges(5, &[(3, 1), (3, 0), (3, 4), (3, 1)]);
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn csr_rejects_self_loops() {
        let _ = CsrGraph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn threshold_oracle_build_matches_pairwise_distances() {
        // 3 nodes on a line at 0, 1, 3.
        let dist = vec![0.0, 1.0, 3.0, 1.0, 0.0, 2.0, 3.0, 2.0, 0.0];
        let oracle = Oracle::Dense(DistanceMatrix::from_rows(3, 3, dist));
        let g = CsrGraph::from_threshold_oracle(&oracle, 1.5);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 2));
        let g2 = CsrGraph::from_threshold_oracle(&oracle, 2.0);
        assert!(g2.has_edge(1, 2));
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn memory_is_linear_in_edges() {
        let g = CsrGraph::from_edges(1000, &[(0, 1), (2, 3)]);
        assert!(g.memory_bytes() < 1000 * 16, "{}", g.memory_bytes());
    }

    #[test]
    fn bipartite_sides_are_consistent() {
        let h = CsrBipartite::from_edges(3, 2, &[(0, 0), (1, 0), (2, 1), (0, 1)]);
        assert_eq!(h.neighbors_u(0), &[0, 1]);
        assert_eq!(h.neighbors_v(0), &[0, 1]);
        assert_eq!(h.neighbors_v(1), &[0, 2]);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.degree_u(0), 2);
        assert_eq!(h.degree_v(1), 2);
        assert!(h.has_edge(2, 1));
        assert!(!h.has_edge(2, 0));
    }

    #[test]
    fn bipartite_predicate_matches_dense_semantics() {
        let h = CsrBipartite::from_predicate(3, 4, |u, v| (u + v) % 2 == 0);
        for u in 0..3 {
            for v in 0..4 {
                assert_eq!(h.has_edge(u, v), (u + v) % 2 == 0);
            }
        }
    }
}
