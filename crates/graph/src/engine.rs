//! The Ligra-style frontier engine: `edge_map` / `vertex_map` /
//! `vertex_filter` over any [`Neighbors`] graph.
//!
//! Every primitive is deterministic by construction: direction switching
//! (sparse *push* vs dense *pull*) is a pure function of frontier density and
//! graph size — never of thread count — and every combine is either
//! order-independent (set membership, `min`) or evaluated left-to-right over
//! ascending neighbour ids, so results are byte-identical across
//! [`ExecPolicy`] choices, thread counts and graph representations.

use crate::frontier::VertexSubset;
use parfaclo_matrixops::ExecPolicy;
use rayon::prelude::*;

/// Adjacency access for the frontier engine. Implemented by the dense
/// bit-matrix, the CSR representation, and the [`crate::ThresholdGraph`]
/// facade, so every round-based solver can be written once and run on any of
/// them with identical output.
pub trait Neighbors: Sync {
    /// Number of nodes.
    fn n(&self) -> usize;
    /// Number of undirected edges (`O(1)` — cached where the representation
    /// cannot count cheaply).
    fn num_edges(&self) -> usize;
    /// Degree of node `v`.
    fn degree(&self, v: usize) -> usize;
    /// Calls `f` on every neighbour of `v` in ascending order.
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize));
    /// Whether any neighbour of `v` satisfies `pred` (may early-exit).
    fn any_neighbor(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool;
}

impl Neighbors for crate::CsrGraph {
    fn n(&self) -> usize {
        CsrGraphExt::n(self)
    }
    fn num_edges(&self) -> usize {
        self.num_edges()
    }
    fn degree(&self, v: usize) -> usize {
        self.degree(v)
    }
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for &w in self.neighbors(v) {
            f(w as usize);
        }
    }
    fn any_neighbor(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        self.neighbors(v).iter().any(|&w| pred(w as usize))
    }
}

/// Private alias so the trait impl can reach the inherent `n()` without
/// infinite recursion.
trait CsrGraphExt {
    fn n(&self) -> usize;
}
impl CsrGraphExt for crate::CsrGraph {
    fn n(&self) -> usize {
        crate::CsrGraph::n(self)
    }
}

impl Neighbors for crate::DenseGraph {
    fn n(&self) -> usize {
        crate::DenseGraph::n(self)
    }
    fn num_edges(&self) -> usize {
        crate::DenseGraph::num_edges(self)
    }
    fn degree(&self, v: usize) -> usize {
        crate::DenseGraph::degree(self, v)
    }
    fn for_each_neighbor(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for (w, &adj) in self.row(v).iter().enumerate() {
            if adj {
                f(w);
            }
        }
    }
    fn any_neighbor(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        self.row(v)
            .iter()
            .enumerate()
            .any(|(w, &adj)| adj && pred(w))
    }
}

/// Ligra's direction heuristic, early-exiting so the sparse case never pays
/// more than `O(|frontier|)` degree lookups: take the dense (pull) direction
/// when `|frontier| + Σ deg(frontier) > m/20 + 1`. A pure function of the
/// frontier *contents* and the graph — representation and thread count play
/// no part, so the decision (and with it every downstream byte) is stable.
fn use_dense_direction<G: Neighbors>(g: &G, frontier: &VertexSubset) -> bool {
    let threshold = (g.num_edges() / 20 + 1) as u64;
    let mut work = frontier.len() as u64;
    if work > threshold {
        return true;
    }
    let mut heavy = false;
    frontier.for_each(|v| {
        if !heavy {
            work += g.degree(v) as u64;
            heavy = work > threshold;
        }
    });
    heavy
}

/// Ligra `edgeMap`: the set `{ v : cond(v) ∧ ∃ u ∈ frontier, {u,v} ∈ E }`.
///
/// Sparse (push) direction walks the frontier's ascending neighbour lists and
/// sort-dedups the result; dense (pull) direction gathers per target vertex.
/// Both produce the same member set, so downstream output never depends on
/// which direction ran.
pub fn edge_map<G, C>(g: &G, frontier: &VertexSubset, cond: C, policy: ExecPolicy) -> VertexSubset
where
    G: Neighbors,
    C: Fn(usize) -> bool + Sync,
{
    let n = g.n();
    if frontier.is_empty() {
        return VertexSubset::empty(n);
    }
    if use_dense_direction(g, frontier) {
        let mask = frontier.to_mask();
        let one = |v: usize| cond(v) && g.any_neighbor(v, &|w| mask[w]);
        let bits: Vec<bool> = if policy.run_parallel(n + g.num_edges()) {
            (0..n).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..n).map(one).collect()
        };
        VertexSubset::from_mask_owned(bits)
    } else {
        let mut out: Vec<u32> = Vec::new();
        frontier.for_each(|u| g.for_each_neighbor(u, &mut |w| out.push(w as u32)));
        out.sort_unstable();
        out.dedup();
        out.retain(|&v| cond(v as usize));
        VertexSubset::from_sorted_ids(n, out)
    }
}

/// `edgeMap` with a `min` combine: for every `v ∈ targets`,
/// `out[v] = min(values over N(v))` (including `values[v]` itself when
/// `include_self`); vertices outside `targets` keep `values[v]` unchanged.
///
/// This is the propagation primitive of the paper's Luby simulations: `min`
/// is order-independent, so the result is identical whichever direction or
/// schedule computes it.
pub fn edge_map_min<G: Neighbors>(
    g: &G,
    targets: &VertexSubset,
    values: &[u64],
    include_self: bool,
    policy: ExecPolicy,
) -> Vec<u64> {
    let n = g.n();
    debug_assert_eq!(values.len(), n);
    let gather = |v: usize| -> u64 {
        let mut m = if include_self { values[v] } else { u64::MAX };
        g.for_each_neighbor(v, &mut |w| m = m.min(values[w]));
        m
    };
    if targets.len() * 2 >= n {
        let mask = targets.to_mask();
        let one = |v: usize| if mask[v] { gather(v) } else { values[v] };
        if policy.run_parallel(n + g.num_edges()) {
            (0..n).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..n).map(one).collect()
        }
    } else {
        let ids = targets.ids();
        let gathered: Vec<u64> = if policy.run_parallel(n + g.num_edges()) {
            (0..ids.len())
                .into_par_iter()
                .with_min_len(64)
                .map(|i| gather(ids[i] as usize))
                .collect()
        } else {
            ids.iter().map(|&v| gather(v as usize)).collect()
        };
        let mut out = values.to_vec();
        for (&v, &m) in ids.iter().zip(gathered.iter()) {
            out[v as usize] = m;
        }
        out
    }
}

/// Ligra `vertexMap`: applies `f` to every member in ascending order and
/// returns the results in that order.
pub fn vertex_map<T, F>(subset: &VertexSubset, f: F, policy: ExecPolicy) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let ids = subset.ids();
    if policy.run_parallel(ids.len()) {
        (0..ids.len())
            .into_par_iter()
            .with_min_len(64)
            .map(|i| f(ids[i] as usize))
            .collect()
    } else {
        ids.iter().map(|&v| f(v as usize)).collect()
    }
}

/// Ligra `vertexFilter`: the members of `subset` satisfying `pred`, keeping
/// the subset's representation kind.
pub fn vertex_filter<F>(subset: &VertexSubset, pred: F, policy: ExecPolicy) -> VertexSubset
where
    F: Fn(usize) -> bool + Sync,
{
    let n = subset.universe();
    if subset.is_sparse() {
        let mut ids = subset.ids();
        ids.retain(|&v| pred(v as usize));
        VertexSubset::from_sorted_ids(n, ids)
    } else {
        let mask = subset.to_mask();
        let one = |v: usize| mask[v] && pred(v);
        let bits: Vec<bool> = if policy.run_parallel(n) {
            (0..n).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..n).map(one).collect()
        };
        VertexSubset::from_mask_owned(bits)
    }
}

/// Bipartite adjacency access for the frontier engine, with both directions
/// of traversal. Implemented by the dense [`crate::BipartiteGraph`] and the
/// CSR [`crate::CsrBipartite`].
pub trait BipartiteNeighbors: Sync {
    /// Number of U-side nodes.
    fn nu(&self) -> usize;
    /// Number of V-side nodes.
    fn nv(&self) -> usize;
    /// Number of edges.
    fn num_edges(&self) -> usize;
    /// Degree of U-side node `u`.
    fn degree_u(&self, u: usize) -> usize;
    /// Degree of V-side node `v`.
    fn degree_v(&self, v: usize) -> usize;
    /// Calls `f` on every V-side neighbour of `u` in ascending order.
    fn for_each_neighbor_u(&self, u: usize, f: &mut dyn FnMut(usize));
    /// Calls `f` on every U-side neighbour of `v` in ascending order.
    fn for_each_neighbor_v(&self, v: usize, f: &mut dyn FnMut(usize));
    /// Whether any V-side neighbour of `u` satisfies `pred`.
    fn any_neighbor_u(&self, u: usize, pred: &dyn Fn(usize) -> bool) -> bool;
    /// Whether any U-side neighbour of `v` satisfies `pred`.
    fn any_neighbor_v(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool;
}

impl BipartiteNeighbors for crate::CsrBipartite {
    fn nu(&self) -> usize {
        crate::CsrBipartite::nu(self)
    }
    fn nv(&self) -> usize {
        crate::CsrBipartite::nv(self)
    }
    fn num_edges(&self) -> usize {
        crate::CsrBipartite::num_edges(self)
    }
    fn degree_u(&self, u: usize) -> usize {
        crate::CsrBipartite::degree_u(self, u)
    }
    fn degree_v(&self, v: usize) -> usize {
        crate::CsrBipartite::degree_v(self, v)
    }
    fn for_each_neighbor_u(&self, u: usize, f: &mut dyn FnMut(usize)) {
        for &v in self.neighbors_u(u) {
            f(v as usize);
        }
    }
    fn for_each_neighbor_v(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for &u in self.neighbors_v(v) {
            f(u as usize);
        }
    }
    fn any_neighbor_u(&self, u: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        self.neighbors_u(u).iter().any(|&v| pred(v as usize))
    }
    fn any_neighbor_v(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        self.neighbors_v(v).iter().any(|&u| pred(u as usize))
    }
}

impl BipartiteNeighbors for crate::BipartiteGraph {
    fn nu(&self) -> usize {
        crate::BipartiteGraph::nu(self)
    }
    fn nv(&self) -> usize {
        crate::BipartiteGraph::nv(self)
    }
    fn num_edges(&self) -> usize {
        crate::BipartiteGraph::num_edges(self)
    }
    fn degree_u(&self, u: usize) -> usize {
        crate::BipartiteGraph::degree_u(self, u)
    }
    fn degree_v(&self, v: usize) -> usize {
        crate::BipartiteGraph::degree_v(self, v)
    }
    fn for_each_neighbor_u(&self, u: usize, f: &mut dyn FnMut(usize)) {
        for (v, &adj) in self.row_u(u).iter().enumerate() {
            if adj {
                f(v);
            }
        }
    }
    fn for_each_neighbor_v(&self, v: usize, f: &mut dyn FnMut(usize)) {
        for u in 0..crate::BipartiteGraph::nu(self) {
            if self.has_edge(u, v) {
                f(u);
            }
        }
    }
    fn any_neighbor_u(&self, u: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        self.row_u(u)
            .iter()
            .enumerate()
            .any(|(v, &adj)| adj && pred(v))
    }
    fn any_neighbor_v(&self, v: usize, pred: &dyn Fn(usize) -> bool) -> bool {
        (0..crate::BipartiteGraph::nu(self)).any(|u| self.has_edge(u, v) && pred(u))
    }
}

/// Bipartite `edgeMap`, `U → V`: the V-side set adjacent to `u_frontier`.
pub fn bi_edge_map_u<H: BipartiteNeighbors>(
    h: &H,
    u_frontier: &VertexSubset,
    policy: ExecPolicy,
) -> VertexSubset {
    let nv = h.nv();
    if u_frontier.is_empty() {
        return VertexSubset::empty(nv);
    }
    let threshold = (h.num_edges() / 20 + 1) as u64;
    let mut work = u_frontier.len() as u64;
    let mut heavy = work > threshold;
    u_frontier.for_each(|u| {
        if !heavy {
            work += h.degree_u(u) as u64;
            heavy = work > threshold;
        }
    });
    if heavy {
        let mask = u_frontier.to_mask();
        let one = |v: usize| h.any_neighbor_v(v, &|u| mask[u]);
        let bits: Vec<bool> = if policy.run_parallel(nv + h.num_edges()) {
            (0..nv).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..nv).map(one).collect()
        };
        VertexSubset::from_mask_owned(bits)
    } else {
        let mut out: Vec<u32> = Vec::new();
        u_frontier.for_each(|u| h.for_each_neighbor_u(u, &mut |v| out.push(v as u32)));
        out.sort_unstable();
        out.dedup();
        VertexSubset::from_sorted_ids(nv, out)
    }
}

/// Bipartite `edgeMap`, `V → U`: the U-side set adjacent to `v_frontier`.
pub fn bi_edge_map_v<H: BipartiteNeighbors>(
    h: &H,
    v_frontier: &VertexSubset,
    policy: ExecPolicy,
) -> VertexSubset {
    let nu = h.nu();
    if v_frontier.is_empty() {
        return VertexSubset::empty(nu);
    }
    let threshold = (h.num_edges() / 20 + 1) as u64;
    let mut work = v_frontier.len() as u64;
    let mut heavy = work > threshold;
    v_frontier.for_each(|v| {
        if !heavy {
            work += h.degree_v(v) as u64;
            heavy = work > threshold;
        }
    });
    if heavy {
        let mask = v_frontier.to_mask();
        let one = |u: usize| h.any_neighbor_u(u, &|v| mask[v]);
        let bits: Vec<bool> = if policy.run_parallel(nu + h.num_edges()) {
            (0..nu).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..nu).map(one).collect()
        };
        VertexSubset::from_mask_owned(bits)
    } else {
        let mut out: Vec<u32> = Vec::new();
        v_frontier.for_each(|v| h.for_each_neighbor_v(v, &mut |u| out.push(u as u32)));
        out.sort_unstable();
        out.dedup();
        VertexSubset::from_sorted_ids(nu, out)
    }
}

/// Bipartite `min` gather into the V side: for `v ∈ v_targets`,
/// `out[v] = min over U-neighbours u of u_values[u]` (`u64::MAX` when there
/// are none); vertices outside the targets get `u64::MAX`.
pub fn bi_min_into_v<H: BipartiteNeighbors>(
    h: &H,
    v_targets: &VertexSubset,
    u_values: &[u64],
    policy: ExecPolicy,
) -> Vec<u64> {
    let nv = h.nv();
    let gather = |v: usize| -> u64 {
        let mut m = u64::MAX;
        h.for_each_neighbor_v(v, &mut |u| m = m.min(u_values[u]));
        m
    };
    if v_targets.len() * 2 >= nv {
        let mask = v_targets.to_mask();
        let one = |v: usize| if mask[v] { gather(v) } else { u64::MAX };
        if policy.run_parallel(nv + h.num_edges()) {
            (0..nv).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..nv).map(one).collect()
        }
    } else {
        let ids = v_targets.ids();
        let gathered: Vec<u64> = if policy.run_parallel(nv + h.num_edges()) {
            (0..ids.len())
                .into_par_iter()
                .with_min_len(64)
                .map(|i| gather(ids[i] as usize))
                .collect()
        } else {
            ids.iter().map(|&v| gather(v as usize)).collect()
        };
        let mut out = vec![u64::MAX; nv];
        for (&v, &m) in ids.iter().zip(gathered.iter()) {
            out[v as usize] = m;
        }
        out
    }
}

/// Bipartite `min` gather back into the U side: for `u ∈ u_targets`,
/// `out[u] = min(u_self[u], min over V-neighbours v of v_values[v])`;
/// vertices outside the targets keep `u_self[u]`.
pub fn bi_min_into_u<H: BipartiteNeighbors>(
    h: &H,
    u_targets: &VertexSubset,
    v_values: &[u64],
    u_self: &[u64],
    policy: ExecPolicy,
) -> Vec<u64> {
    let nu = h.nu();
    let gather = |u: usize| -> u64 {
        let mut m = u_self[u];
        h.for_each_neighbor_u(u, &mut |v| m = m.min(v_values[v]));
        m
    };
    if u_targets.len() * 2 >= nu {
        let mask = u_targets.to_mask();
        let one = |u: usize| if mask[u] { gather(u) } else { u_self[u] };
        if policy.run_parallel(nu + h.num_edges()) {
            (0..nu).into_par_iter().with_min_len(256).map(one).collect()
        } else {
            (0..nu).map(one).collect()
        }
    } else {
        let ids = u_targets.ids();
        let gathered: Vec<u64> = if policy.run_parallel(nu + h.num_edges()) {
            (0..ids.len())
                .into_par_iter()
                .with_min_len(64)
                .map(|i| gather(ids[i] as usize))
                .collect()
        } else {
            ids.iter().map(|&u| gather(u as usize)).collect()
        };
        let mut out = u_self.to_vec();
        for (&u, &m) in ids.iter().zip(gathered.iter()) {
            out[u as usize] = m;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, DenseGraph};

    /// Deterministic xorshift so the tests need no RNG dependency.
    struct XorShift(u64);
    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn chance(&mut self, percent: u64) -> bool {
            self.next() % 100 < percent
        }
    }

    fn random_edges(n: usize, percent: u64, seed: u64) -> Vec<(usize, usize)> {
        let mut rng = XorShift(seed.max(1));
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.chance(percent) {
                    edges.push((a, b));
                }
            }
        }
        edges
    }

    fn random_subset(n: usize, percent: u64, seed: u64) -> Vec<u32> {
        let mut rng = XorShift(seed.max(1));
        (0..n as u32).filter(|_| rng.chance(percent)).collect()
    }

    /// Reference edgeMap: brute-force over all pairs.
    fn edge_map_reference(
        n: usize,
        edges: &[(usize, usize)],
        frontier: &[u32],
        cond: impl Fn(usize) -> bool,
    ) -> Vec<u32> {
        let mut mask = vec![false; n];
        for &u in frontier {
            mask[u as usize] = true;
        }
        let mut out = vec![false; n];
        for &(a, b) in edges {
            if mask[a] {
                out[b] = true;
            }
            if mask[b] {
                out[a] = true;
            }
        }
        (0..n as u32)
            .filter(|&v| out[v as usize] && cond(v as usize))
            .collect()
    }

    #[test]
    fn edge_map_matches_reference_on_both_representations() {
        for seed in 1..6 {
            let n = 40;
            let edges = random_edges(n, 8, seed);
            let g = CsrGraph::from_edges(n, &edges);
            let d = DenseGraph::from_edges(n, &edges);
            for density in [5, 40, 90] {
                let ids = random_subset(n, density, seed * 7 + density);
                let want = edge_map_reference(n, &edges, &ids, |v| v % 3 != 0);
                let sparse_in = VertexSubset::from_sorted_ids(n, ids.clone());
                let mut mask = vec![false; n];
                for &v in &ids {
                    mask[v as usize] = true;
                }
                let dense_in = VertexSubset::from_mask(&mask);
                for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                    for f in [&sparse_in, &dense_in] {
                        let got = edge_map(&g, f, |v| v % 3 != 0, policy);
                        assert_eq!(got.ids(), want, "csr seed {seed} density {density}");
                        let got_dense = edge_map(&d, f, |v| v % 3 != 0, policy);
                        assert_eq!(got_dense.ids(), want, "dense seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn edge_map_empty_and_full_frontier() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let empty = edge_map(&g, &VertexSubset::empty(6), |_| true, ExecPolicy::Parallel);
        assert!(empty.is_empty());
        let full = edge_map(&g, &VertexSubset::full(6), |_| true, ExecPolicy::Parallel);
        // Node 5 is isolated: everything else has a neighbour in the full set.
        assert_eq!(full.ids(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edge_map_min_matches_reference() {
        for seed in 1..5 {
            let n = 30;
            let edges = random_edges(n, 10, seed);
            let g = CsrGraph::from_edges(n, &edges);
            let d = DenseGraph::from_edges(n, &edges);
            let values: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1000).collect();
            for density in [10, 80] {
                let ids = random_subset(n, density, seed + density);
                let targets = VertexSubset::from_sorted_ids(n, ids.clone());
                for include_self in [false, true] {
                    let mut want = values.clone();
                    for &v in &ids {
                        let v = v as usize;
                        let mut m = if include_self { values[v] } else { u64::MAX };
                        for &(a, b) in &edges {
                            if a == v {
                                m = m.min(values[b]);
                            }
                            if b == v {
                                m = m.min(values[a]);
                            }
                        }
                        want[v] = m;
                    }
                    for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                        assert_eq!(
                            edge_map_min(&g, &targets, &values, include_self, policy),
                            want
                        );
                        assert_eq!(
                            edge_map_min(&d, &targets, &values, include_self, policy),
                            want
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vertex_map_and_filter_are_order_stable() {
        let s = VertexSubset::from_sorted_ids(10, vec![1, 4, 7, 9]);
        let doubled = vertex_map(&s, |v| v * 2, ExecPolicy::Parallel);
        assert_eq!(doubled, vec![2, 8, 14, 18]);
        let odd = vertex_filter(&s, |v| v % 2 == 1, ExecPolicy::Parallel);
        assert!(odd.is_sparse());
        assert_eq!(odd.ids(), vec![1, 7, 9]);
        let dense = VertexSubset::from_mask(&[true; 10]);
        let small = vertex_filter(&dense, |v| v < 3, ExecPolicy::Sequential);
        assert!(!small.is_sparse());
        assert_eq!(small.ids(), vec![0, 1, 2]);
    }

    #[test]
    fn direction_switch_is_a_pure_density_function() {
        // A dense-represented small frontier and the equal sparse frontier
        // must produce identical results (the switch looks at contents, not
        // representation).
        let n = 50;
        let edges = random_edges(n, 30, 3);
        let g = CsrGraph::from_edges(n, &edges);
        let ids = vec![2u32, 17, 31];
        let sparse = VertexSubset::from_sorted_ids(n, ids.clone());
        let mut mask = vec![false; n];
        for &v in &ids {
            mask[v as usize] = true;
        }
        let dense = VertexSubset::from_mask(&mask);
        let a = edge_map(&g, &sparse, |_| true, ExecPolicy::Parallel);
        let b = edge_map(&g, &dense, |_| true, ExecPolicy::Parallel);
        assert_eq!(a, b);
    }

    #[test]
    fn bipartite_edge_maps_match_brute_force() {
        use crate::{BipartiteGraph, CsrBipartite};
        for seed in 1..5 {
            let (nu, nv) = (25, 18);
            let mut rng = XorShift(seed);
            let mut edges = Vec::new();
            for u in 0..nu {
                for v in 0..nv {
                    if rng.chance(12) {
                        edges.push((u, v));
                    }
                }
            }
            let hc = CsrBipartite::from_edges(nu, nv, &edges);
            let hd = BipartiteGraph::from_edges(nu, nv, &edges);
            for density in [8, 70] {
                let u_ids = random_subset(nu, density, seed * 3 + density);
                let uf = VertexSubset::from_sorted_ids(nu, u_ids.clone());
                let mut want: Vec<u32> = edges
                    .iter()
                    .filter(|(u, _)| u_ids.contains(&(*u as u32)))
                    .map(|&(_, v)| v as u32)
                    .collect();
                want.sort_unstable();
                want.dedup();
                for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
                    assert_eq!(bi_edge_map_u(&hc, &uf, policy).ids(), want);
                    assert_eq!(bi_edge_map_u(&hd, &uf, policy).ids(), want);
                }
                // And the V → U direction on the transposed question.
                let v_ids = random_subset(nv, density, seed * 5 + density);
                let vf = VertexSubset::from_sorted_ids(nv, v_ids.clone());
                let mut want_u: Vec<u32> = edges
                    .iter()
                    .filter(|(_, v)| v_ids.contains(&(*v as u32)))
                    .map(|&(u, _)| u as u32)
                    .collect();
                want_u.sort_unstable();
                want_u.dedup();
                assert_eq!(bi_edge_map_v(&hc, &vf, ExecPolicy::Parallel).ids(), want_u);
                assert_eq!(bi_edge_map_v(&hd, &vf, ExecPolicy::Parallel).ids(), want_u);
            }
        }
    }

    #[test]
    fn bipartite_min_gathers_match_dense_and_csr() {
        use crate::{BipartiteGraph, CsrBipartite};
        let (nu, nv) = (12, 9);
        let edges = vec![(0, 0), (1, 0), (2, 3), (5, 8), (7, 3), (11, 0)];
        let hc = CsrBipartite::from_edges(nu, nv, &edges);
        let hd = BipartiteGraph::from_edges(nu, nv, &edges);
        let pri: Vec<u64> = (0..nu as u64).map(|u| 100 - u).collect();
        let all_v = VertexSubset::full(nv);
        let mv_c = bi_min_into_v(&hc, &all_v, &pri, ExecPolicy::Parallel);
        let mv_d = bi_min_into_v(&hd, &all_v, &pri, ExecPolicy::Sequential);
        assert_eq!(mv_c, mv_d);
        assert_eq!(mv_c[0], 100 - 11, "min over u ∈ {{0, 1, 11}}");
        assert_eq!(mv_c[1], u64::MAX, "no neighbours");
        let all_u = VertexSubset::full(nu);
        let mu_c = bi_min_into_u(&hc, &all_u, &mv_c, &pri, ExecPolicy::Parallel);
        let mu_d = bi_min_into_u(&hd, &all_u, &mv_d, &pri, ExecPolicy::Sequential);
        assert_eq!(mu_c, mu_d);
        assert_eq!(mu_c[0], 100 - 11, "u0 sees v0's min");
        assert_eq!(mu_c[3], pri[3], "isolated u keeps its own value");
    }
}
