//! Sparse frontier graph engine: CSR threshold graphs plus the Ligra-style
//! `vertexSubset` / `edgeMap` primitives that every round-based solver in the
//! workspace runs on.
//!
//! The paper's algorithms (maximal dominating sets, Luby MIS, the k-center
//! threshold probes) all operate on threshold graphs `H_α` of a metric
//! instance. This crate provides:
//!
//! * the graph representations — [`DenseGraph`] / [`BipartiteGraph`] (the
//!   paper's native dense bit matrices, moved here from the dominator crate)
//!   and [`CsrGraph`] / [`CsrBipartite`] (compressed sparse row, `O(n + m)`
//!   bytes, built deterministically in parallel from
//!   `DistanceOracle::cols_within` range queries);
//! * the [`ThresholdGraph`] facade selecting between them per run via
//!   [`GraphBackend`], with the dense side refusing allocations beyond
//!   [`DENSE_GRAPH_BYTES_CAP`];
//! * the frontier engine — [`VertexSubset`] (sparse id list / dense bitmap
//!   with deterministic direction switching on a pure function of frontier
//!   density, never thread count) and the [`edge_map`] / [`vertex_map`] /
//!   [`vertex_filter`] primitives, whose combines are order-independent or
//!   left-to-right so canonical output stays byte-identical across thread
//!   counts and graph backends.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod dense;
pub mod engine;
pub mod frontier;
pub mod threshold;

pub use csr::{CsrBipartite, CsrGraph};
pub use dense::{BipartiteGraph, DenseGraph};
pub use engine::{
    bi_edge_map_u, bi_edge_map_v, bi_min_into_u, bi_min_into_v, edge_map, edge_map_min,
    vertex_filter, vertex_map, BipartiteNeighbors, Neighbors,
};
pub use frontier::VertexSubset;
pub use threshold::{GraphBackend, ThresholdGraph, DENSE_GRAPH_BYTES_CAP};
