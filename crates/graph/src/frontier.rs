//! `VertexSubset` — the Ligra frontier representation.
//!
//! A frontier is a subset of a graph's vertices, held either as a sorted
//! sparse id list or as a dense bitmap. Which representation a subset uses is
//! a pure function of how it was constructed and of frontier density — never
//! of thread count — and every query on it is representation-independent, so
//! algorithms built on frontiers produce byte-identical output whichever form
//! their subsets happen to take.

/// A subset of the vertices `0..n`, in sparse (sorted id list) or dense
/// (bitmap) form.
#[derive(Debug, Clone)]
pub struct VertexSubset {
    n: usize,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Strictly ascending vertex ids.
    Sparse(Vec<u32>),
    /// One bit per vertex plus a cached population count.
    Dense { bits: Vec<bool>, count: usize },
}

impl VertexSubset {
    /// The empty subset of `0..n` (sparse).
    pub fn empty(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Sparse(Vec::new()),
        }
    }

    /// The full subset `0..n` (dense).
    pub fn full(n: usize) -> Self {
        VertexSubset {
            n,
            repr: Repr::Dense {
                bits: vec![true; n],
                count: n,
            },
        }
    }

    /// A dense subset copied from a membership mask.
    pub fn from_mask(mask: &[bool]) -> Self {
        Self::from_mask_owned(mask.to_vec())
    }

    /// A dense subset taking ownership of a membership mask.
    pub fn from_mask_owned(bits: Vec<bool>) -> Self {
        let count = bits.iter().filter(|&&b| b).count();
        VertexSubset {
            n: bits.len(),
            repr: Repr::Dense { bits, count },
        }
    }

    /// A sparse subset from strictly ascending vertex ids.
    ///
    /// # Panics
    /// Debug builds panic if `ids` is not strictly ascending or exceeds `n`.
    pub fn from_sorted_ids(n: usize, ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly ascending"
        );
        debug_assert!(ids.last().map_or(true, |&v| (v as usize) < n));
        VertexSubset {
            n,
            repr: Repr::Sparse(ids),
        }
    }

    /// The size of the universe this subset draws from.
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sparse(ids) => ids.len(),
            Repr::Dense { count, .. } => *count,
        }
    }

    /// Whether the subset has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the subset is held in sparse (id list) form.
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, Repr::Sparse(_))
    }

    /// Membership test (`O(log len)` sparse, `O(1)` dense).
    pub fn contains(&self, v: usize) -> bool {
        match &self.repr {
            Repr::Sparse(ids) => ids.binary_search(&(v as u32)).is_ok(),
            Repr::Dense { bits, .. } => bits[v],
        }
    }

    /// The member ids, strictly ascending.
    pub fn ids(&self) -> Vec<u32> {
        match &self.repr {
            Repr::Sparse(ids) => ids.clone(),
            Repr::Dense { bits, .. } => bits
                .iter()
                .enumerate()
                .filter_map(|(v, &b)| if b { Some(v as u32) } else { None })
                .collect(),
        }
    }

    /// The membership mask, length `n`.
    pub fn to_mask(&self) -> Vec<bool> {
        match &self.repr {
            Repr::Sparse(ids) => {
                let mut mask = vec![false; self.n];
                for &v in ids {
                    mask[v as usize] = true;
                }
                mask
            }
            Repr::Dense { bits, .. } => bits.clone(),
        }
    }

    /// Calls `f` on every member in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        match &self.repr {
            Repr::Sparse(ids) => {
                for &v in ids {
                    f(v as usize);
                }
            }
            Repr::Dense { bits, .. } => {
                for (v, &b) in bits.iter().enumerate() {
                    if b {
                        f(v);
                    }
                }
            }
        }
    }

    /// Set union. Sparse when both operands are sparse, dense otherwise —
    /// a pure function of the operand representations.
    ///
    /// # Panics
    /// Panics if the universes differ.
    pub fn union(&self, other: &VertexSubset) -> VertexSubset {
        assert_eq!(self.n, other.n, "universe mismatch");
        match (&self.repr, &other.repr) {
            (Repr::Sparse(a), Repr::Sparse(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => {
                            out.push(a[i]);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            out.push(b[j]);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&a[i..]);
                out.extend_from_slice(&b[j..]);
                VertexSubset::from_sorted_ids(self.n, out)
            }
            _ => {
                let mut bits = self.to_mask();
                other.for_each(|v| bits[v] = true);
                VertexSubset::from_mask_owned(bits)
            }
        }
    }
}

impl PartialEq for VertexSubset {
    /// Semantic (membership) equality — representation does not matter.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.len() == other.len() && self.ids() == other.ids()
    }
}

impl Eq for VertexSubset {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = VertexSubset::empty(5);
        let f = VertexSubset::full(5);
        assert!(e.is_empty() && e.is_sparse());
        assert_eq!(f.len(), 5);
        assert!(!f.is_sparse());
        assert_eq!(f.ids(), vec![0, 1, 2, 3, 4]);
        assert!(f.contains(4) && !e.contains(4));
    }

    #[test]
    fn representations_compare_equal_by_membership() {
        let sparse = VertexSubset::from_sorted_ids(6, vec![1, 3, 4]);
        let dense = VertexSubset::from_mask(&[false, true, false, true, true, false]);
        assert_eq!(sparse, dense);
        assert_eq!(sparse.to_mask(), dense.to_mask());
        assert_eq!(sparse.len(), 3);
        let mut seen = Vec::new();
        dense.for_each(|v| seen.push(v));
        assert_eq!(seen, vec![1, 3, 4]);
    }

    #[test]
    fn union_covers_all_representation_pairs() {
        let a = VertexSubset::from_sorted_ids(6, vec![0, 2]);
        let b = VertexSubset::from_sorted_ids(6, vec![2, 5]);
        let c = VertexSubset::from_mask(&[false, true, true, false, false, false]);
        let ab = a.union(&b);
        assert!(ab.is_sparse());
        assert_eq!(ab.ids(), vec![0, 2, 5]);
        let ac = a.union(&c);
        assert!(!ac.is_sparse());
        assert_eq!(ac.ids(), vec![0, 1, 2]);
        assert_eq!(c.union(&a), ac);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn union_rejects_universe_mismatch() {
        let _ = VertexSubset::empty(3).union(&VertexSubset::empty(4));
    }
}
