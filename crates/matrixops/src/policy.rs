//! Execution policy: sequential or fork-join-parallel, with optional
//! grain-size tuning.
//!
//! Every primitive in this crate takes an [`ExecPolicy`]. The sequential
//! implementation is the reference (it is what the cost accounting models),
//! and the parallel implementation must produce identical results; the
//! experiment harness runs both to measure self-relative speedup, and the
//! property tests assert the equivalence.
//!
//! The number of worker threads is *not* part of the policy — it is owned by
//! the runtime (the rayon pool installed around the run; see
//! `RunConfig::threads` in `parfaclo-api`), and [`ExecPolicy::threads`]
//! merely reports the count the current policy will use. Determinism does
//! not depend on it: every parallel primitive chunks its input independently
//! of the thread count.

/// Whether a primitive should run sequentially or on the fork-join pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Plain sequential loops. Used as the reference implementation and for
    /// tiny inputs where parallel overhead dominates.
    Sequential,
    /// Data-parallel execution on the fork-join pool, gated by the default
    /// [`ExecPolicy::PAR_THRESHOLD`] grain.
    #[default]
    Parallel,
    /// Parallel execution with an explicit grain: work items of at least
    /// `grain` elements go parallel, smaller ones run sequentially. This is
    /// the tuning knob for hot paths whose per-element work differs wildly
    /// from the [`ExecPolicy::PAR_THRESHOLD`] assumption (e.g. a handful of
    /// very expensive local-search move evaluations).
    Tuned {
        /// Minimum number of elements for which this policy goes parallel.
        grain: usize,
    },
}

impl ExecPolicy {
    /// Minimum number of elements for which parallel execution is worthwhile
    /// under [`ExecPolicy::Parallel`]; below this the parallel
    /// implementations silently fall back to sequential loops to avoid
    /// paying the fork-join overhead on tiny inputs.
    pub const PAR_THRESHOLD: usize = 2048;

    /// Returns `true` if work of the given size should actually be run in
    /// parallel under this policy.
    #[inline]
    pub fn run_parallel(self, len: usize) -> bool {
        match self {
            ExecPolicy::Sequential => false,
            ExecPolicy::Parallel => len >= Self::PAR_THRESHOLD,
            ExecPolicy::Tuned { grain } => len >= grain.max(1),
        }
    }

    /// The parallelism threshold (grain) this policy applies.
    #[inline]
    pub fn grain(self) -> usize {
        match self {
            ExecPolicy::Sequential => usize::MAX,
            ExecPolicy::Parallel => Self::PAR_THRESHOLD,
            ExecPolicy::Tuned { grain } => grain.max(1),
        }
    }

    /// Number of worker threads a parallel primitive will fan out over under
    /// this policy: 1 for [`ExecPolicy::Sequential`], the current fork-join
    /// pool size otherwise.
    #[inline]
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            _ => rayon::current_num_threads(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_parallelism() {
        assert!(!ExecPolicy::Sequential.run_parallel(usize::MAX));
        assert!(!ExecPolicy::Parallel.run_parallel(ExecPolicy::PAR_THRESHOLD - 1));
        assert!(ExecPolicy::Parallel.run_parallel(ExecPolicy::PAR_THRESHOLD));
    }

    #[test]
    fn tuned_grain_overrides_threshold() {
        let fine = ExecPolicy::Tuned { grain: 4 };
        assert!(fine.run_parallel(4));
        assert!(!fine.run_parallel(3));
        assert_eq!(fine.grain(), 4);
        // grain 0 is normalized to 1 rather than "always parallel on empty".
        assert!(ExecPolicy::Tuned { grain: 0 }.run_parallel(1));
        assert!(!ExecPolicy::Tuned { grain: 0 }.run_parallel(0));
    }

    #[test]
    fn default_is_parallel() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Parallel);
    }

    #[test]
    fn threads_reflect_policy_and_pool() {
        assert_eq!(ExecPolicy::Sequential.threads(), 1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| {
            assert_eq!(ExecPolicy::Parallel.threads(), 3);
            assert_eq!(ExecPolicy::Tuned { grain: 10 }.threads(), 3);
        });
    }
}
