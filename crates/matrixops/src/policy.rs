//! Execution policy: sequential or rayon-parallel.
//!
//! Every primitive in this crate takes an [`ExecPolicy`]. The sequential implementation
//! is the reference (it is what the cost accounting models), and the parallel
//! implementation must produce identical results; the experiment harness runs both to
//! measure self-relative speedup, and the property tests assert the equivalence.

/// Whether a primitive should run sequentially or on the rayon thread pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Plain sequential loops. Used as the reference implementation and for tiny inputs
    /// where parallel overhead dominates.
    Sequential,
    /// Data-parallel execution via rayon's work-stealing pool.
    #[default]
    Parallel,
}

impl ExecPolicy {
    /// Minimum number of elements for which parallel execution is worthwhile; below this
    /// the parallel implementations silently fall back to sequential loops to avoid
    /// paying rayon's task-spawning overhead on tiny inputs.
    pub const PAR_THRESHOLD: usize = 2048;

    /// Returns `true` if work of the given size should actually be run in parallel under
    /// this policy.
    #[inline]
    pub fn run_parallel(self, len: usize) -> bool {
        matches!(self, ExecPolicy::Parallel) && len >= Self::PAR_THRESHOLD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_parallelism() {
        assert!(!ExecPolicy::Sequential.run_parallel(usize::MAX));
        assert!(!ExecPolicy::Parallel.run_parallel(ExecPolicy::PAR_THRESHOLD - 1));
        assert!(ExecPolicy::Parallel.run_parallel(ExecPolicy::PAR_THRESHOLD));
    }

    #[test]
    fn default_is_parallel() {
        assert_eq!(ExecPolicy::default(), ExecPolicy::Parallel);
    }
}
