//! Element-wise maps, reductions and distributions over dense vectors and row-major
//! matrices — the non-scan, non-sort "basic matrix operations" of Section 2.

use crate::meter::CostMeter;
use crate::policy::ExecPolicy;
use rayon::prelude::*;

/// The associative operators the paper's algorithms need for reductions and scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocOp {
    /// Addition, identity 0.
    Add,
    /// Minimum, identity +∞.
    Min,
    /// Maximum, identity −∞.
    Max,
}

impl AssocOp {
    /// Identity element of the operator.
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            AssocOp::Add => 0.0,
            AssocOp::Min => f64::INFINITY,
            AssocOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Applies the operator.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            AssocOp::Add => a + b,
            AssocOp::Min => a.min(b),
            AssocOp::Max => a.max(b),
        }
    }
}

/// Grain for element-wise primitives whose per-element work is a few flops:
/// below this many elements per task, scheduling overhead dominates. Only
/// applied to 1:1 pipelines (map/filter/collect), whose values are
/// independent of chunk boundaries — never to `reduce`, whose combine tree
/// must stay in lockstep with the sequential mirror.
const ELEMENTWISE_GRAIN: usize = 1024;

#[inline]
fn check_dims(data: &[f64], rows: usize, cols: usize) {
    assert_eq!(
        data.len(),
        rows * cols,
        "matrix data length {} does not match {rows}x{cols}",
        data.len()
    );
}

/// Reduction over an entire vector.
///
/// Both policies fold the same fixed chunks (boundaries depend only on the
/// input length) and combine the per-chunk accumulators left-to-right, so the
/// result — including the association-order-sensitive `Add` on floats — is
/// byte-identical under `Sequential`, `Parallel`, and any thread count.
pub fn reduce(data: &[f64], op: AssocOp, policy: ExecPolicy, meter: &CostMeter) -> f64 {
    meter.add_primitive(data.len() as u64);
    if policy.run_parallel(data.len()) {
        data.par_iter()
            .copied()
            .reduce(|| op.identity(), |a, b| op.apply(a, b))
    } else {
        // Sequential mirror of the engine's chunked combine structure.
        let chunk = rayon::deterministic_chunk_len(data.len(), 1);
        data.chunks(chunk).fold(op.identity(), |acc, c| {
            let part = c.iter().copied().fold(op.identity(), |a, b| op.apply(a, b));
            op.apply(acc, part)
        })
    }
}

/// Index and value of the minimum element of a vector (ties towards the smaller index).
/// Returns `None` for an empty vector.
pub fn argmin(data: &[f64], policy: ExecPolicy, meter: &CostMeter) -> Option<(usize, f64)> {
    meter.add_primitive(data.len() as u64);
    let pick = |a: (usize, f64), b: (usize, f64)| -> (usize, f64) {
        if b.1 < a.1 || (b.1 == a.1 && b.0 < a.0) {
            b
        } else {
            a
        }
    };
    if data.is_empty() {
        return None;
    }
    if policy.run_parallel(data.len()) {
        Some(
            data.par_iter()
                .copied()
                .enumerate()
                .reduce(|| (usize::MAX, f64::INFINITY), pick),
        )
    } else {
        Some(
            data.iter()
                .copied()
                .enumerate()
                .fold((usize::MAX, f64::INFINITY), pick),
        )
    }
}

/// Element-wise map over a vector, producing a new vector.
pub fn map<F>(data: &[f64], f: F, policy: ExecPolicy, meter: &CostMeter) -> Vec<f64>
where
    F: Fn(f64) -> f64 + Sync + Send,
{
    meter.add_primitive(data.len() as u64);
    if policy.run_parallel(data.len()) {
        data.par_iter()
            .with_min_len(ELEMENTWISE_GRAIN)
            .map(|&x| f(x))
            .collect()
    } else {
        data.iter().map(|&x| f(x)).collect()
    }
}

/// Indexed element-wise map over a vector.
pub fn map_indexed<F>(data: &[f64], f: F, policy: ExecPolicy, meter: &CostMeter) -> Vec<f64>
where
    F: Fn(usize, f64) -> f64 + Sync + Send,
{
    meter.add_primitive(data.len() as u64);
    if policy.run_parallel(data.len()) {
        data.par_iter()
            .with_min_len(ELEMENTWISE_GRAIN)
            .enumerate()
            .map(|(i, &x)| f(i, x))
            .collect()
    } else {
        data.iter().enumerate().map(|(i, &x)| f(i, x)).collect()
    }
}

/// Reduction across each **row** of a row-major `rows x cols` matrix, producing a vector
/// of length `rows`.
pub fn row_reduce(
    data: &[f64],
    rows: usize,
    cols: usize,
    op: AssocOp,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    check_dims(data, rows, cols);
    meter.add_primitive(data.len() as u64);
    let reduce_row = |r: usize| -> f64 {
        data[r * cols..(r + 1) * cols]
            .iter()
            .copied()
            .fold(op.identity(), |a, b| op.apply(a, b))
    };
    if policy.run_parallel(data.len()) {
        (0..rows).into_par_iter().map(reduce_row).collect()
    } else {
        (0..rows).map(reduce_row).collect()
    }
}

/// Reduction across each **column** of a row-major `rows x cols` matrix, producing a
/// vector of length `cols`.
pub fn col_reduce(
    data: &[f64],
    rows: usize,
    cols: usize,
    op: AssocOp,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    check_dims(data, rows, cols);
    meter.add_primitive(data.len() as u64);
    let reduce_col = |c: usize| -> f64 {
        (0..rows)
            .map(|r| data[r * cols + c])
            .fold(op.identity(), |a, b| op.apply(a, b))
    };
    if policy.run_parallel(data.len()) {
        (0..cols).into_par_iter().map(reduce_col).collect()
    } else {
        (0..cols).map(reduce_col).collect()
    }
}

/// Per-row argmin of a row-major matrix: for each row, the column index and value of the
/// smallest entry (ties towards the smaller column).
pub fn row_argmin(
    data: &[f64],
    rows: usize,
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<(usize, f64)> {
    check_dims(data, rows, cols);
    meter.add_primitive(data.len() as u64);
    let arg_row = |r: usize| -> (usize, f64) {
        let row = &data[r * cols..(r + 1) * cols];
        let mut best = (usize::MAX, f64::INFINITY);
        for (c, &v) in row.iter().enumerate() {
            if v < best.1 {
                best = (c, v);
            }
        }
        best
    };
    if policy.run_parallel(data.len()) {
        (0..rows).into_par_iter().map(arg_row).collect()
    } else {
        (0..rows).map(arg_row).collect()
    }
}

/// "Distribution" primitive: builds the `rows x cols` matrix whose row `r` is the scalar
/// `values[r]` replicated across the row (the paper uses this to broadcast per-facility
/// or per-client values across the distance matrix).
pub fn distribute_rows(
    values: &[f64],
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    let rows = values.len();
    meter.add_primitive((rows * cols) as u64);
    if policy.run_parallel(rows * cols) {
        values
            .par_iter()
            .with_min_len(ELEMENTWISE_GRAIN / cols.max(1) + 1)
            .flat_map_iter(|&v| std::iter::repeat(v).take(cols))
            .collect()
    } else {
        values
            .iter()
            .flat_map(|&v| std::iter::repeat(v).take(cols))
            .collect()
    }
}

/// Combines two equally-shaped matrices (or vectors) element-wise.
pub fn zip_with<F>(a: &[f64], b: &[f64], f: F, policy: ExecPolicy, meter: &CostMeter) -> Vec<f64>
where
    F: Fn(f64, f64) -> f64 + Sync + Send,
{
    assert_eq!(a.len(), b.len(), "zip_with requires equal lengths");
    meter.add_primitive(a.len() as u64);
    if policy.run_parallel(a.len()) {
        a.par_iter()
            .with_min_len(ELEMENTWISE_GRAIN)
            .zip(b.par_iter())
            .map(|(&x, &y)| f(x, y))
            .collect()
    } else {
        a.iter().zip(b.iter()).map(|(&x, &y)| f(x, y)).collect()
    }
}

/// Transposes a row-major `rows x cols` matrix into a `cols x rows` one.
pub fn transpose(
    data: &[f64],
    rows: usize,
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    check_dims(data, rows, cols);
    meter.add_primitive(data.len() as u64);
    let make_row = |c: usize| -> Vec<f64> { (0..rows).map(|r| data[r * cols + c]).collect() };
    if policy.run_parallel(data.len()) {
        (0..cols).into_par_iter().flat_map_iter(make_row).collect()
    } else {
        (0..cols).flat_map(make_row).collect()
    }
}

/// Counts the elements of a boolean mask that are set. Masks are how the paper's
/// algorithms represent subsets of facilities/clients ("The subset I ⊂ F can be
/// represented as a bit mask over F", Section 4).
pub fn count_true(mask: &[bool], policy: ExecPolicy, meter: &CostMeter) -> usize {
    meter.add_primitive(mask.len() as u64);
    if policy.run_parallel(mask.len()) {
        mask.par_iter()
            .with_min_len(ELEMENTWISE_GRAIN)
            .filter(|&&b| b)
            .count()
    } else {
        mask.iter().filter(|&&b| b).count()
    }
}

/// Returns the indices at which the mask is set ("pack" / filter primitive).
pub fn pack_indices(mask: &[bool], policy: ExecPolicy, meter: &CostMeter) -> Vec<usize> {
    meter.add_primitive(mask.len() as u64);
    if policy.run_parallel(mask.len()) {
        mask.par_iter()
            .with_min_len(ELEMENTWISE_GRAIN)
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
            .collect()
    } else {
        mask.iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_policies() -> [ExecPolicy; 2] {
        [ExecPolicy::Sequential, ExecPolicy::Parallel]
    }

    #[test]
    fn assoc_op_identities() {
        assert_eq!(AssocOp::Add.apply(AssocOp::Add.identity(), 5.0), 5.0);
        assert_eq!(AssocOp::Min.apply(AssocOp::Min.identity(), 5.0), 5.0);
        assert_eq!(AssocOp::Max.apply(AssocOp::Max.identity(), 5.0), 5.0);
    }

    #[test]
    fn reduce_matches_std() {
        let data: Vec<f64> = (0..5000).map(|x| (x % 13) as f64).collect();
        let meter = CostMeter::new();
        for p in both_policies() {
            assert_eq!(
                reduce(&data, AssocOp::Add, p, &meter),
                data.iter().sum::<f64>()
            );
            assert_eq!(reduce(&data, AssocOp::Min, p, &meter), 0.0);
            assert_eq!(reduce(&data, AssocOp::Max, p, &meter), 12.0);
        }
    }

    #[test]
    fn argmin_finds_first_minimum() {
        let meter = CostMeter::new();
        let data = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        for p in both_policies() {
            assert_eq!(argmin(&data, p, &meter), Some((1, 1.0)));
        }
        assert_eq!(argmin(&[], ExecPolicy::Sequential, &meter), None);
        // Large input to exercise the parallel path.
        let mut big = vec![10.0; 5000];
        big[3777] = -1.0;
        assert_eq!(
            argmin(&big, ExecPolicy::Parallel, &meter),
            Some((3777, -1.0))
        );
    }

    #[test]
    fn map_variants() {
        let meter = CostMeter::new();
        let data = vec![1.0, 2.0, 3.0];
        for p in both_policies() {
            assert_eq!(map(&data, |x| x * 2.0, p, &meter), vec![2.0, 4.0, 6.0]);
            assert_eq!(
                map_indexed(&data, |i, x| x + i as f64, p, &meter),
                vec![1.0, 3.0, 5.0]
            );
        }
    }

    #[test]
    fn row_and_col_reduce() {
        let meter = CostMeter::new();
        // 2x3 matrix [[1,2,3],[4,5,6]]
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for p in both_policies() {
            assert_eq!(
                row_reduce(&data, 2, 3, AssocOp::Add, p, &meter),
                vec![6.0, 15.0]
            );
            assert_eq!(
                col_reduce(&data, 2, 3, AssocOp::Add, p, &meter),
                vec![5.0, 7.0, 9.0]
            );
            assert_eq!(
                row_reduce(&data, 2, 3, AssocOp::Min, p, &meter),
                vec![1.0, 4.0]
            );
            assert_eq!(
                col_reduce(&data, 2, 3, AssocOp::Max, p, &meter),
                vec![4.0, 5.0, 6.0]
            );
        }
    }

    #[test]
    fn row_argmin_ties_towards_smaller_column() {
        let meter = CostMeter::new();
        let data = vec![2.0, 1.0, 1.0, 7.0, 7.0, 7.0];
        for p in both_policies() {
            assert_eq!(row_argmin(&data, 2, 3, p, &meter), vec![(1, 1.0), (0, 7.0)]);
        }
    }

    #[test]
    fn distribute_and_zip() {
        let meter = CostMeter::new();
        for p in both_policies() {
            assert_eq!(
                distribute_rows(&[1.0, 2.0], 3, p, &meter),
                vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
            );
            assert_eq!(
                zip_with(&[1.0, 2.0], &[10.0, 20.0], |a, b| a + b, p, &meter),
                vec![11.0, 22.0]
            );
        }
    }

    #[test]
    fn transpose_round_trip() {
        let meter = CostMeter::new();
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        for p in both_policies() {
            let t = transpose(&data, 2, 3, p, &meter);
            assert_eq!(t, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
            let back = transpose(&t, 3, 2, p, &meter);
            assert_eq!(back, data);
        }
    }

    #[test]
    fn masks() {
        let meter = CostMeter::new();
        let mask = vec![true, false, true, true, false];
        for p in both_policies() {
            assert_eq!(count_true(&mask, p, &meter), 3);
            assert_eq!(pack_indices(&mask, p, &meter), vec![0, 2, 3]);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_large_input() {
        let meter = CostMeter::new();
        let rows = 64;
        let cols = 97;
        let data: Vec<f64> = (0..rows * cols)
            .map(|x| ((x * 31 + 7) % 101) as f64)
            .collect();
        for op in [AssocOp::Add, AssocOp::Min, AssocOp::Max] {
            assert_eq!(
                row_reduce(&data, rows, cols, op, ExecPolicy::Sequential, &meter),
                row_reduce(&data, rows, cols, op, ExecPolicy::Parallel, &meter)
            );
            assert_eq!(
                col_reduce(&data, rows, cols, op, ExecPolicy::Sequential, &meter),
                col_reduce(&data, rows, cols, op, ExecPolicy::Parallel, &meter)
            );
        }
        assert_eq!(
            transpose(&data, rows, cols, ExecPolicy::Sequential, &meter),
            transpose(&data, rows, cols, ExecPolicy::Parallel, &meter)
        );
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn dimension_mismatch_panics() {
        let meter = CostMeter::new();
        let _ = row_reduce(
            &[1.0, 2.0, 3.0],
            2,
            2,
            AssocOp::Add,
            ExecPolicy::Sequential,
            &meter,
        );
    }

    #[test]
    fn meter_counts_primitives() {
        let meter = CostMeter::new();
        let data = vec![1.0; 10];
        let _ = reduce(&data, AssocOp::Add, ExecPolicy::Sequential, &meter);
        let _ = map(&data, |x| x, ExecPolicy::Sequential, &meter);
        let r = meter.report();
        assert_eq!(r.primitive_calls, 2);
        assert_eq!(r.element_ops, 20);
    }
}
