//! Prefix sums (scans).
//!
//! "A prefix sum returns to each element of a sequence the sum of previous elements"
//! (Section 2). The paper uses prefix sums with `+`, `min` and `max`; Algorithm 4.1's
//! maximal-star computation is the main consumer (a prefix sum over each facility's
//! sorted client distances).
//!
//! Both policies run the classical two-pass blocked scan: partition the input
//! into chunks (boundaries a pure function of the length, never the thread
//! count), scan each chunk independently, scan the chunk totals sequentially
//! (there are few of them), then add each chunk's offset in a second pass.
//! Sharing one blocked structure keeps the floating-point association order —
//! and hence the exact bytes — identical under `Sequential`, `Parallel`, and
//! any pool size. This does `O(n)` work and `O(log n)` depth up to the
//! chunking granularity.

use crate::meter::CostMeter;
use crate::ops::AssocOp;
use crate::policy::ExecPolicy;
use rayon::prelude::*;

/// Inclusive scan: `out[i] = op(data[0], ..., data[i])`.
pub fn inclusive_scan(
    data: &[f64],
    op: AssocOp,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    meter.add_primitive(data.len() as u64);
    blocked_scan(data, op, true, policy.run_parallel(data.len()))
}

/// Exclusive scan: `out[i] = op(data[0], ..., data[i-1])`, `out[0] = identity`.
pub fn exclusive_scan(
    data: &[f64],
    op: AssocOp,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    meter.add_primitive(data.len() as u64);
    blocked_scan(data, op, false, policy.run_parallel(data.len()))
}

/// Per-row inclusive scan over a row-major `rows x cols` matrix.
pub fn row_inclusive_scan(
    data: &[f64],
    rows: usize,
    cols: usize,
    op: AssocOp,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<f64> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    meter.add_primitive(data.len() as u64);
    let scan_row =
        |r: usize| -> Vec<f64> { sequential_scan(&data[r * cols..(r + 1) * cols], op, true) };
    if policy.run_parallel(data.len()) {
        (0..rows).into_par_iter().flat_map_iter(scan_row).collect()
    } else {
        (0..rows).flat_map(scan_row).collect()
    }
}

fn sequential_scan(data: &[f64], op: AssocOp, inclusive: bool) -> Vec<f64> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = op.identity();
    for &x in data {
        if inclusive {
            acc = op.apply(acc, x);
            out.push(acc);
        } else {
            out.push(acc);
            acc = op.apply(acc, x);
        }
    }
    out
}

/// The blocked two-pass scan, in one implementation for both policies so the
/// floating-point association order — and hence the exact bytes — is
/// identical under `Sequential`, `Parallel`, and any thread count. The chunk
/// width is a pure function of `n` (never the thread count), and inputs that
/// fit a single chunk degenerate to the plain accumulator scan exactly.
fn blocked_scan(data: &[f64], op: AssocOp, inclusive: bool, parallel: bool) -> Vec<f64> {
    let n = data.len();
    let chunk = rayon::deterministic_chunk_len(n, 1024);
    let fold_chunk =
        |c: &[f64]| -> f64 { c.iter().copied().fold(op.identity(), |a, b| op.apply(a, b)) };
    let scan_chunk = |out_chunk: &mut [f64], in_chunk: &[f64], offset: f64| {
        let mut acc = offset;
        for (o, &x) in out_chunk.iter_mut().zip(in_chunk.iter()) {
            if inclusive {
                acc = op.apply(acc, x);
                *o = acc;
            } else {
                *o = acc;
                acc = op.apply(acc, x);
            }
        }
    };
    // Pass 1: per-chunk totals.
    let totals: Vec<f64> = if parallel {
        data.par_chunks(chunk).map(fold_chunk).collect()
    } else {
        data.chunks(chunk).map(fold_chunk).collect()
    };
    // Sequential scan over the (few) chunk totals to get per-chunk offsets.
    let offsets = sequential_scan(&totals, op, false);
    // Pass 2: scan each chunk with its offset.
    let mut out = vec![0.0; n];
    if parallel {
        out.par_chunks_mut(chunk)
            .zip(data.par_chunks(chunk))
            .zip(offsets.par_iter())
            .for_each(|((out_chunk, in_chunk), &offset)| scan_chunk(out_chunk, in_chunk, offset));
    } else {
        for ((out_chunk, in_chunk), &offset) in out
            .chunks_mut(chunk)
            .zip(data.chunks(chunk))
            .zip(offsets.iter())
        {
            scan_chunk(out_chunk, in_chunk, offset);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_scan_add() {
        let meter = CostMeter::new();
        let data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            inclusive_scan(&data, AssocOp::Add, ExecPolicy::Sequential, &meter),
            vec![1.0, 3.0, 6.0, 10.0]
        );
    }

    #[test]
    fn exclusive_scan_add() {
        let meter = CostMeter::new();
        let data = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(
            exclusive_scan(&data, AssocOp::Add, ExecPolicy::Sequential, &meter),
            vec![0.0, 1.0, 3.0, 6.0]
        );
    }

    #[test]
    fn min_and_max_scans() {
        let meter = CostMeter::new();
        let data = vec![3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(
            inclusive_scan(&data, AssocOp::Min, ExecPolicy::Sequential, &meter),
            vec![3.0, 1.0, 1.0, 1.0, 1.0]
        );
        assert_eq!(
            inclusive_scan(&data, AssocOp::Max, ExecPolicy::Sequential, &meter),
            vec![3.0, 3.0, 4.0, 4.0, 5.0]
        );
    }

    #[test]
    fn empty_and_singleton() {
        let meter = CostMeter::new();
        assert!(inclusive_scan(&[], AssocOp::Add, ExecPolicy::Sequential, &meter).is_empty());
        assert_eq!(
            exclusive_scan(&[7.0], AssocOp::Add, ExecPolicy::Sequential, &meter),
            vec![0.0]
        );
        assert_eq!(
            inclusive_scan(&[7.0], AssocOp::Add, ExecPolicy::Parallel, &meter),
            vec![7.0]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let meter = CostMeter::new();
        let data: Vec<f64> = (0..10_000).map(|x| ((x * 37 + 11) % 19) as f64).collect();
        for op in [AssocOp::Add, AssocOp::Min, AssocOp::Max] {
            let seq = inclusive_scan(&data, op, ExecPolicy::Sequential, &meter);
            let par = inclusive_scan(&data, op, ExecPolicy::Parallel, &meter);
            for (a, b) in seq.iter().zip(par.iter()) {
                assert!((a - b).abs() < 1e-9, "{op:?}: {a} vs {b}");
            }
            let seq_ex = exclusive_scan(&data, op, ExecPolicy::Sequential, &meter);
            let par_ex = exclusive_scan(&data, op, ExecPolicy::Parallel, &meter);
            for (a, b) in seq_ex.iter().zip(par_ex.iter()) {
                // The first exclusive-scan entry is the identity, which may be ±∞ for
                // Min/Max; compare exactly in that case.
                assert!(a == b || (a - b).abs() < 1e-9);
            }
        }
    }

    /// Bitwise policy invariance on noisy floats spanning many chunks — the
    /// exact regression the blocked sequential mirror exists for (fp addition
    /// is not associative, so any structural divergence shows up in the bits).
    #[test]
    fn scan_policies_are_bit_identical_on_noisy_floats() {
        let meter = CostMeter::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        let data: Vec<f64> = (0..40_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 100.0 - 50.0
            })
            .collect();
        for inclusive in [true, false] {
            let scan = if inclusive {
                inclusive_scan
            } else {
                exclusive_scan
            };
            let seq = scan(&data, AssocOp::Add, ExecPolicy::Sequential, &meter);
            let par = scan(&data, AssocOp::Add, ExecPolicy::Parallel, &meter);
            for (i, (a, b)) in seq.iter().zip(par.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "inclusive={inclusive}, index {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn row_scan_scans_each_row_independently() {
        let meter = CostMeter::new();
        // 2x3: [[1,2,3],[10,20,30]]
        let data = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        for p in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
            assert_eq!(
                row_inclusive_scan(&data, 2, 3, AssocOp::Add, p, &meter),
                vec![1.0, 3.0, 6.0, 10.0, 30.0, 60.0]
            );
        }
    }
}
