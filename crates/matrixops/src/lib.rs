//! # parfaclo-matrixops
//!
//! The "basic matrix operations" substrate assumed by Section 2 of
//! *Blelloch & Tangwongsan, SPAA 2010*.
//!
//! The paper expresses every parallel algorithm in terms of a small set of primitives
//! over dense vectors and matrices:
//!
//! * parallel loops (element-wise map) over a vector or matrix,
//! * summation / minimum / maximum **reductions** across the rows or columns,
//! * **prefix sums** (scans) with various associative operators,
//! * **distribution** of a per-row (or per-column) value across the row (column),
//! * **transposing** the matrix, and
//! * **sorting** the rows of a matrix.
//!
//! On an EREW PRAM each non-sort primitive costs `O(m)` work and `O(log m)` depth, and a
//! sort costs `O(m log m)` work; the paper's bounds are stated as a number of calls to
//! these primitives. This crate implements each primitive twice — sequentially and with
//! rayon — selected by an [`ExecPolicy`], and counts the *measured* work, the number of
//! primitive invocations, and the number of synchronisation rounds in a [`CostMeter`],
//! so the experiment harness can compare measured totals against the paper's
//! `O(m log_{1+ε} m)`-style bounds.
//!
//! The matrix layout convention is row-major `data[row * cols + col]`, matching
//! `parfaclo_metric::DistanceMatrix`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod meter;
pub mod ops;
pub mod policy;
pub mod scan;
pub mod sort;

pub use meter::{CostMeter, CostReport};
pub use policy::ExecPolicy;

#[cfg(test)]
mod integration_tests {
    use crate::meter::CostMeter;
    use crate::ops;
    use crate::policy::ExecPolicy;

    /// The primitives compose: a row-reduce followed by a scan followed by a global
    /// reduce mirrors the structure of a single round of the paper's algorithms.
    #[test]
    fn primitives_compose_like_a_paper_round() {
        let rows = 8;
        let cols = 16;
        let data: Vec<f64> = (0..rows * cols).map(|x| (x % 7) as f64).collect();
        let meter = CostMeter::new();
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
            let row_sums = ops::row_reduce(&data, rows, cols, ops::AssocOp::Add, policy, &meter);
            let prefix = crate::scan::inclusive_scan(&row_sums, ops::AssocOp::Add, policy, &meter);
            let total = ops::reduce(&prefix, ops::AssocOp::Max, policy, &meter);
            let direct: f64 = data.iter().sum();
            assert!((total - direct).abs() < 1e-9);
        }
        let report = meter.report();
        assert!(report.element_ops > 0);
        assert!(report.primitive_calls >= 6);
    }
}
