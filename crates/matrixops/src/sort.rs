//! Row sorting and argsort.
//!
//! Section 2 allows "sorting the rows of a matrix" as a primitive costing
//! `O(m log m)` work. Algorithm 4.1 pre-sorts each facility's client distances once
//! ("the rows can be presorted to give each client its distances from facilities in
//! order. In the original order, each element can be marked with its rank"), so what the
//! algorithms actually need is an **argsort with ranks**: for each row, the permutation
//! that sorts it and the rank of every original position.

use crate::meter::CostMeter;
use crate::policy::ExecPolicy;
use rayon::prelude::*;

/// The result of argsorting one row: the sorting permutation, with the rank
/// view available on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowOrder {
    /// `order[k]` is the original index of the `k`-th smallest element.
    pub order: Vec<u32>,
}

impl RowOrder {
    /// Builds the order/rank pair for one row.
    ///
    /// For rows of finite, non-negative values (every distance row) the sort
    /// runs on packed `(value_bits << 32) | index` integers: non-negative
    /// IEEE-754 doubles order by their bit patterns exactly as they order
    /// numerically, so one unstable integer sort yields the same
    /// (value, index)-lexicographic permutation as the comparison sort —
    /// several times faster on long rows, since each compare touches one
    /// contiguous `u128` instead of two indirect float loads. Rows with
    /// negatives, `-0.0` or non-finite values take the comparison path
    /// (where `-0.0` ties with `+0.0` and NaN panics, as before).
    fn from_row(row: &[f64]) -> RowOrder {
        Self::from_row_with(row, &mut Vec::new())
    }

    /// [`RowOrder::from_row`] with a caller-owned scratch buffer for the
    /// packed keys, so batch callers sorting many long rows reuse one
    /// allocation instead of churning a fresh `16·cols`-byte vector (and its
    /// page faults) per row.
    fn from_row_with(row: &[f64], packed: &mut Vec<u128>) -> RowOrder {
        let n = row.len();
        assert!(n <= u32::MAX as usize, "row length exceeds u32 index space");
        let order: Vec<u32> = if row.iter().all(|&v| v.is_finite() && v.to_bits() >> 63 == 0) {
            packed.clear();
            packed.extend(
                row.iter()
                    .enumerate()
                    .map(|(i, &v)| (u128::from(v.to_bits()) << 32) | i as u128),
            );
            packed.sort_unstable();
            packed.iter().map(|&p| p as u32).collect()
        } else {
            let mut ord: Vec<u32> = (0..n as u32).collect();
            ord.sort_by(|&a, &b| {
                row[a as usize]
                    .partial_cmp(&row[b as usize])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            ord
        };
        RowOrder { order }
    }

    /// `rank[i]` — the position of original element `i` in the sorted order
    /// (the inverse permutation of [`RowOrder::order`]). Computed on demand:
    /// the permutation is what every current consumer keeps, and inverting a
    /// long row is a cache-hostile random scatter worth paying only when
    /// ranks are actually wanted.
    pub fn rank(&self) -> Vec<u32> {
        let mut rank = vec![0u32; self.order.len()];
        for (pos, &idx) in self.order.iter().enumerate() {
            rank[idx as usize] = pos as u32;
        }
        rank
    }
}

/// Argsorts every row of a row-major `rows x cols` matrix.
///
/// Ties are broken towards the smaller original index, so the result is deterministic.
pub fn argsort_rows(
    data: &[f64],
    rows: usize,
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
) -> Vec<RowOrder> {
    assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
    meter.add_sort(data.len() as u64);
    let sort_row = |r: usize| RowOrder::from_row(&data[r * cols..(r + 1) * cols]);
    if policy.run_parallel(data.len()) {
        (0..rows).into_par_iter().map(sort_row).collect()
    } else {
        (0..rows).map(sort_row).collect()
    }
}

/// Argsorts every row of a **virtual** `rows x cols` matrix whose entries are
/// produced by `key(row, col)` on demand.
///
/// Semantically identical to materialising the matrix and calling
/// [`argsort_rows`] — same tie-breaking (towards the smaller original index),
/// same meter charge (one sort of `rows * cols` elements) — but the peak
/// memory is one `cols`-length scratch row per in-flight row instead of the
/// whole matrix. This is what lets the facility-location presort run against
/// an implicit distance oracle without ever allocating the dense matrix.
pub fn argsort_rows_by_key<F>(
    rows: usize,
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
    key: F,
) -> Vec<RowOrder>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    argsort_rows_filled(rows, cols, policy, meter, |r, out| {
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = key(r, c);
        }
    })
}

/// Argsorts every row of a virtual `rows x cols` matrix whose rows are
/// produced whole by `fill(row, scratch)` — the batch-filling sibling of
/// [`argsort_rows_by_key`], identical in semantics, tie-breaking and meter
/// charge. Callers with a batched row producer (a distance oracle's blocked
/// range kernels) fill the `cols`-length scratch in one call instead of
/// `cols` per-element callbacks.
pub fn argsort_rows_filled<F>(
    rows: usize,
    cols: usize,
    policy: ExecPolicy,
    meter: &CostMeter,
    fill: F,
) -> Vec<RowOrder>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    meter.add_sort((rows * cols) as u64);
    // Rows are processed in deterministic contiguous chunks, each chunk
    // reusing one row scratch and one packed-key scratch across its rows —
    // on long rows the transient allocations (24·cols bytes per row)
    // otherwise dominate the sort itself through page-fault churn.
    let chunk = rayon::deterministic_chunk_len(rows.max(1), 1);
    let indices: Vec<usize> = (0..rows).collect();
    let sort_chunk = |rs: &[usize]| -> Vec<RowOrder> {
        let mut row = vec![0.0; cols];
        let mut packed: Vec<u128> = Vec::new();
        rs.iter()
            .map(|&r| {
                fill(r, &mut row);
                RowOrder::from_row_with(&row, &mut packed)
            })
            .collect()
    };
    let per_chunk: Vec<Vec<RowOrder>> = if policy.run_parallel(rows * cols) {
        indices.par_chunks(chunk).map(sort_chunk).collect()
    } else {
        indices.chunks(chunk).map(sort_chunk).collect()
    };
    per_chunk.into_iter().flatten().collect()
}

/// Sorts a vector of `f64` ascending (ties keep relative order), returning a new vector.
pub fn sort_values(data: &[f64], policy: ExecPolicy, meter: &CostMeter) -> Vec<f64> {
    meter.add_sort(data.len() as u64);
    let mut v = data.to_vec();
    if policy.run_parallel(data.len()) {
        v.par_sort_by(|a, b| a.partial_cmp(b).unwrap());
    } else {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
    v
}

/// Sorts and deduplicates a vector of `f64` (used for the k-center distance set `D`).
pub fn sorted_distinct(data: &[f64], policy: ExecPolicy, meter: &CostMeter) -> Vec<f64> {
    let mut v = sort_values(data, policy, meter);
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_single_row() {
        let meter = CostMeter::new();
        let data = vec![3.0, 1.0, 2.0];
        let orders = argsort_rows(&data, 1, 3, ExecPolicy::Sequential, &meter);
        assert_eq!(orders[0].order, vec![1, 2, 0]);
        assert_eq!(orders[0].rank(), vec![2, 0, 1]);
    }

    #[test]
    fn argsort_breaks_ties_by_index() {
        let meter = CostMeter::new();
        let data = vec![5.0, 5.0, 1.0, 5.0];
        let orders = argsort_rows(&data, 1, 4, ExecPolicy::Sequential, &meter);
        assert_eq!(orders[0].order, vec![2, 0, 1, 3]);
    }

    #[test]
    fn argsort_multiple_rows_independent() {
        let meter = CostMeter::new();
        let data = vec![2.0, 1.0, 10.0, 20.0];
        let orders = argsort_rows(&data, 2, 2, ExecPolicy::Sequential, &meter);
        assert_eq!(orders[0].order, vec![1, 0]);
        assert_eq!(orders[1].order, vec![0, 1]);
    }

    #[test]
    fn order_and_rank_are_inverse_permutations() {
        let meter = CostMeter::new();
        let data: Vec<f64> = (0..500).map(|x| ((x * 7919 + 13) % 97) as f64).collect();
        let orders = argsort_rows(&data, 5, 100, ExecPolicy::Parallel, &meter);
        for ro in &orders {
            for (pos, &idx) in ro.order.iter().enumerate() {
                assert_eq!(ro.rank()[idx as usize] as usize, pos);
            }
            // Sorted order is non-decreasing.
            for w in ro.order.windows(2) {
                let row_start = orders.iter().position(|x| std::ptr::eq(x, ro)).unwrap() * 100;
                let a = data[row_start + w[0] as usize];
                let b = data[row_start + w[1] as usize];
                assert!(a <= b);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let meter = CostMeter::new();
        let data: Vec<f64> = (0..4000).map(|x| ((x * 31 + 3) % 500) as f64).collect();
        let seq = argsort_rows(&data, 8, 500, ExecPolicy::Sequential, &meter);
        let par = argsort_rows(&data, 8, 500, ExecPolicy::Parallel, &meter);
        assert_eq!(seq, par);
    }

    #[test]
    fn argsort_by_key_matches_materialised_argsort() {
        let meter = CostMeter::new();
        let data: Vec<f64> = (0..600).map(|x| ((x * 37 + 11) % 53) as f64).collect();
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
            let dense = argsort_rows(&data, 6, 100, policy, &meter);
            let keyed = argsort_rows_by_key(6, 100, policy, &meter, |r, c| data[r * 100 + c]);
            assert_eq!(dense, keyed);
        }
    }

    #[test]
    fn argsort_filled_matches_materialised_argsort() {
        let meter = CostMeter::new();
        let data: Vec<f64> = (0..600).map(|x| ((x * 41 + 7) % 59) as f64).collect();
        for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel] {
            let dense = argsort_rows(&data, 6, 100, policy, &meter);
            let filled = argsort_rows_filled(6, 100, policy, &meter, |r, out| {
                out.copy_from_slice(&data[r * 100..(r + 1) * 100]);
            });
            assert_eq!(dense, filled);
        }
    }

    #[test]
    fn packed_and_comparison_paths_agree() {
        // A non-negative row (packed integer path) and its negated copy
        // (comparison fallback) must produce mirror-consistent orders, and
        // ties must break towards the smaller index on both paths.
        let row = vec![2.5, 0.0, 7.0, 0.0, 2.5, 1.0, 0.0];
        let pos = RowOrder::from_row(&row);
        assert_eq!(pos.order, vec![1, 3, 6, 5, 0, 4, 2]);
        let neg: Vec<f64> = row.iter().map(|&v| -v - 1.0).collect();
        let fallback = RowOrder::from_row(&neg);
        let mut expect: Vec<u32> = (0..row.len() as u32).collect();
        expect.sort_by(|&a, &b| {
            neg[a as usize]
                .partial_cmp(&neg[b as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        assert_eq!(fallback.order, expect);
    }

    #[test]
    fn sort_values_and_distinct() {
        let meter = CostMeter::new();
        let data = vec![3.0, 1.0, 2.0, 1.0];
        assert_eq!(
            sort_values(&data, ExecPolicy::Sequential, &meter),
            vec![1.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(
            sorted_distinct(&data, ExecPolicy::Sequential, &meter),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn meter_counts_sorts() {
        let meter = CostMeter::new();
        let data = vec![1.0; 16];
        let _ = sort_values(&data, ExecPolicy::Sequential, &meter);
        let _ = argsort_rows(&data, 4, 4, ExecPolicy::Sequential, &meter);
        assert_eq!(meter.report().sort_calls, 2);
    }
}
