//! Work / primitive-call / round accounting.
//!
//! The paper's cost model counts (i) total work in the EREW PRAM sense, and (ii) the
//! number of calls to the basic matrix operations, with depth being `O(log m)` per
//! primitive call. A [`CostMeter`] tracks both plus the number of algorithm-level
//! *rounds* (iterations of the outer loops of Algorithms 4.1 and 5.1, Luby rounds in the
//! dominator-set algorithms, and so on), so the experiment harness can report measured
//! quantities side by side with the paper's bounds, e.g. the `O(log_{1+ε} m)` round
//! bound of Lemma 4.8 or the `O(m log_{1+ε} m)` work bound of Theorem 5.4.
//!
//! Counters are relaxed atomics: they are incremented from inside rayon tasks and only
//! ever read after the parallel region has completed, so no ordering is required.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe cost counters.
///
/// Cheap to clone handles are not provided on purpose: algorithms take `&CostMeter` and
/// the owner decides the aggregation scope (per call, per experiment row, ...).
#[derive(Debug, Default)]
pub struct CostMeter {
    element_ops: AtomicU64,
    primitive_calls: AtomicU64,
    sort_calls: AtomicU64,
    rounds: AtomicU64,
}

/// A point-in-time snapshot of a [`CostMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Total element-wise operations performed ("work" in the PRAM sense).
    pub element_ops: u64,
    /// Number of basic-matrix-operation invocations (each is `O(log m)` depth on a
    /// PRAM).
    pub primitive_calls: u64,
    /// Number of sort invocations (each is `O(m log m)` work, `O(log^2 m)` depth).
    pub sort_calls: u64,
    /// Number of algorithm-level rounds (outer-loop iterations).
    pub rounds: u64,
}

impl CostMeter {
    /// Creates a meter with all counters at zero.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// Adds `n` units of element-wise work.
    #[inline]
    pub fn add_work(&self, n: u64) {
        self.element_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one invocation of a basic matrix operation over `n` elements.
    #[inline]
    pub fn add_primitive(&self, n: u64) {
        self.primitive_calls.fetch_add(1, Ordering::Relaxed);
        self.element_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one sort over `n` elements, costed at `n * ceil(log2 n)` work.
    #[inline]
    pub fn add_sort(&self, n: u64) {
        self.sort_calls.fetch_add(1, Ordering::Relaxed);
        let logn = 64 - (n.max(2) - 1).leading_zeros() as u64; // ceil(log2 n)
        self.element_ops.fetch_add(n * logn, Ordering::Relaxed);
    }

    /// Records one algorithm-level round.
    #[inline]
    pub fn add_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` algorithm-level rounds at once.
    #[inline]
    pub fn add_rounds(&self, n: u64) {
        self.rounds.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of all counters.
    pub fn report(&self) -> CostReport {
        CostReport {
            element_ops: self.element_ops.load(Ordering::Relaxed),
            primitive_calls: self.primitive_calls.load(Ordering::Relaxed),
            sort_calls: self.sort_calls.load(Ordering::Relaxed),
            rounds: self.rounds.load(Ordering::Relaxed),
        }
    }

    /// Counter delta accumulated since the `earlier` snapshot was taken
    /// from this meter. The span-instrumentation idiom: snapshot at span
    /// open, `delta_since` at span close — nested spans each see exactly
    /// the work charged between their own endpoints, so nothing is
    /// double-counted however deeply spans nest.
    pub fn delta_since(&self, earlier: &CostReport) -> CostReport {
        self.report().since(earlier)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.element_ops.store(0, Ordering::Relaxed);
        self.primitive_calls.store(0, Ordering::Relaxed);
        self.sort_calls.store(0, Ordering::Relaxed);
        self.rounds.store(0, Ordering::Relaxed);
    }
}

impl CostReport {
    /// Difference between two snapshots (`self` taken after `earlier`).
    pub fn since(&self, earlier: &CostReport) -> CostReport {
        CostReport {
            element_ops: self.element_ops - earlier.element_ops,
            primitive_calls: self.primitive_calls - earlier.primitive_calls,
            sort_calls: self.sort_calls - earlier.sort_calls,
            rounds: self.rounds - earlier.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = CostMeter::new();
        m.add_work(10);
        m.add_primitive(5);
        m.add_round();
        m.add_rounds(2);
        m.add_sort(8);
        let r = m.report();
        assert_eq!(r.element_ops, 10 + 5 + 8 * 3); // log2(8)=3
        assert_eq!(r.primitive_calls, 1);
        assert_eq!(r.sort_calls, 1);
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn reset_and_since() {
        let m = CostMeter::new();
        m.add_primitive(100);
        let first = m.report();
        m.add_primitive(50);
        let second = m.report();
        let delta = second.since(&first);
        assert_eq!(delta.primitive_calls, 1);
        assert_eq!(delta.element_ops, 50);
        m.reset();
        assert_eq!(m.report(), CostReport::default());
    }

    #[test]
    fn delta_since_does_not_double_count_under_nesting() {
        // Simulated nested spans: outer snapshots, inner snapshots, work
        // happens at every level; each level's delta covers exactly the
        // charges between its own snapshot and its close.
        let m = CostMeter::new();
        m.add_work(3); // before any span
        let outer_open = m.report();
        m.add_work(5);
        let inner_open = m.report();
        m.add_primitive(100);
        m.add_round();
        let inner_delta = m.delta_since(&inner_open);
        assert_eq!(inner_delta.element_ops, 100);
        assert_eq!(inner_delta.primitive_calls, 1);
        assert_eq!(inner_delta.rounds, 1);
        m.add_work(7);
        let outer_delta = m.delta_since(&outer_open);
        assert_eq!(
            outer_delta.element_ops,
            5 + 100 + 7,
            "outer delta is inclusive of the inner span, counted once"
        );
        assert_eq!(outer_delta.primitive_calls, 1);
        // The work outside both spans is attributed to neither.
        assert_eq!(m.report().element_ops, 3 + 5 + 100 + 7);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let m = CostMeter::new();
        rayon::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..1000 {
                        m.add_work(1);
                    }
                });
            }
        });
        assert_eq!(m.report().element_ops, 8000);
    }
}
