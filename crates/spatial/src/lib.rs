//! # parfaclo-spatial
//!
//! Deterministic, exact spatial indexes for the `parfaclo` workspace — the
//! query subsystem that replaces the implicit distance oracle's O(n) linear
//! sweeps with sublinear nearest / k-nearest / range queries, opening the
//! 10M-point workloads the dense matrix and the plain sweeps cannot reach.
//!
//! ## Contract
//!
//! Every structure in this crate answers every query **exactly** as a
//! brute-force scan would, byte for byte:
//!
//! * distances are computed with the same operations in the same order as
//!   `parfaclo-metric`'s `Point::distance` (see [`SpatialMetric`]), so the
//!   values are bit-identical to the dense matrix's entries;
//! * ties are always broken towards the **lowest point id** — the same rule
//!   the `DistanceOracle` sweeps document;
//! * pruning uses *computed* lower bounds (monotone rounded arithmetic of
//!   the same shape as the distance computation) compared **strictly**, so
//!   no equal-distance candidate is ever skipped;
//! * construction and traversal are pure functions of the input point set —
//!   never of thread count: parallel builds only split recursion across
//!   workers, the resulting structure is identical at any pool size.
//!
//! Because of that contract, a solver routed through this crate emits
//! canonical Run JSON byte-identical to the dense and implicit backends.
//!
//! ## Structures
//!
//! [`SpatialIndex::build`] picks automatically: a flat scan for tiny sets, a
//! [`UniformGrid`] for dimensions 1–3 (the workspace's geometric
//! generators), a median-split [`KdTree`] above that. Subset queries
//! (nearest-in-set over, say, the currently open facilities) go through
//! [`SpatialIndex::build_with_ids`], which indexes a point subset while
//! reporting and tie-breaking on the caller's original ids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod grid;
pub mod index;
pub mod kdtree;
pub mod metric;
mod query;
#[cfg(test)]
pub(crate) mod tests_util;

pub use grid::UniformGrid;
pub use index::{Flat, SpatialIndex};
pub use kdtree::KdTree;
pub use metric::SpatialMetric;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_util::{brute_k_nearest, brute_nearest, brute_range, sample_coords};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// The workspace-style seeded property sweep: many seeds, every metric,
    /// dimensions 1/2/3/10, duplicates injected, index vs brute force.
    #[test]
    fn property_index_matches_brute_force() {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF ^ seed);
            for &dim in &[1usize, 2, 3, 10] {
                let n = 80 + (seed as usize * 37) % 220;
                let mut coords = sample_coords(n, dim, seed.wrapping_mul(31) + dim as u64);
                // Inject duplicates: copy a random earlier point over a later one.
                for _ in 0..n / 8 {
                    let src = rng.gen_range(0..n);
                    let dst = rng.gen_range(0..n);
                    let from = coords[src * dim..(src + 1) * dim].to_vec();
                    coords[dst * dim..(dst + 1) * dim].copy_from_slice(&from);
                }
                for metric in [
                    SpatialMetric::Euclidean,
                    SpatialMetric::SquaredEuclidean,
                    SpatialMetric::Manhattan,
                    SpatialMetric::Chebyshev,
                ] {
                    let idx = SpatialIndex::build(coords.clone(), dim, metric);
                    for _ in 0..6 {
                        let q: Vec<f64> =
                            (0..dim).map(|_| rng.gen::<f64>() * 120.0 - 10.0).collect();
                        assert_eq!(
                            idx.nearest(&q),
                            brute_nearest(&coords, dim, metric, &q),
                            "seed {seed} dim {dim} {metric:?} ({})",
                            idx.structure()
                        );
                        let k = 1 + (seed as usize % 9);
                        assert_eq!(
                            idx.k_nearest(&q, k),
                            brute_k_nearest(&coords, dim, metric, &q, k),
                            "seed {seed} dim {dim} {metric:?} k {k}"
                        );
                        let radius = rng.gen::<f64>() * 60.0;
                        let radius = match metric {
                            SpatialMetric::SquaredEuclidean => radius * radius,
                            _ => radius,
                        };
                        assert_eq!(
                            idx.range(&q, radius),
                            brute_range(&coords, dim, metric, &q, radius),
                            "seed {seed} dim {dim} {metric:?} r {radius}"
                        );
                    }
                }
            }
        }
    }

    /// The fully degenerate input: every point equidistant from the query
    /// (a circle) — ties everywhere; the lowest id must win and range must
    /// return everyone, in every structure.
    #[test]
    fn all_equidistant_points_tie_to_lowest_id() {
        let n = 200usize;
        let coords: Vec<f64> = (0..n)
            .flat_map(|i| {
                let angle = i as f64 * std::f64::consts::TAU / n as f64;
                [10.0 * angle.cos(), 10.0 * angle.sin()]
            })
            .collect();
        let q = [0.0, 0.0];
        for metric in [SpatialMetric::Euclidean, SpatialMetric::SquaredEuclidean] {
            for idx in [
                SpatialIndex::Flat(Flat::build(coords.clone(), 2, metric, None)),
                SpatialIndex::Grid(UniformGrid::build(coords.clone(), 2, metric, None)),
                SpatialIndex::Kd(KdTree::build(coords.clone(), 2, metric, None)),
            ] {
                let (id, _) = idx.nearest(&q).unwrap();
                assert_eq!(
                    id,
                    brute_nearest(&coords, 2, metric, &q).unwrap().0,
                    "{metric:?} {}",
                    idx.structure()
                );
                let brute = brute_nearest(&coords, 2, metric, &q).unwrap();
                let all = idx.range(&q, brute.1);
                assert_eq!(
                    all,
                    brute_range(&coords, 2, metric, &q, brute.1),
                    "{metric:?} {}",
                    idx.structure()
                );
                let k = idx.k_nearest(&q, 5);
                assert_eq!(k, brute_k_nearest(&coords, 2, metric, &q, 5));
            }
        }
    }

    /// Subset indexes answer exactly like a scan over the subset — the
    /// nearest-in-set building block of the spatial oracle backend.
    #[test]
    fn subset_index_matches_subset_scan() {
        let dim = 2;
        let coords = sample_coords(150, dim, 11);
        let metric = SpatialMetric::Euclidean;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let subset: Vec<u32> = (0..150u32).filter(|_| rng.gen::<f64>() < 0.3).collect();
            let sub_coords: Vec<f64> = subset
                .iter()
                .flat_map(|&id| coords[id as usize * dim..(id as usize + 1) * dim].to_vec())
                .collect();
            let idx = SpatialIndex::build_with_ids(sub_coords, dim, metric, Some(subset.clone()));
            assert_eq!(idx.len(), subset.len());
            for _ in 0..5 {
                let q: Vec<f64> = (0..dim).map(|_| rng.gen::<f64>() * 100.0).collect();
                let expect = subset
                    .iter()
                    .map(|&id| {
                        let p = &coords[id as usize * dim..(id as usize + 1) * dim];
                        (id as usize, metric.distance(&q, p))
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
                assert_eq!(idx.nearest(&q), expect);
            }
        }
    }
}
