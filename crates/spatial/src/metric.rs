//! The distance functions the indexes prune against.
//!
//! [`SpatialMetric`] mirrors `parfaclo-metric`'s `DistanceKind` exactly: every
//! point-to-point distance here is computed with the **same operations in the
//! same order** as `Point::distance`, so the values are bit-identical to what
//! the dense matrix stores and the implicit oracle computes. That is what
//! lets an index-served query replace a linear sweep without changing a
//! single output byte.
//!
//! The pruning bounds ([`SpatialMetric::box_lower_bound`],
//! [`SpatialMetric::axis_lower_bound`]) are *computed* lower bounds, not just
//! mathematical ones: each bound is evaluated with the same shape of rounded
//! IEEE operations as the distance itself (per-coordinate displacement →
//! square/abs → left-to-right sum or max → optional sqrt). Because every one
//! of those operations is monotone under rounding, the computed bound of a
//! box/half-space never exceeds the computed distance of any point inside
//! it. Searches therefore prune only on a **strict** `bound > best`
//! comparison and remain exact — including ties, which are always resolved
//! towards the lowest point id.

/// Which distance function the index serves. Must agree with the
/// `DistanceKind` the distances were generated under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpatialMetric {
    /// Standard L2 distance.
    #[default]
    Euclidean,
    /// Squared L2 (the k-means cost; not a metric, but per-coordinate
    /// monotone, which is all the pruning bounds need).
    SquaredEuclidean,
    /// L1 distance.
    Manhattan,
    /// L-infinity distance.
    Chebyshev,
}

impl SpatialMetric {
    /// Distance between two coordinate slices — bit-identical to
    /// `Point::distance` for the matching `DistanceKind` (same iterator
    /// chain, same fold order).
    ///
    /// # Panics
    /// Debug-asserts equal dimensions; mismatched slices are a caller bug.
    #[inline]
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "points must have equal dimension");
        match self {
            SpatialMetric::Euclidean => Self::squared_l2(a, b).sqrt(),
            SpatialMetric::SquaredEuclidean => Self::squared_l2(a, b),
            SpatialMetric::Manhattan => a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum(),
            SpatialMetric::Chebyshev => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max),
        }
    }

    #[inline]
    fn squared_l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Computed lower bound on the distance from `q` to any point inside the
    /// axis-aligned box `[lo, hi]`: per-coordinate clamp displacement,
    /// combined exactly like [`SpatialMetric::distance`] combines
    /// displacements. Never exceeds the computed distance of a point whose
    /// coordinates lie within the (exact) bounds.
    pub fn box_lower_bound(self, q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
        // clamp(c) = how far q[c] sits outside [lo[c], hi[c]], as the same
        // rounded subtraction a distance computation would produce.
        let clamp = |c: usize| -> f64 {
            if q[c] < lo[c] {
                lo[c] - q[c]
            } else if q[c] > hi[c] {
                q[c] - hi[c]
            } else {
                0.0
            }
        };
        match self {
            SpatialMetric::Euclidean => (0..q.len())
                .map(|c| {
                    let d = clamp(c);
                    d * d
                })
                .sum::<f64>()
                .sqrt(),
            SpatialMetric::SquaredEuclidean => (0..q.len())
                .map(|c| {
                    let d = clamp(c);
                    d * d
                })
                .sum(),
            SpatialMetric::Manhattan => (0..q.len()).map(clamp).sum(),
            SpatialMetric::Chebyshev => (0..q.len()).map(clamp).fold(0.0, f64::max),
        }
    }

    /// Computed lower bound on the distance from `q` to any point beyond a
    /// splitting plane at signed axis displacement `signed` (`q[axis] −
    /// split`): the distance of a hypothetical point differing from `q` only
    /// along that axis, computed with the same rounded operations.
    #[inline]
    pub fn axis_lower_bound(self, signed: f64) -> f64 {
        match self {
            SpatialMetric::Euclidean => (signed * signed).sqrt(),
            SpatialMetric::SquaredEuclidean => signed * signed,
            SpatialMetric::Manhattan | SpatialMetric::Chebyshev => signed.abs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(SpatialMetric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(SpatialMetric::SquaredEuclidean.distance(&a, &b), 25.0);
        assert_eq!(SpatialMetric::Manhattan.distance(&a, &b), 7.0);
        assert_eq!(SpatialMetric::Chebyshev.distance(&a, &b), 4.0);
    }

    #[test]
    fn box_bound_is_zero_inside_and_tight_on_faces() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 2.0];
        for m in [
            SpatialMetric::Euclidean,
            SpatialMetric::SquaredEuclidean,
            SpatialMetric::Manhattan,
            SpatialMetric::Chebyshev,
        ] {
            assert_eq!(m.box_lower_bound(&[0.5, 1.0], &lo, &hi), 0.0);
            // Directly left of the box: the bound equals the face distance.
            let d = m.box_lower_bound(&[-2.0, 1.0], &lo, &hi);
            let expect = m.distance(&[-2.0, 1.0], &[0.0, 1.0]);
            assert_eq!(d, expect);
        }
    }

    #[test]
    fn box_bound_never_exceeds_any_contained_point_distance() {
        // Deterministic pseudo-grid of queries/points; the computed-bound
        // property must hold exactly (<=, not approximately).
        let lo = [-1.25, 0.5, 3.0];
        let hi = [0.75, 2.5, 3.0];
        let inside = [
            [-1.25, 0.5, 3.0],
            [0.75, 2.5, 3.0],
            [0.0, 1.75, 3.0],
            [-0.5, 2.5, 3.0],
        ];
        let queries = [
            [5.0, -2.0, 3.5],
            [-3.0, 1.0, 3.0],
            [0.1, 0.9, 2.0],
            [0.75, 2.5, 3.0],
        ];
        for m in [
            SpatialMetric::Euclidean,
            SpatialMetric::SquaredEuclidean,
            SpatialMetric::Manhattan,
            SpatialMetric::Chebyshev,
        ] {
            for q in &queries {
                let bound = m.box_lower_bound(q, &lo, &hi);
                for p in &inside {
                    assert!(
                        bound <= m.distance(q, p),
                        "{m:?}: bound {bound} exceeds distance to {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn axis_bound_matches_single_axis_distance() {
        for m in [
            SpatialMetric::Euclidean,
            SpatialMetric::SquaredEuclidean,
            SpatialMetric::Manhattan,
            SpatialMetric::Chebyshev,
        ] {
            let signed = -1.5_f64;
            assert_eq!(
                m.axis_lower_bound(signed),
                m.distance(&[0.0], &[1.5]),
                "{m:?}"
            );
        }
    }
}
