//! The distance functions the indexes prune against.
//!
//! [`SpatialMetric`] **is** `parfaclo-kernel`'s `DistanceKind` — the same
//! type, re-exported under the name the index code has always used, not a
//! mirror of it. Every point-to-point distance the indexes compute therefore
//! runs the exact operations (and operation order) of the one shared slice
//! kernel, which is what lets an index-served query replace a linear sweep
//! without changing a single output byte.
//!
//! The pruning bounds (`box_lower_bound`, `axis_lower_bound`) are *computed*
//! lower bounds, not just mathematical ones: each bound is evaluated with
//! the same shape of rounded IEEE operations as the distance itself
//! (per-coordinate displacement → square/abs → left-to-right sum or max →
//! optional sqrt). Because every one of those operations is monotone under
//! rounding, the computed bound of a box/half-space never exceeds the
//! computed distance of any point inside it. Searches therefore prune only
//! on a **strict** `bound > best` comparison and remain exact — including
//! ties, which are always resolved towards the lowest point id.

pub use parfaclo_kernel::DistanceKind as SpatialMetric;
