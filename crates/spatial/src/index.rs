//! The unified index: structure selection (the "query planner" for builds)
//! and a flat-scan fallback.
//!
//! [`SpatialIndex::build`] picks the structure from the input shape alone —
//! a pure function of `(n, dim)`, so the choice is deterministic:
//!
//! * tiny sets (or zero-dimensional points) → [`Flat`] linear scan: below
//!   ~64 points a scan beats any structure's constant factor;
//! * dimensions 1–3 → [`UniformGrid`]: O(1)-ish bucket lookup, the common
//!   case for the workspace's geometric generators;
//! * higher dimensions → [`KdTree`]: median-split, still exact.
//!
//! All three answer every query identically (exact, lowest-id ties), so the
//! planner is a pure performance decision — asserted by the conformance
//! tests in this crate.

use crate::grid::{UniformGrid, GRID_MAX_DIM};
use crate::kdtree::KdTree;
use crate::metric::SpatialMetric;
use crate::query::{collect_slots, scan_slots, Accumulator, Best, KBest};
use parfaclo_kernel::SoaPoints;

/// Point sets at or below this size are served by a flat scan.
const FLAT_MAX: usize = 64;

/// Validates a flat coordinate array against `dim` (and an optional id map)
/// and returns the point count.
pub(crate) fn checked_point_count(coords: &[f64], dim: usize, ids: Option<&[u32]>) -> usize {
    let n = if dim == 0 {
        assert!(
            coords.is_empty(),
            "zero-dimensional points carry no coordinates"
        );
        ids.map_or(0, <[u32]>::len)
    } else {
        assert_eq!(
            coords.len() % dim,
            0,
            "coordinate count {} is not a multiple of dim {dim}",
            coords.len()
        );
        coords.len() / dim
    };
    assert!(
        coords.iter().all(|c| c.is_finite()),
        "index coordinates must be finite"
    );
    if let Some(ids) = ids {
        assert_eq!(ids.len(), n, "id map length must equal the point count");
    }
    assert!(n <= u32::MAX as usize, "index supports at most 2^32 points");
    n
}

/// Linear-scan fallback for tiny point sets (and dimension 0, where every
/// distance is 0 and structure is meaningless). The whole set is one
/// contiguous slot run through the blocked kernels — a flat index *is* a
/// cache tile.
#[derive(Debug, Clone)]
pub struct Flat {
    dim: usize,
    metric: SpatialMetric,
    /// Slot-ordered coordinates; slot == original position.
    soa: SoaPoints,
    /// Caller id per slot (identity when no map was supplied).
    slot_ids: Vec<u32>,
}

impl Flat {
    /// Builds the flat index (see [`SpatialIndex::build`] for the contract).
    pub fn build(
        coords: Vec<f64>,
        dim: usize,
        metric: SpatialMetric,
        ids: Option<Vec<u32>>,
    ) -> Self {
        let n = checked_point_count(&coords, dim, ids.as_deref());
        Flat {
            dim,
            metric,
            soa: SoaPoints::from_flat(&coords, dim, n),
            slot_ids: ids.unwrap_or_else(|| (0..n as u32).collect()),
        }
    }

    fn len(&self) -> usize {
        self.slot_ids.len()
    }

    /// The one scan behind both nearest and k-nearest.
    fn scan_into<A: Accumulator>(&self, q: &[f64], acc: &mut A) {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        scan_slots(
            self.metric,
            q,
            &self.soa,
            0,
            self.len(),
            &self.slot_ids,
            acc,
        );
    }

    fn nearest(&self, q: &[f64]) -> Option<(usize, f64)> {
        let mut best = Best::new();
        self.scan_into(q, &mut best);
        best.into_result()
    }

    fn k_nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut best = KBest::new(k);
        if k > 0 {
            self.scan_into(q, &mut best);
        }
        best.into_sorted()
    }

    fn range(&self, q: &[f64], radius: f64) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut out = Vec::new();
        collect_slots(
            self.metric,
            q,
            &self.soa,
            0,
            self.len(),
            &self.slot_ids,
            radius,
            &mut out,
        );
        crate::query::sort_ids_ascending(&mut out, self.len());
        out
    }

    fn memory_bytes(&self) -> u64 {
        (self.soa.memory_bytes() + self.slot_ids.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// A deterministic exact spatial index over a flat coordinate array:
/// one of the three concrete structures behind one query surface.
#[derive(Debug, Clone)]
pub enum SpatialIndex {
    /// Linear scan (tiny sets, dimension 0).
    Flat(Flat),
    /// Uniform bucket grid (dimensions 1–3).
    Grid(UniformGrid),
    /// Median-split kd-tree (higher dimensions).
    Kd(KdTree),
}

impl SpatialIndex {
    /// Builds the index, choosing the structure from `(n, dim)` — a pure
    /// function of the input, never of thread count or timing.
    ///
    /// # Panics
    /// Panics if the coordinate count is not a multiple of `dim` or a
    /// coordinate is non-finite.
    pub fn build(coords: Vec<f64>, dim: usize, metric: SpatialMetric) -> Self {
        Self::build_with_ids(coords, dim, metric, None)
    }

    /// Builds the index over a point *subset*: `ids[pos]` is the caller id
    /// reported for the point at position `pos`, and all tie-breaking uses
    /// those ids (lowest id wins), so a subset index answers exactly like a
    /// scan over the subset in ascending-id order.
    pub fn build_with_ids(
        coords: Vec<f64>,
        dim: usize,
        metric: SpatialMetric,
        ids: Option<Vec<u32>>,
    ) -> Self {
        let n = checked_point_count(&coords, dim, ids.as_deref());
        if n <= FLAT_MAX || dim == 0 {
            SpatialIndex::Flat(Flat::build(coords, dim, metric, ids))
        } else if dim <= GRID_MAX_DIM {
            SpatialIndex::Grid(UniformGrid::build(coords, dim, metric, ids))
        } else {
            SpatialIndex::Kd(KdTree::build(coords, dim, metric, ids))
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        match self {
            SpatialIndex::Flat(f) => f.len(),
            SpatialIndex::Grid(g) => g.len(),
            SpatialIndex::Kd(t) => t.len(),
        }
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which structure the planner chose (stable label for diagnostics).
    pub fn structure(&self) -> &'static str {
        match self {
            SpatialIndex::Flat(_) => "flat",
            SpatialIndex::Grid(_) => "grid",
            SpatialIndex::Kd(_) => "kd",
        }
    }

    /// The nearest indexed point to `q` (caller id and distance), ties
    /// towards the lowest id; `None` when empty.
    pub fn nearest(&self, q: &[f64]) -> Option<(usize, f64)> {
        match self {
            SpatialIndex::Flat(f) => f.nearest(q),
            SpatialIndex::Grid(g) => g.nearest(q),
            SpatialIndex::Kd(t) => t.nearest(q),
        }
    }

    /// The `k` nearest indexed points in ascending `(distance, id)` order
    /// (fewer when the index holds fewer than `k`).
    pub fn k_nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        match self {
            SpatialIndex::Flat(f) => f.k_nearest(q, k),
            SpatialIndex::Grid(g) => g.k_nearest(q, k),
            SpatialIndex::Kd(t) => t.k_nearest(q, k),
        }
    }

    /// Caller ids of every indexed point within `radius` of `q`
    /// (inclusive), ascending.
    pub fn range(&self, q: &[f64], radius: f64) -> Vec<usize> {
        match self {
            SpatialIndex::Flat(f) => f.range(q, radius),
            SpatialIndex::Grid(g) => g.range(q, radius),
            SpatialIndex::Kd(t) => t.range(q, radius),
        }
    }

    /// Estimated resident bytes of the index structure (its own coordinate
    /// copy included).
    pub fn memory_bytes(&self) -> u64 {
        match self {
            SpatialIndex::Flat(f) => f.memory_bytes(),
            SpatialIndex::Grid(g) => g.memory_bytes(),
            SpatialIndex::Kd(t) => t.memory_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_util::sample_coords;

    #[test]
    fn planner_picks_by_size_and_dimension() {
        let tiny = SpatialIndex::build(sample_coords(10, 2, 1), 2, SpatialMetric::Euclidean);
        assert_eq!(tiny.structure(), "flat");
        let low = SpatialIndex::build(sample_coords(500, 2, 1), 2, SpatialMetric::Euclidean);
        assert_eq!(low.structure(), "grid");
        let high = SpatialIndex::build(sample_coords(500, 10, 1), 10, SpatialMetric::Euclidean);
        assert_eq!(high.structure(), "kd");
        let zero_dim = SpatialIndex::build(Vec::new(), 0, SpatialMetric::Euclidean);
        assert_eq!(zero_dim.structure(), "flat");
        assert!(zero_dim.is_empty());
    }

    #[test]
    fn structures_answer_identically() {
        // Same point set through all three structures: every query agrees.
        let dim = 2;
        let coords = sample_coords(300, dim, 99);
        let metric = SpatialMetric::Euclidean;
        let flat = Flat::build(coords.clone(), dim, metric, None);
        let grid = UniformGrid::build(coords.clone(), dim, metric, None);
        let kd = KdTree::build(coords.clone(), dim, metric, None);
        for q in sample_coords(25, dim, 7).chunks(dim) {
            let f = flat.nearest(q);
            assert_eq!(f, grid.nearest(q));
            assert_eq!(f, kd.nearest(q));
            let fk = flat.k_nearest(q, 5);
            assert_eq!(fk, grid.k_nearest(q, 5));
            assert_eq!(fk, kd.k_nearest(q, 5));
            let r = 12.5;
            let fr = flat.range(q, r);
            assert_eq!(fr, grid.range(q, r));
            assert_eq!(fr, kd.range(q, r));
        }
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(std::panic::catch_unwind(|| {
            SpatialIndex::build(vec![1.0, 2.0, 3.0], 2, SpatialMetric::Euclidean)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            SpatialIndex::build(vec![1.0, f64::NAN], 2, SpatialMetric::Euclidean)
        })
        .is_err());
        assert!(std::panic::catch_unwind(|| {
            SpatialIndex::build_with_ids(
                vec![1.0, 2.0],
                2,
                SpatialMetric::Euclidean,
                Some(vec![1, 2]),
            )
        })
        .is_err());
    }

    #[test]
    fn memory_bytes_counts_the_structure() {
        let idx = SpatialIndex::build(sample_coords(200, 2, 3), 2, SpatialMetric::Euclidean);
        // At least the coordinate copy itself.
        assert!(idx.memory_bytes() >= (200 * 2 * 8) as u64);
    }
}
