//! Brute-force reference implementations and deterministic samplers shared
//! by the index test suites. Compiled only for tests.

use crate::metric::SpatialMetric;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// `n` points of dimension `dim` with coordinates in `[0, 100)`, seeded.
pub fn sample_coords(n: usize, dim: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n * dim).map(|_| rng.gen::<f64>() * 100.0).collect()
}

fn point(coords: &[f64], dim: usize, pos: usize) -> &[f64] {
    &coords[pos * dim..(pos + 1) * dim]
}

/// Reference nearest: scan ascending, strict improvement only — the
/// canonical lowest-id tie-break every index must reproduce.
pub fn brute_nearest(
    coords: &[f64],
    dim: usize,
    metric: SpatialMetric,
    q: &[f64],
) -> Option<(usize, f64)> {
    let n = coords.len() / dim.max(1);
    (0..n)
        .map(|pos| (pos, metric.distance(q, point(coords, dim, pos))))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
}

/// Reference k-nearest: full sort by `(distance, id)`, first `k`.
pub fn brute_k_nearest(
    coords: &[f64],
    dim: usize,
    metric: SpatialMetric,
    q: &[f64],
    k: usize,
) -> Vec<(usize, f64)> {
    let n = coords.len() / dim.max(1);
    let mut all: Vec<(usize, f64)> = (0..n)
        .map(|pos| (pos, metric.distance(q, point(coords, dim, pos))))
        .collect();
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Reference range: ascending ids with `d <= radius` (inclusive).
pub fn brute_range(
    coords: &[f64],
    dim: usize,
    metric: SpatialMetric,
    q: &[f64],
    radius: f64,
) -> Vec<usize> {
    let n = coords.len() / dim.max(1);
    (0..n)
        .filter(|&pos| metric.distance(q, point(coords, dim, pos)) <= radius)
        .collect()
}
