//! A deterministic median-split kd-tree.
//!
//! Construction partitions the point positions by the widest bounding-box
//! axis, splitting at the exact median under the total order
//! `(coordinate, position)` — the structure is a pure function of the input
//! point set, independent of thread count (parallel construction only
//! splits the recursion across workers; each range is partitioned
//! sequentially), and the points are then re-materialised in tree order as
//! structure-of-arrays so every leaf scan is one contiguous pass of the
//! blocked distance kernels in `parfaclo-kernel`. Queries are exact:
//! pruning uses the computed
//! [`SpatialMetric::axis_lower_bound`], which never exceeds the computed
//! distance of a point beyond the splitting plane, and subtrees are skipped
//! only on a strictly larger bound — so equal-distance points are always
//! reachable and ties resolve to the lowest id, matching a brute-force scan
//! byte for byte.

use crate::metric::SpatialMetric;
use crate::query::{collect_slots, scan_slots, Accumulator, Best, KBest};
use parfaclo_kernel::SoaPoints;

/// Ranges at or below this length are scanned as leaves.
const LEAF: usize = 16;

/// Ranges longer than this build their two subtrees on the fork-join pool.
const PAR_BUILD: usize = 4096;

/// A median-split kd-tree over a flat coordinate array.
#[derive(Debug, Clone)]
pub struct KdTree {
    dim: usize,
    metric: SpatialMetric,
    /// Point coordinates in tree (slot) order, one contiguous vector per
    /// axis: the implicit tree over a slot range `[start, end)` pivots at
    /// `mid = start + len / 2`; `[start, mid)` and `[mid + 1, end)` are the
    /// subtrees. Every leaf is a contiguous slot run, so a leaf scan is one
    /// blocked-kernel tile pass.
    soa: SoaPoints,
    /// Caller id per slot (the build permutation composed with the optional
    /// caller map).
    slot_ids: Vec<u32>,
    /// `axes[mid]` is the split axis of the node pivoted at slot `mid`
    /// (leaf entries are unused).
    axes: Vec<u8>,
}

impl KdTree {
    /// Builds the tree. `coords` holds `dim` coordinates per point; `ids`
    /// maps positions to caller ids (`None` for the identity).
    ///
    /// # Panics
    /// Panics if the coordinate count is not a multiple of `dim`, if
    /// `dim == 0` with points present, if `dim > 255`, or if an ids vector
    /// of the wrong length is supplied.
    pub fn build(
        coords: Vec<f64>,
        dim: usize,
        metric: SpatialMetric,
        ids: Option<Vec<u32>>,
    ) -> Self {
        let n = crate::index::checked_point_count(&coords, dim, ids.as_deref());
        assert!(dim <= u8::MAX as usize, "kd-tree supports at most 255 dims");
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut axes: Vec<u8> = vec![0; n];
        build_range(&coords, dim, &mut perm, &mut axes);
        // Re-materialise the points in tree order: slot `t` holds point
        // `perm[t]`, so leaves are contiguous slot runs for the blocked
        // kernels, and `slot_ids` carries the caller ids along.
        let soa = SoaPoints::from_flat_permuted(&coords, dim, &perm);
        let slot_ids: Vec<u32> = perm
            .iter()
            .map(|&pos| ids.as_ref().map_or(pos, |v| v[pos as usize]))
            .collect();
        KdTree {
            dim,
            metric,
            soa,
            slot_ids,
            axes,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.slot_ids.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.slot_ids.is_empty()
    }

    /// The nearest indexed point to `q` (its caller id and distance), ties
    /// towards the lowest id; `None` when empty.
    pub fn nearest(&self, q: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut best = Best::new();
        self.search(q, 0, self.len(), &mut best);
        best.into_result()
    }

    /// The `k` nearest indexed points to `q` in ascending `(distance, id)`
    /// order (fewer when the index holds fewer than `k` points). Exact: the
    /// result is the length-`k` prefix of the full distance-sorted scan.
    pub fn k_nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut best = KBest::new(k);
        if k > 0 {
            self.search(q, 0, self.len(), &mut best);
        }
        best.into_sorted()
    }

    /// The one branch-and-bound descent behind both nearest and k-nearest:
    /// visit the nearer child first, then the farther child unless the
    /// accumulator prunes its splitting-plane bound.
    fn search<A: Accumulator>(&self, q: &[f64], start: usize, end: usize, acc: &mut A) {
        if end - start <= LEAF {
            scan_slots(self.metric, q, &self.soa, start, end, &self.slot_ids, acc);
            return;
        }
        let mid = start + (end - start) / 2;
        let axis = self.axes[mid] as usize;
        acc.consider(
            self.soa.dist_one(self.metric, q, mid),
            self.slot_ids[mid] as usize,
        );
        let signed = q[axis] - self.soa.coord(axis, mid);
        let (near, far) = if signed <= 0.0 {
            ((start, mid), (mid + 1, end))
        } else {
            ((mid + 1, end), (start, mid))
        };
        self.search(q, near.0, near.1, acc);
        if !acc.prunes(self.metric.axis_lower_bound(signed)) {
            self.search(q, far.0, far.1, acc);
        }
    }

    /// Caller ids of every indexed point within `radius` of `q`
    /// (inclusive, `d <= radius`), ascending.
    pub fn range(&self, q: &[f64], radius: f64) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut out = Vec::new();
        self.range_range(q, radius, 0, self.len(), &mut out);
        crate::query::sort_ids_ascending(&mut out, self.len());
        out
    }

    fn range_range(&self, q: &[f64], radius: f64, start: usize, end: usize, out: &mut Vec<usize>) {
        if end - start <= LEAF {
            collect_slots(
                self.metric,
                q,
                &self.soa,
                start,
                end,
                &self.slot_ids,
                radius,
                out,
            );
            return;
        }
        let mid = start + (end - start) / 2;
        let axis = self.axes[mid] as usize;
        if self.soa.dist_one(self.metric, q, mid) <= radius {
            out.push(self.slot_ids[mid] as usize);
        }
        let signed = q[axis] - self.soa.coord(axis, mid);
        let (near, far) = if signed <= 0.0 {
            ((start, mid), (mid + 1, end))
        } else {
            ((mid + 1, end), (start, mid))
        };
        self.range_range(q, radius, near.0, near.1, out);
        if self.metric.axis_lower_bound(signed) <= radius {
            self.range_range(q, radius, far.0, far.1, out);
        }
    }

    /// Estimated resident bytes of the index structure (slot-ordered
    /// coordinates, split axes, id map).
    pub fn memory_bytes(&self) -> u64 {
        (self.soa.memory_bytes()
            + self.slot_ids.len() * std::mem::size_of::<u32>()
            + self.axes.len()) as u64
    }
}

/// Recursively partitions `perm` (tree order) and records split axes.
/// `axes` always covers exactly the same range as `perm`.
fn build_range(coords: &[f64], dim: usize, perm: &mut [u32], axes: &mut [u8]) {
    let len = perm.len();
    if len <= LEAF {
        return;
    }
    // Widest bounding-box axis of the points in this range (ties towards the
    // lowest axis) — a pure function of the range's point set.
    let mut axis = 0usize;
    let mut widest = f64::NEG_INFINITY;
    for a in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &pos in perm.iter() {
            let c = coords[pos as usize * dim + a];
            lo = lo.min(c);
            hi = hi.max(c);
        }
        let extent = hi - lo;
        if extent > widest {
            widest = extent;
            axis = a;
        }
    }
    let mid = len / 2;
    // Exact median under the total order (coordinate, position): the
    // partition is unique, so the tree shape never depends on the incoming
    // arrangement produced by a parent's partition step.
    perm.select_nth_unstable_by(mid, |&a, &b| {
        let ca = coords[a as usize * dim + axis];
        let cb = coords[b as usize * dim + axis];
        ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
    });
    axes[mid] = axis as u8;
    let (perm_left, perm_rest) = perm.split_at_mut(mid);
    let (axes_left, axes_rest) = axes.split_at_mut(mid);
    let perm_right = &mut perm_rest[1..];
    let axes_right = &mut axes_rest[1..];
    if len > PAR_BUILD {
        rayon::join(
            || build_range(coords, dim, perm_left, axes_left),
            || build_range(coords, dim, perm_right, axes_right),
        );
    } else {
        build_range(coords, dim, perm_left, axes_left);
        build_range(coords, dim, perm_right, axes_right);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_util::{brute_k_nearest, brute_nearest, brute_range, sample_coords};

    #[test]
    fn matches_brute_force_across_dims_and_metrics() {
        for &dim in &[1usize, 2, 3, 10] {
            for metric in [
                SpatialMetric::Euclidean,
                SpatialMetric::SquaredEuclidean,
                SpatialMetric::Manhattan,
                SpatialMetric::Chebyshev,
            ] {
                let coords = sample_coords(257, dim, 0xD1A0 + dim as u64);
                let tree = KdTree::build(coords.clone(), dim, metric, None);
                let queries = sample_coords(20, dim, 0x0FF5E7);
                for q in queries.chunks(dim) {
                    assert_eq!(
                        tree.nearest(q),
                        brute_nearest(&coords, dim, metric, q),
                        "dim {dim} {metric:?}"
                    );
                    assert_eq!(
                        tree.k_nearest(q, 7),
                        brute_k_nearest(&coords, dim, metric, q, 7),
                        "dim {dim} {metric:?}"
                    );
                    let r = metric.distance(q, &coords[..dim]);
                    assert_eq!(
                        tree.range(q, r),
                        brute_range(&coords, dim, metric, q, r),
                        "dim {dim} {metric:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_points_tie_break_to_lowest_id() {
        // 50 copies of the same point plus a decoy: nearest must return id 0.
        let mut coords = [1.0, 2.0].repeat(50);
        coords.extend_from_slice(&[50.0, 50.0]);
        let tree = KdTree::build(coords, 2, SpatialMetric::Euclidean, None);
        assert_eq!(tree.nearest(&[1.0, 2.0]), Some((0, 0.0)));
        let k = tree.k_nearest(&[0.0, 0.0], 3);
        let ids: Vec<usize> = k.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(tree.range(&[1.0, 2.0], 0.0), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn custom_ids_flow_through() {
        let coords = vec![0.0, 0.0, 10.0, 0.0, 20.0, 0.0];
        let tree = KdTree::build(coords, 2, SpatialMetric::Euclidean, Some(vec![9, 4, 7]));
        assert_eq!(tree.nearest(&[11.0, 0.0]), Some((4, 1.0)));
        assert_eq!(tree.range(&[10.0, 0.0], 10.0), vec![4, 7, 9]);
    }

    #[test]
    fn empty_and_single_point() {
        let empty = KdTree::build(Vec::new(), 3, SpatialMetric::Euclidean, None);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(&[0.0, 0.0, 0.0]), None);
        assert!(empty.k_nearest(&[0.0, 0.0, 0.0], 4).is_empty());
        assert!(empty.range(&[0.0, 0.0, 0.0], 1e18).is_empty());

        let one = KdTree::build(vec![2.0], 1, SpatialMetric::Manhattan, None);
        assert_eq!(one.nearest(&[0.0]), Some((0, 2.0)));
        assert_eq!(one.k_nearest(&[0.0], 5), vec![(0, 2.0)]);
    }

    #[test]
    fn structure_is_thread_count_independent() {
        // PAR_BUILD is exceeded, so subtrees build on the pool; the slot
        // order (= the build permutation, as no id map is supplied) and the
        // axes array must come out identical at 1 and 4 workers.
        let coords = sample_coords(6000, 2, 42);
        let build = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| KdTree::build(coords.clone(), 2, SpatialMetric::Euclidean, None))
        };
        let a = build(1);
        let b = build(4);
        assert_eq!(a.slot_ids, b.slot_ids);
        assert_eq!(a.axes, b.axes);
        assert_eq!(a.soa, b.soa);
    }
}
