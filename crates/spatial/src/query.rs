//! Shared query state: running best / best-k accumulators with the
//! canonical `(distance, id)` tie-breaking every index must honour, plus
//! the one blocked scan every structure's contiguous point run (flat set,
//! grid bucket, kd leaf) funnels through.

use parfaclo_kernel::{block, DistanceKind, SoaPoints};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Streams the contiguous slot range `[start, end)` of `pts` through the
/// blocked distance kernel — one stack tile at a time, no allocation —
/// offering each `(distance, ids[slot])` to the accumulator in ascending
/// slot order. Distances are bit-identical to the scalar
/// `DistanceKind::distance` per point, and the accumulators' `(distance,
/// id)` ordering is insensitive to visit order, so a structure that swaps
/// its per-point loop for this scan changes no output byte.
pub(crate) fn scan_slots<A: Accumulator>(
    metric: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    end: usize,
    ids: &[u32],
    acc: &mut A,
) {
    let mut buf = [0.0f64; block::TILE];
    let mut s = start;
    while s < end {
        let len = block::TILE.min(end - s);
        block::dist_range(metric, q, pts, s, &mut buf[..len]);
        for (o, &d) in buf[..len].iter().enumerate() {
            acc.consider(d, ids[s + o] as usize);
        }
        s += len;
    }
}

/// Range-query twin of [`scan_slots`]: pushes `ids[slot]` for every point
/// in `[start, end)` with distance `<= radius` (inclusive, like every range
/// query in this crate), in ascending slot order.
#[allow(clippy::too_many_arguments)]
pub(crate) fn collect_slots(
    metric: DistanceKind,
    q: &[f64],
    pts: &SoaPoints,
    start: usize,
    end: usize,
    ids: &[u32],
    radius: f64,
    out: &mut Vec<usize>,
) {
    let mut buf = [0.0f64; block::TILE];
    let mut s = start;
    while s < end {
        let len = block::TILE.min(end - s);
        block::dist_range(metric, q, pts, s, &mut buf[..len]);
        for (o, &d) in buf[..len].iter().enumerate() {
            if d <= radius {
                out.push(ids[s + o] as usize);
            }
        }
        s += len;
    }
}

/// Sorts a set of distinct ids drawn from `0..n` into ascending order.
/// Dense results (a range query whose radius covers most of the index) get
/// a bitmask sweep — O(n) instead of O(m log m) — which matters at the
/// million-point presets where late solver rounds collect nearly every id.
pub(crate) fn sort_ids_ascending(out: &mut Vec<usize>, n: usize) {
    if out.len() < 4096 || out.len() < n / 8 {
        out.sort_unstable();
        return;
    }
    let mut mask = vec![0u64; n / 64 + 1];
    for &id in out.iter() {
        mask[id / 64] |= 1u64 << (id % 64);
    }
    out.clear();
    for (w, &bits) in mask.iter().enumerate() {
        let mut bits = bits;
        while bits != 0 {
            out.push(w * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

/// Compares `(distance, id)` lexicographically. Distances are finite by the
/// index construction invariants (finite coordinates in, finite distances
/// out), so the `partial_cmp` never fails on well-formed inputs.
#[inline]
fn cmp_entry(a: (f64, usize), b: (f64, usize)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .expect("index distances are never NaN")
        .then(a.1.cmp(&b.1))
}

/// One shared surface for the two query accumulators, so every index
/// structure has exactly **one** traversal per shape (point scan, tree
/// descent, ring expansion) instead of a nearest/k-nearest twin that could
/// drift apart. The pruning rule lives here once: a subtree/cell may be
/// skipped only when its computed lower bound **strictly** exceeds the
/// distance to beat — an equal bound may still hide an equal-distance
/// point with a lower id.
pub(crate) trait Accumulator {
    /// Offers a candidate point.
    fn consider(&mut self, d: f64, id: usize);

    /// The distance a new candidate must beat, if the accumulator is
    /// saturated enough to prune at all (`None` ⇒ never prune yet).
    fn bound_to_beat(&self) -> Option<f64>;

    /// Whether a region with computed lower bound `bound` can be skipped.
    fn prunes(&self, bound: f64) -> bool {
        self.bound_to_beat().is_some_and(|d| bound > d)
    }
}

/// Running nearest candidate: minimal `(distance, id)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Best {
    d: f64,
    id: usize,
    found: bool,
}

impl Best {
    pub(crate) fn new() -> Self {
        Best {
            d: f64::INFINITY,
            id: usize::MAX,
            found: false,
        }
    }

    pub(crate) fn into_result(self) -> Option<(usize, f64)> {
        if self.found {
            Some((self.id, self.d))
        } else {
            None
        }
    }
}

impl Accumulator for Best {
    #[inline]
    fn consider(&mut self, d: f64, id: usize) {
        if !self.found || cmp_entry((d, id), (self.d, self.id)) == Ordering::Less {
            self.d = d;
            self.id = id;
            self.found = true;
        }
    }

    #[inline]
    fn bound_to_beat(&self) -> Option<f64> {
        if self.found {
            Some(self.d)
        } else {
            None
        }
    }
}

/// Max-heap entry ordered by `(distance, id)` so the *worst* kept candidate
/// sits on top.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    d: f64,
    id: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_entry((self.d, self.id), (other.d, other.id))
    }
}

/// Running best-`k` candidates: the `k` minimal `(distance, id)` pairs.
#[derive(Debug, Clone)]
pub(crate) struct KBest {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl KBest {
    pub(crate) fn new(k: usize) -> Self {
        KBest {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 20)),
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<(usize, f64)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.id, e.d))
            .collect()
    }
}

impl Accumulator for KBest {
    #[inline]
    fn consider(&mut self, d: f64, id: usize) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { d, id });
        } else {
            let worst = *self.heap.peek().expect("k >= 1 and heap full");
            if cmp_entry((d, id), (worst.d, worst.id)) == Ordering::Less {
                self.heap.pop();
                self.heap.push(HeapEntry { d, id });
            }
        }
    }

    /// Worst kept distance once all `k` slots are held; underfull never
    /// prunes.
    #[inline]
    fn bound_to_beat(&self) -> Option<f64> {
        if self.k > 0 && self.heap.len() == self.k {
            self.heap.peek().map(|w| w.d)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_prefers_lower_distance_then_lower_id() {
        let mut b = Best::new();
        assert!(!b.prunes(0.0));
        b.consider(2.0, 5);
        b.consider(2.0, 3);
        b.consider(2.0, 9);
        assert_eq!(b.into_result(), Some((3, 2.0)));

        let mut b = Best::new();
        b.consider(1.0, 7);
        assert!(b.prunes(1.5));
        assert!(!b.prunes(1.0), "equal bound must not prune (tie safety)");
    }

    #[test]
    fn kbest_keeps_minimal_pairs_sorted() {
        let mut kb = KBest::new(3);
        for (d, id) in [(5.0, 0), (1.0, 4), (1.0, 2), (3.0, 1), (1.0, 9)] {
            kb.consider(d, id);
        }
        assert!(kb.prunes(3.5));
        assert!(!kb.prunes(1.0));
        assert_eq!(kb.into_sorted(), vec![(2, 1.0), (4, 1.0), (9, 1.0)]);
    }

    #[test]
    fn kbest_zero_and_underfull() {
        let mut kb = KBest::new(0);
        kb.consider(1.0, 1);
        assert!(kb.into_sorted().is_empty());

        let mut kb = KBest::new(5);
        kb.consider(2.0, 1);
        assert!(!kb.prunes(100.0), "underfull never prunes");
        assert_eq!(kb.bound_to_beat(), None);
        assert_eq!(kb.into_sorted(), vec![(1, 2.0)]);
    }
}
