//! Shared query state: running best / best-k accumulators with the
//! canonical `(distance, id)` tie-breaking every index must honour.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Compares `(distance, id)` lexicographically. Distances are finite by the
/// index construction invariants (finite coordinates in, finite distances
/// out), so the `partial_cmp` never fails on well-formed inputs.
#[inline]
fn cmp_entry(a: (f64, usize), b: (f64, usize)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .expect("index distances are never NaN")
        .then(a.1.cmp(&b.1))
}

/// One shared surface for the two query accumulators, so every index
/// structure has exactly **one** traversal per shape (point scan, tree
/// descent, ring expansion) instead of a nearest/k-nearest twin that could
/// drift apart. The pruning rule lives here once: a subtree/cell may be
/// skipped only when its computed lower bound **strictly** exceeds the
/// distance to beat — an equal bound may still hide an equal-distance
/// point with a lower id.
pub(crate) trait Accumulator {
    /// Offers a candidate point.
    fn consider(&mut self, d: f64, id: usize);

    /// The distance a new candidate must beat, if the accumulator is
    /// saturated enough to prune at all (`None` ⇒ never prune yet).
    fn bound_to_beat(&self) -> Option<f64>;

    /// Whether a region with computed lower bound `bound` can be skipped.
    fn prunes(&self, bound: f64) -> bool {
        self.bound_to_beat().is_some_and(|d| bound > d)
    }
}

/// Running nearest candidate: minimal `(distance, id)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Best {
    d: f64,
    id: usize,
    found: bool,
}

impl Best {
    pub(crate) fn new() -> Self {
        Best {
            d: f64::INFINITY,
            id: usize::MAX,
            found: false,
        }
    }

    pub(crate) fn into_result(self) -> Option<(usize, f64)> {
        if self.found {
            Some((self.id, self.d))
        } else {
            None
        }
    }
}

impl Accumulator for Best {
    #[inline]
    fn consider(&mut self, d: f64, id: usize) {
        if !self.found || cmp_entry((d, id), (self.d, self.id)) == Ordering::Less {
            self.d = d;
            self.id = id;
            self.found = true;
        }
    }

    #[inline]
    fn bound_to_beat(&self) -> Option<f64> {
        if self.found {
            Some(self.d)
        } else {
            None
        }
    }
}

/// Max-heap entry ordered by `(distance, id)` so the *worst* kept candidate
/// sits on top.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    d: f64,
    id: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_entry((self.d, self.id), (other.d, other.id))
    }
}

/// Running best-`k` candidates: the `k` minimal `(distance, id)` pairs.
#[derive(Debug, Clone)]
pub(crate) struct KBest {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl KBest {
    pub(crate) fn new(k: usize) -> Self {
        KBest {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 20)),
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<(usize, f64)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.id, e.d))
            .collect()
    }
}

impl Accumulator for KBest {
    #[inline]
    fn consider(&mut self, d: f64, id: usize) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry { d, id });
        } else {
            let worst = *self.heap.peek().expect("k >= 1 and heap full");
            if cmp_entry((d, id), (worst.d, worst.id)) == Ordering::Less {
                self.heap.pop();
                self.heap.push(HeapEntry { d, id });
            }
        }
    }

    /// Worst kept distance once all `k` slots are held; underfull never
    /// prunes.
    #[inline]
    fn bound_to_beat(&self) -> Option<f64> {
        if self.k > 0 && self.heap.len() == self.k {
            self.heap.peek().map(|w| w.d)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_prefers_lower_distance_then_lower_id() {
        let mut b = Best::new();
        assert!(!b.prunes(0.0));
        b.consider(2.0, 5);
        b.consider(2.0, 3);
        b.consider(2.0, 9);
        assert_eq!(b.into_result(), Some((3, 2.0)));

        let mut b = Best::new();
        b.consider(1.0, 7);
        assert!(b.prunes(1.5));
        assert!(!b.prunes(1.0), "equal bound must not prune (tie safety)");
    }

    #[test]
    fn kbest_keeps_minimal_pairs_sorted() {
        let mut kb = KBest::new(3);
        for (d, id) in [(5.0, 0), (1.0, 4), (1.0, 2), (3.0, 1), (1.0, 9)] {
            kb.consider(d, id);
        }
        assert!(kb.prunes(3.5));
        assert!(!kb.prunes(1.0));
        assert_eq!(kb.into_sorted(), vec![(2, 1.0), (4, 1.0), (9, 1.0)]);
    }

    #[test]
    fn kbest_zero_and_underfull() {
        let mut kb = KBest::new(0);
        kb.consider(1.0, 1);
        assert!(kb.into_sorted().is_empty());

        let mut kb = KBest::new(5);
        kb.consider(2.0, 1);
        assert!(!kb.prunes(100.0), "underfull never prunes");
        assert_eq!(kb.bound_to_beat(), None);
        assert_eq!(kb.into_sorted(), vec![(1, 2.0)]);
    }
}
