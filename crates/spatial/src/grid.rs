//! A deterministic uniform bucket grid for low dimensions (1–3).
//!
//! Points are bucketed into cubic cells of one global side length; buckets
//! are stored CSR-style grouped by linearised cell id with positions
//! ascending inside each bucket, so the whole structure is a pure function
//! of the input point set. Coordinates are re-materialised in bucket order
//! as structure-of-arrays, so every cell scan is one contiguous pass of the
//! blocked distance kernels in `parfaclo-kernel`. Pruning never trusts the *nominal* cell geometry
//! (a point can land an ulp outside its nominal cell box): every non-empty
//! cell stores the **exact** bounding box of the points it actually holds,
//! and [`SpatialMetric::box_lower_bound`] against that box is a computed
//! lower bound on every contained point's computed distance. Ring expansion
//! stops against a deliberately slackened ring bound (factor 0.99), which
//! costs at most one extra ring and removes any dependence on rounding
//! details — queries are exact with lowest-id tie-breaking, matching a
//! brute-force scan byte for byte.

use crate::metric::SpatialMetric;
use crate::query::{collect_slots, scan_slots, Accumulator, Best, KBest};
use parfaclo_kernel::SoaPoints;

/// The maximum dimension the grid supports (ring enumeration is written for
/// up to three axes; higher dimensions go to the kd-tree).
pub const GRID_MAX_DIM: usize = 3;

/// Safety slack for the ring-termination bound: rings are only abandoned
/// when even `0.99 ×` their geometric separation exceeds the current best,
/// absorbing every rounding concern at the cost of (at most) one extra ring.
const RING_SLACK: f64 = 0.99;

/// The clamped cell coordinate of scalar `x` on one axis — **the** bucket
/// formula, shared by build-time point assignment and query-time
/// center/window location. Ring and window pruning arguments assume both
/// sides compute cells with exactly these rounded operations, so the two
/// must never drift apart.
#[inline]
fn axis_cell(x: f64, lo: f64, cell: f64, count: usize) -> usize {
    let f = ((x - lo) / cell).floor();
    if f < 0.0 {
        0
    } else {
        (f as usize).min(count - 1)
    }
}

/// A uniform bucket grid over a flat coordinate array.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    dim: usize,
    metric: SpatialMetric,
    /// Point coordinates in bucket (slot) order, one contiguous vector per
    /// axis — each cell's points are a contiguous slot run, so a cell scan
    /// is exactly one blocked-kernel tile pass.
    soa: SoaPoints,
    /// Caller id per slot (identity permutation composed with the optional
    /// caller map), ascending position order within each cell.
    slot_ids: Vec<u32>,
    /// Bounding box of the whole point set.
    lo: Vec<f64>,
    /// Cell side length (equal on every axis); 1.0 for degenerate extents.
    cell: f64,
    /// Cells per axis.
    counts: Vec<usize>,
    /// CSR offsets per linearised cell (`counts` product + 1 entries).
    starts: Vec<u32>,
    /// Exact per-cell point bounding boxes (`ncells * dim` each); empty
    /// cells hold an inverted box (`+inf / -inf`) that every bound rejects.
    cell_lo: Vec<f64>,
    cell_hi: Vec<f64>,
}

impl UniformGrid {
    /// Builds the grid. `coords` holds `dim` coordinates per point; `ids`
    /// maps positions to caller ids (`None` for the identity).
    ///
    /// # Panics
    /// Panics if `dim` is 0 or exceeds [`GRID_MAX_DIM`], if the coordinate
    /// count is not a multiple of `dim`, or if an ids vector of the wrong
    /// length is supplied.
    pub fn build(
        coords: Vec<f64>,
        dim: usize,
        metric: SpatialMetric,
        ids: Option<Vec<u32>>,
    ) -> Self {
        assert!(
            (1..=GRID_MAX_DIM).contains(&dim),
            "uniform grid supports dimensions 1..={GRID_MAX_DIM}, got {dim}"
        );
        let n = crate::index::checked_point_count(&coords, dim, ids.as_deref());
        // Whole-set bounding box.
        let mut lo = vec![f64::INFINITY; dim];
        let mut hi = vec![f64::NEG_INFINITY; dim];
        for p in coords.chunks_exact(dim) {
            for a in 0..dim {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        // One cubic cell size targeting ~1 point per cell: the widest extent
        // divided into ~n^(1/dim) slabs. Degenerate extents (all points
        // equal, or an empty grid) fall back to a single cell per axis.
        let widest = (0..dim).fold(0.0_f64, |w, a| w.max(hi[a] - lo[a]));
        let per_axis = if n == 0 {
            1.0
        } else {
            (n as f64).powf(1.0 / dim as f64).ceil().max(1.0)
        };
        let cell = if widest > 0.0 { widest / per_axis } else { 1.0 };
        let counts: Vec<usize> = (0..dim)
            .map(|a| {
                if n == 0 {
                    1
                } else {
                    let span = (hi[a] - lo[a]) / cell;
                    (span.floor() as usize).saturating_add(1)
                }
            })
            .collect();
        let ncells: usize = counts.iter().product();

        // CSR bucket layout: counting sort by linearised cell id keeps
        // positions ascending within each bucket.
        let cell_of = |p: &[f64]| -> usize {
            let mut id = 0usize;
            for a in 0..dim {
                id = id * counts[a] + axis_cell(p[a], lo[a], cell, counts[a]);
            }
            id
        };
        let cells: Vec<usize> = coords.chunks_exact(dim).map(cell_of).collect();
        let mut starts = vec![0u32; ncells + 1];
        for &c in &cells {
            starts[c + 1] += 1;
        }
        for i in 0..ncells {
            starts[i + 1] += starts[i];
        }
        let mut cursor = starts.clone();
        let mut order = vec![0u32; n];
        for (pos, &c) in cells.iter().enumerate() {
            order[cursor[c] as usize] = pos as u32;
            cursor[c] += 1;
        }

        // Exact per-cell bounding boxes from the points actually held.
        let mut cell_lo = vec![f64::INFINITY; ncells * dim];
        let mut cell_hi = vec![f64::NEG_INFINITY; ncells * dim];
        for (pos, &c) in cells.iter().enumerate() {
            let p = &coords[pos * dim..(pos + 1) * dim];
            for (a, &coord) in p.iter().enumerate() {
                let slot = c * dim + a;
                cell_lo[slot] = cell_lo[slot].min(coord);
                cell_hi[slot] = cell_hi[slot].max(coord);
            }
        }

        // Re-materialise the points in bucket order: slot `s` holds point
        // `order[s]`, so every cell is a contiguous slot run for the
        // blocked kernels, and `slot_ids` carries the caller ids along.
        let soa = SoaPoints::from_flat_permuted(&coords, dim, &order);
        let slot_ids: Vec<u32> = order
            .iter()
            .map(|&pos| ids.as_ref().map_or(pos, |v| v[pos as usize]))
            .collect();

        UniformGrid {
            dim,
            metric,
            soa,
            slot_ids,
            lo,
            cell,
            counts,
            starts,
            cell_lo,
            cell_hi,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.slot_ids.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.slot_ids.is_empty()
    }

    /// The (clamped) per-axis cell coordinates of a query point.
    fn query_cell(&self, q: &[f64]) -> Vec<usize> {
        (0..self.dim)
            .map(|a| axis_cell(q[a], self.lo[a], self.cell, self.counts[a]))
            .collect()
    }

    #[inline]
    fn linear(&self, cell: &[usize]) -> usize {
        let mut id = 0usize;
        for (&count, &c) in self.counts.iter().zip(cell.iter()) {
            id = id * count + c;
        }
        id
    }

    /// Runs `visit` over every cell in the axis-aligned window
    /// `[win_lo, win_hi]` (inclusive, already clamped to the grid) — the
    /// candidate enumeration for range queries.
    fn for_cells_in_window(
        &self,
        win_lo: &[usize],
        win_hi: &[usize],
        mut visit: impl FnMut(usize),
    ) {
        let mut cell = win_lo.to_vec();
        loop {
            visit(self.linear(&cell));
            // Odometer increment over the window.
            let mut a = self.dim;
            loop {
                if a == 0 {
                    return;
                }
                a -= 1;
                if cell[a] < win_hi[a] {
                    cell[a] += 1;
                    break;
                }
                cell[a] = win_lo[a];
            }
        }
    }

    /// Runs `visit` over every in-grid cell whose Chebyshev cell-offset
    /// from `center` is **exactly** `ring`, each cell once — only the
    /// shell, O(ring^(dim-1)) cells, never the filled window (summed over
    /// all rings of a query this is at most the whole grid, so even a
    /// never-terminating far-field search stays O(#cells)).
    ///
    /// Partition: a shell cell is visited under the *first* axis on which
    /// it attains offset ±ring — earlier axes are restricted strictly
    /// inside the ring, later axes anywhere within it.
    fn for_ring_cells(&self, center: &[usize], ring: usize, mut visit: impl FnMut(usize)) {
        if ring == 0 {
            visit(self.linear(center));
            return;
        }
        let mut cell = vec![0usize; self.dim];
        for face_axis in 0..self.dim {
            for negative_side in [true, false] {
                let face_coord = if negative_side {
                    match center[face_axis].checked_sub(ring) {
                        Some(v) => v,
                        None => continue,
                    }
                } else {
                    let v = center[face_axis] + ring;
                    if v >= self.counts[face_axis] {
                        continue;
                    }
                    v
                };
                // Clamped iteration bounds for the non-face axes.
                let bound = |a: usize| -> (usize, usize) {
                    let slack = if a < face_axis { ring - 1 } else { ring };
                    (
                        center[a].saturating_sub(slack),
                        (center[a] + slack).min(self.counts[a] - 1),
                    )
                };
                for (a, c) in cell.iter_mut().enumerate() {
                    *c = if a == face_axis {
                        face_coord
                    } else {
                        bound(a).0
                    };
                }
                loop {
                    visit(self.linear(&cell));
                    // Odometer over the non-face axes.
                    let mut a = self.dim;
                    let mut done = true;
                    loop {
                        if a == 0 {
                            break;
                        }
                        a -= 1;
                        if a == face_axis {
                            continue;
                        }
                        if cell[a] < bound(a).1 {
                            cell[a] += 1;
                            done = false;
                            break;
                        }
                        cell[a] = bound(a).0;
                    }
                    if done {
                        break;
                    }
                }
            }
        }
    }

    /// Conservative lower bound on the distance from the query to any point
    /// in a cell at Chebyshev cell-offset `ring`: separated by at least
    /// `ring - 1` whole cells along some axis, slackened by [`RING_SLACK`].
    fn ring_bound(&self, ring: usize) -> f64 {
        if ring < 2 {
            return 0.0;
        }
        let sep = RING_SLACK * self.cell * (ring - 1) as f64;
        match self.metric {
            SpatialMetric::SquaredEuclidean => sep * sep,
            _ => sep,
        }
    }

    /// Largest ring that still intersects the grid from `center`.
    fn max_ring(&self, center: &[usize]) -> usize {
        (0..self.dim)
            .map(|a| center[a].max(self.counts[a] - 1 - center[a]))
            .max()
            .unwrap_or(0)
    }

    #[inline]
    fn cell_box(&self, c: usize) -> (&[f64], &[f64]) {
        let s = c * self.dim;
        (
            &self.cell_lo[s..s + self.dim],
            &self.cell_hi[s..s + self.dim],
        )
    }

    /// The contiguous slot range holding cell `c`'s points.
    #[inline]
    fn cell_slots(&self, c: usize) -> (usize, usize) {
        (self.starts[c] as usize, self.starts[c + 1] as usize)
    }

    /// The nearest indexed point to `q` (its caller id and distance), ties
    /// towards the lowest id; `None` when empty.
    pub fn nearest(&self, q: &[f64]) -> Option<(usize, f64)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut best = Best::new();
        if !self.is_empty() {
            self.search_rings(q, &mut best);
        }
        best.into_result()
    }

    /// The `k` nearest indexed points to `q` in ascending `(distance, id)`
    /// order (fewer when the index holds fewer than `k` points).
    pub fn k_nearest(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut best = KBest::new(k);
        if k > 0 && !self.is_empty() {
            self.search_rings(q, &mut best);
        }
        best.into_sorted()
    }

    /// The one ring expansion behind both nearest and k-nearest: shells of
    /// increasing Chebyshev cell-offset around the query's cell, per-cell
    /// exact-bbox pruning, until the conservative ring bound beats the
    /// accumulator's distance to beat (or the grid is exhausted).
    fn search_rings<A: Accumulator>(&self, q: &[f64], acc: &mut A) {
        let center = self.query_cell(q);
        let max_ring = self.max_ring(&center);
        for ring in 0..=max_ring {
            if acc
                .bound_to_beat()
                .is_some_and(|d| self.ring_bound(ring) > d)
            {
                break;
            }
            self.for_ring_cells(&center, ring, |c| {
                let (s0, s1) = self.cell_slots(c);
                if s0 == s1 {
                    return;
                }
                let (blo, bhi) = self.cell_box(c);
                if acc.prunes(self.metric.box_lower_bound(q, blo, bhi)) {
                    return;
                }
                scan_slots(self.metric, q, &self.soa, s0, s1, &self.slot_ids, acc);
            });
        }
    }

    /// Caller ids of every indexed point within `radius` of `q`
    /// (inclusive, `d <= radius`), ascending.
    pub fn range(&self, q: &[f64], radius: f64) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        let mut out = Vec::new();
        if self.is_empty() || radius < 0.0 {
            return out;
        }
        // Per-axis displacement of an in-range point: `radius` for the
        // distance metrics, `sqrt(radius)` for squared Euclidean. One extra
        // cell of margin absorbs bucket-assignment rounding.
        let reach = match self.metric {
            SpatialMetric::SquaredEuclidean => radius.sqrt(),
            _ => radius,
        };
        let win_lo: Vec<usize> = (0..self.dim)
            .map(|a| {
                axis_cell(q[a] - reach, self.lo[a], self.cell, self.counts[a]).saturating_sub(1)
            })
            .collect();
        let win_hi: Vec<usize> = (0..self.dim)
            .map(|a| {
                (axis_cell(q[a] + reach, self.lo[a], self.cell, self.counts[a]) + 1)
                    .min(self.counts[a] - 1)
            })
            .collect();
        self.for_cells_in_window(&win_lo, &win_hi, |c| {
            let (s0, s1) = self.cell_slots(c);
            if s0 == s1 {
                return;
            }
            let (blo, bhi) = self.cell_box(c);
            if self.metric.box_lower_bound(q, blo, bhi) > radius {
                return;
            }
            collect_slots(
                self.metric,
                q,
                &self.soa,
                s0,
                s1,
                &self.slot_ids,
                radius,
                &mut out,
            );
        });
        crate::query::sort_ids_ascending(&mut out, self.slot_ids.len());
        out
    }

    /// Estimated resident bytes of the index structure (slot-ordered
    /// coordinates, buckets, per-cell boxes, id map).
    pub fn memory_bytes(&self) -> u64 {
        (self.soa.memory_bytes()
            + (self.cell_lo.len() + self.cell_hi.len()) * std::mem::size_of::<f64>()
            + (self.starts.len() + self.slot_ids.len()) * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_util::{brute_k_nearest, brute_nearest, brute_range, sample_coords};

    #[test]
    fn matches_brute_force_across_dims_and_metrics() {
        for &dim in &[1usize, 2, 3] {
            for metric in [
                SpatialMetric::Euclidean,
                SpatialMetric::SquaredEuclidean,
                SpatialMetric::Manhattan,
                SpatialMetric::Chebyshev,
            ] {
                let coords = sample_coords(301, dim, 0x9A1D + dim as u64);
                let grid = UniformGrid::build(coords.clone(), dim, metric, None);
                let queries = sample_coords(20, dim, 0x5EED);
                for q in queries.chunks(dim) {
                    assert_eq!(
                        grid.nearest(q),
                        brute_nearest(&coords, dim, metric, q),
                        "dim {dim} {metric:?}"
                    );
                    assert_eq!(
                        grid.k_nearest(q, 9),
                        brute_k_nearest(&coords, dim, metric, q, 9),
                        "dim {dim} {metric:?}"
                    );
                    let r = metric.distance(q, &coords[..dim]);
                    assert_eq!(
                        grid.range(q, r),
                        brute_range(&coords, dim, metric, q, r),
                        "dim {dim} {metric:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_points_identical_is_one_degenerate_cell() {
        let coords = [3.5, -1.0].repeat(40);
        let grid = UniformGrid::build(coords, 2, SpatialMetric::Euclidean, None);
        assert_eq!(grid.nearest(&[3.5, -1.0]), Some((0, 0.0)));
        assert_eq!(grid.nearest(&[100.0, 100.0]).map(|(id, _)| id), Some(0));
        assert_eq!(grid.range(&[3.5, -1.0], 0.0).len(), 40);
        assert_eq!(
            grid.k_nearest(&[0.0, 0.0], 3)
                .iter()
                .map(|&(id, _)| id)
                .collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn queries_far_outside_the_bounding_box() {
        let coords = sample_coords(120, 2, 7);
        let grid = UniformGrid::build(coords.clone(), 2, SpatialMetric::Manhattan, None);
        for q in [[-1e4, -1e4], [1e4, 0.0], [0.5, 1e6]] {
            assert_eq!(
                grid.nearest(&q),
                brute_nearest(&coords, 2, SpatialMetric::Manhattan, &q)
            );
            assert_eq!(
                grid.range(&q, 2e4),
                brute_range(&coords, 2, SpatialMetric::Manhattan, &q, 2e4)
            );
        }
    }

    #[test]
    fn empty_grid_and_custom_ids() {
        let empty = UniformGrid::build(Vec::new(), 2, SpatialMetric::Euclidean, None);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest(&[0.0, 0.0]), None);
        assert!(empty.range(&[0.0, 0.0], 1e9).is_empty());

        let grid = UniformGrid::build(
            vec![0.0, 5.0, 9.0],
            1,
            SpatialMetric::Euclidean,
            Some(vec![30, 20, 10]),
        );
        assert_eq!(grid.nearest(&[8.0]), Some((10, 1.0)));
        assert_eq!(grid.range(&[5.0], 4.0), vec![10, 20]);
    }

    #[test]
    fn rejects_unsupported_dimensions() {
        let r = std::panic::catch_unwind(|| {
            UniformGrid::build(vec![0.0; 8], 4, SpatialMetric::Euclidean, None)
        });
        assert!(r.is_err(), "dim 4 must be rejected");
        let r = std::panic::catch_unwind(|| {
            UniformGrid::build(Vec::new(), 0, SpatialMetric::Euclidean, None)
        });
        assert!(r.is_err(), "dim 0 must be rejected");
    }
}
