//! [`Solver`] adapters for the parallel k-clustering algorithms.
//!
//! As in `parfaclo-core`, the free functions remain the implementations;
//! these types project the unified [`RunConfig`] (which carries `k`) into
//! the native argument lists and repackage the solutions into [`Run`]
//! envelopes.

use crate::kcenter::parallel_kcenter_derived;
use crate::local_search::{parallel_local_search, ClusterObjective, LocalSearchConfig};
use parfaclo_api::{ProblemKind, Run, RunConfig, Solver};
use parfaclo_metric::coreset::{build_coreset, coreset_instance, Coreset, GridCoreset};
use parfaclo_metric::ClusterInstance;
use parfaclo_trace as trace;

/// Largest instance the direct (non-coreset) local search accepts: the swap
/// sweep is `O(n² k)` per round, so past this point the run would take hours
/// — the hierarchical `--coreset eps:<f64>` path is the supported route.
const DIRECT_LOCAL_SEARCH_LIMIT: usize = 32_768;

/// Builds the ε-grid coreset and its weighted sub-instance for a hierarchical
/// solve, or explains why it cannot.
fn coreset_for(
    solver_name: &str,
    inst: &ClusterInstance,
    eps: f64,
    k: usize,
) -> Result<(GridCoreset, ClusterInstance), String> {
    let points = inst.points().ok_or_else(|| {
        format!(
            "solver '{solver_name}' with --coreset needs point geometry, but the instance \
             carries none (a hand-written distance matrix); build the instance from points \
             or use --backend implicit / --backend spatial"
        )
    })?;
    let cs = build_coreset(points, eps);
    if cs.len() < k {
        return Err(format!(
            "coreset eps:{eps} collapses the instance to {} cells, fewer than k = {k}; \
             use a smaller epsilon (more grid cells) or a smaller k",
            cs.len()
        ));
    }
    let sub = coreset_instance(inst, &cs);
    Ok((cs, sub))
}

impl From<&RunConfig> for LocalSearchConfig {
    fn from(cfg: &RunConfig) -> Self {
        LocalSearchConfig {
            epsilon: cfg.epsilon,
            seed: cfg.seed,
            policy: cfg.policy,
            max_rounds: cfg.max_rounds,
        }
    }
}

/// The parallel Hochbaum–Shmoys k-center algorithm (Section 6.1) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KCenterSolver;

impl Solver for KCenterSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kcenter"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        2.0
    }

    fn guarantee_is_exact(&self) -> bool {
        // Theorem 6.1 is a plain 2-approximation: the binary search runs
        // over the exact distance set, no ε slack is paid.
        true
    }

    fn paper_ref(&self) -> &str {
        "Section 6.1, Theorem 6.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        if let Coreset::Eps(eps) = cfg.coreset {
            let (cs, sub) = {
                let _span = trace::span("coreset-build", None);
                coreset_for(Solver::name(self), inst, eps, cfg.k)?
            };
            let sol = {
                let _span = trace::span("sub-solve", None);
                parallel_kcenter_derived(
                    &sub,
                    cfg.k,
                    cfg.seed,
                    cfg.policy,
                    cfg.graph,
                    cfg.radius_deriver,
                )?
            };
            let sweep_span = trace::span("full-sweep", None);
            // Coreset cell indices are assigned in ascending representative
            // order, so this mapping preserves the sorted-centers invariant.
            let centers: Vec<usize> = sol
                .centers
                .iter()
                .map(|&c| cs.representatives()[c])
                .collect();
            // One full-set sweep: assignment plus the true (full-set) radius.
            let mut radius = 0.0_f64;
            let mut assignment = Vec::with_capacity(inst.n());
            for c in inst.closest_center_all(&centers) {
                let (ctr, d) = c.expect("k >= 1 keeps the center set non-empty");
                radius = radius.max(d);
                assignment.push(ctr);
            }
            drop(sweep_span);
            // No `with_lower_bound`: the sub-instance's certified threshold
            // bounds the coreset optimum, not the full-set optimum.
            return Ok(Run::new(Solver::name(self), ProblemKind::KClustering)
                .with_guarantee(Solver::guarantee(self))
                .with_instance_size(inst.n(), inst.n() * inst.n())
                .with_cost(radius)
                .with_selected(centers)
                .with_assignment(assignment)
                .with_rounds(sol.probes, sol.luby_rounds)
                .with_work(sol.work)
                .with_extra("threshold", sol.threshold)
                .with_extra("probes", sol.probes as f64)
                .with_extra("k", cfg.k as f64)
                .with_extra("coreset_cost", sol.radius)
                .with_extra("coreset_size", cs.len() as f64)
                .with_extra("coreset_eps", eps)
                .with_config_echo(cfg));
        }
        let sol = parallel_kcenter_derived(
            inst,
            cfg.k,
            cfg.seed,
            cfg.policy,
            cfg.graph,
            cfg.radius_deriver,
        )?;
        let assignment = {
            let _span = trace::span("full-sweep", None);
            inst.center_assignment(&sol.centers)
        };
        Ok(Run::new(Solver::name(self), ProblemKind::KClustering)
            .with_guarantee(Solver::guarantee(self))
            .with_instance_size(inst.n(), inst.n() * inst.n())
            .with_cost(sol.radius)
            // With the exact deriver this equals the settled threshold (the
            // smallest feasible member of the complete distance set); the
            // sketch deriver certifies via its largest infeasible probe
            // instead (see `KCenterSolution::lower_bound`).
            .with_lower_bound(sol.lower_bound)
            .with_selected(sol.centers)
            .with_assignment(assignment)
            .with_rounds(sol.probes, sol.luby_rounds)
            .with_work(sol.work)
            .with_extra("threshold", sol.threshold)
            .with_extra("probes", sol.probes as f64)
            .with_extra("k", cfg.k as f64)
            .with_config_echo(cfg))
    }
}

/// Shared adapter for the swap-based local search under either objective.
///
/// With [`Coreset::Eps`] configured this is the hierarchical solve: build
/// the ε-grid coreset, run the swap search on the weighted sub-instance,
/// then make one batched full-set sweep to derive the final assignment and
/// the true (full-set) cost. Both the coreset-internal and full-set costs
/// land in the envelope (`extra.coreset_cost` / `cost`).
fn local_search_run(
    solver: &(impl Solver + ?Sized),
    objective: ClusterObjective,
    inst: &ClusterInstance,
    cfg: &RunConfig,
) -> Result<Run, String> {
    if let Coreset::Eps(eps) = cfg.coreset {
        let (cs, sub) = {
            let _span = trace::span("coreset-build", None);
            coreset_for(Solver::name(solver), inst, eps, cfg.k)?
        };
        let ls_cfg = LocalSearchConfig::from(cfg);
        let sol = {
            let _span = trace::span("sub-solve", None);
            parallel_local_search(&sub, cfg.k, objective, &ls_cfg)
        };
        let sweep_span = trace::span("full-sweep", None);
        // Coreset cell indices are assigned in ascending representative
        // order, so this mapping preserves the sorted-centers invariant.
        let centers: Vec<usize> = sol
            .centers
            .iter()
            .map(|&c| cs.representatives()[c])
            .collect();
        // One full-set sweep via the batched oracle query: assignment plus
        // the true (full-set) objective value.
        let mut cost = 0.0_f64;
        let mut assignment = Vec::with_capacity(inst.n());
        for (j, c) in inst.closest_center_all(&centers).into_iter().enumerate() {
            let (ctr, d) = c.expect("k >= 1 keeps the center set non-empty");
            cost += inst.weight(j)
                * match objective {
                    ClusterObjective::KMedian => d,
                    ClusterObjective::KMeans => d * d,
                };
            assignment.push(ctr);
        }
        drop(sweep_span);
        return Ok(Run::new(Solver::name(solver), ProblemKind::KClustering)
            .with_guarantee(Solver::guarantee(solver))
            .with_instance_size(inst.n(), inst.n() * inst.n())
            .with_cost(cost)
            .with_selected(centers)
            .with_assignment(assignment)
            .with_rounds(sol.rounds, 0)
            .with_work(sol.work)
            .with_extra("initial_cost", sol.initial_cost)
            .with_extra("k", cfg.k as f64)
            .with_extra("coreset_cost", sol.cost)
            .with_extra("coreset_size", cs.len() as f64)
            .with_extra("coreset_eps", eps)
            .with_config_echo(cfg));
    }
    if inst.n() > DIRECT_LOCAL_SEARCH_LIMIT {
        return Err(format!(
            "n = {} exceeds the direct local-search limit of {DIRECT_LOCAL_SEARCH_LIMIT} \
             nodes (the swap sweep is O(n^2 k) per round); rerun with --coreset eps:<f64> \
             (e.g. --coreset eps:0.1) for the hierarchical coreset solve",
            inst.n()
        ));
    }
    let ls_cfg = LocalSearchConfig::from(cfg);
    let sol = {
        let _span = trace::span("swap-search", None);
        parallel_local_search(inst, cfg.k, objective, &ls_cfg)
    };
    let assignment = {
        let _span = trace::span("full-sweep", None);
        inst.center_assignment(&sol.centers)
    };
    Ok(Run::new(Solver::name(solver), ProblemKind::KClustering)
        .with_guarantee(Solver::guarantee(solver))
        .with_instance_size(inst.n(), inst.n() * inst.n())
        .with_cost(sol.cost)
        .with_selected(sol.centers)
        .with_assignment(assignment)
        .with_rounds(sol.rounds, 0)
        .with_work(sol.work)
        .with_extra("initial_cost", sol.initial_cost)
        .with_extra("k", cfg.k as f64)
        .with_config_echo(cfg))
}

/// The parallel swap-based local search for k-median (Section 7) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMedianLocalSearchSolver;

impl Solver for KMedianLocalSearchSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kmedian-ls"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        5.0
    }

    fn paper_ref(&self) -> &str {
        "Section 7, Theorem 7.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        local_search_run(self, ClusterObjective::KMedian, inst, cfg)
    }
}

/// The parallel swap-based local search for k-means (Section 7) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansLocalSearchSolver;

impl Solver for KMeansLocalSearchSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kmeans-ls"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        81.0
    }

    fn paper_ref(&self) -> &str {
        "Section 7, Theorem 7.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        local_search_run(self, ClusterObjective::KMeans, inst, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};

    fn tiny() -> ClusterInstance {
        gen::clustering(GenParams::planted(24, 24, 4).with_seed(2))
    }

    #[test]
    fn kcenter_adapter_matches_free_function() {
        let inst = tiny();
        let cfg = RunConfig::new(0.1).with_seed(6).with_k(4);
        let direct = crate::kcenter::parallel_kcenter(&inst, 4, 6, cfg.policy);
        let run = KCenterSolver.solve(&inst, &cfg).expect("feasible");
        assert_eq!(run.cost, direct.radius);
        assert_eq!(run.selected, direct.centers);
        assert_eq!(run.lower_bound, direct.threshold);
        run.validate().expect("valid envelope");
    }

    #[test]
    fn clustering_adapters_produce_valid_runs() {
        let inst = tiny();
        let cfg = RunConfig::new(0.2).with_seed(1).with_k(3);
        for run in [
            KCenterSolver.solve(&inst, &cfg).expect("feasible"),
            KMedianLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
            KMeansLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            assert_eq!(run.problem, ProblemKind::KClustering);
            assert!(run.selected.len() <= 3);
            assert_eq!(run.assignment.len(), inst.n());
        }
    }

    #[test]
    fn coreset_runs_are_valid_and_report_both_costs() {
        let inst = tiny();
        let cfg = RunConfig::new(0.2)
            .with_seed(1)
            .with_k(3)
            .with_coreset(Coreset::Eps(0.05));
        for run in [
            KCenterSolver.solve(&inst, &cfg).expect("feasible"),
            KMedianLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
            KMeansLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            assert_eq!(run.assignment.len(), inst.n(), "{}", run.solver);
            let extra = |key: &str| -> f64 {
                run.extra
                    .iter()
                    .find(|(k, _)| k == key)
                    .unwrap_or_else(|| panic!("{}: missing extra '{key}'", run.solver))
                    .1
            };
            let size = extra("coreset_size");
            assert!(size >= 3.0 && size <= inst.n() as f64, "{}", run.solver);
            assert_eq!(extra("coreset_eps"), 0.05, "{}", run.solver);
            // The coreset-internal cost is reported alongside the full-set
            // cost, and the full-set cost matches the returned centers.
            let _ = extra("coreset_cost");
            let recomputed = match run.solver.as_str() {
                "kcenter" => inst.kcenter_cost(&run.selected),
                "kmedian-ls" => inst.kmedian_cost(&run.selected),
                _ => inst.kmeans_cost(&run.selected),
            };
            assert_eq!(run.cost, recomputed, "{}", run.solver);
        }
    }

    #[test]
    fn kcenter_coreset_run_claims_no_lower_bound() {
        let inst = tiny();
        let cfg = RunConfig::new(0.2)
            .with_seed(1)
            .with_k(3)
            .with_coreset(Coreset::Eps(0.05));
        let run = KCenterSolver.solve(&inst, &cfg).expect("feasible");
        // The sub-instance threshold certifies the coreset optimum only, so
        // the envelope must not advertise it as a full-set lower bound.
        assert_eq!(run.lower_bound, 0.0);
    }

    #[test]
    fn coreset_without_geometry_is_refused() {
        use parfaclo_metric::DistanceMatrix;
        let inst = ClusterInstance::new(DistanceMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]));
        let cfg = RunConfig::new(0.2)
            .with_k(1)
            .with_coreset(Coreset::Eps(0.1));
        let err = KMedianLocalSearchSolver.solve(&inst, &cfg).unwrap_err();
        assert!(err.contains("point geometry"), "{err}");
    }

    #[test]
    fn coreset_smaller_than_k_is_refused() {
        let inst = tiny();
        // eps:10 puts every point in one grid cell: 1 cell < k = 3.
        let cfg = RunConfig::new(0.2)
            .with_k(3)
            .with_coreset(Coreset::Eps(10.0));
        let err = KMedianLocalSearchSolver.solve(&inst, &cfg).unwrap_err();
        assert!(err.contains("fewer than k"), "{err}");
    }

    #[test]
    fn oversized_direct_local_search_is_refused_with_a_coreset_pointer() {
        use parfaclo_metric::{gen::build_clustering, Backend};
        let params = GenParams::uniform_square(DIRECT_LOCAL_SEARCH_LIMIT + 1, 1).with_seed(3);
        let inst = build_clustering(params, Backend::Implicit).expect("O(n) memory");
        let cfg = RunConfig::new(0.2).with_k(4);
        let err = KMedianLocalSearchSolver.solve(&inst, &cfg).unwrap_err();
        assert!(err.contains("--coreset eps:<f64>"), "{err}");
        // The same instance is accepted once a coreset is configured.
        let run = KMedianLocalSearchSolver
            .solve(&inst, &cfg.with_coreset(Coreset::Eps(0.1)))
            .expect("hierarchical solve succeeds");
        assert_eq!(run.assignment.len(), inst.n());
    }

    #[test]
    fn local_search_config_projection() {
        let rc = RunConfig::new(0.4).with_seed(11).with_max_rounds(77);
        let ls = LocalSearchConfig::from(&rc);
        assert_eq!(ls.epsilon, 0.4);
        assert_eq!(ls.seed, 11);
        assert_eq!(ls.max_rounds, 77);
    }
}
