//! [`Solver`] adapters for the parallel k-clustering algorithms.
//!
//! As in `parfaclo-core`, the free functions remain the implementations;
//! these types project the unified [`RunConfig`] (which carries `k`) into
//! the native argument lists and repackage the solutions into [`Run`]
//! envelopes.

use crate::kcenter::parallel_kcenter_derived;
use crate::local_search::{parallel_local_search, ClusterObjective, LocalSearchConfig};
use parfaclo_api::{ProblemKind, Run, RunConfig, Solver};
use parfaclo_metric::ClusterInstance;

impl From<&RunConfig> for LocalSearchConfig {
    fn from(cfg: &RunConfig) -> Self {
        LocalSearchConfig {
            epsilon: cfg.epsilon,
            seed: cfg.seed,
            policy: cfg.policy,
            max_rounds: cfg.max_rounds,
        }
    }
}

/// The parallel Hochbaum–Shmoys k-center algorithm (Section 6.1) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KCenterSolver;

impl Solver for KCenterSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kcenter"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        2.0
    }

    fn guarantee_is_exact(&self) -> bool {
        // Theorem 6.1 is a plain 2-approximation: the binary search runs
        // over the exact distance set, no ε slack is paid.
        true
    }

    fn paper_ref(&self) -> &str {
        "Section 6.1, Theorem 6.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        let sol = parallel_kcenter_derived(
            inst,
            cfg.k,
            cfg.seed,
            cfg.policy,
            cfg.graph,
            cfg.radius_deriver,
        )?;
        let assignment = inst.center_assignment(&sol.centers);
        Ok(Run::new(Solver::name(self), ProblemKind::KClustering)
            .with_guarantee(Solver::guarantee(self))
            .with_instance_size(inst.n(), inst.n() * inst.n())
            .with_cost(sol.radius)
            // With the exact deriver this equals the settled threshold (the
            // smallest feasible member of the complete distance set); the
            // sketch deriver certifies via its largest infeasible probe
            // instead (see `KCenterSolution::lower_bound`).
            .with_lower_bound(sol.lower_bound)
            .with_selected(sol.centers)
            .with_assignment(assignment)
            .with_rounds(sol.probes, sol.luby_rounds)
            .with_work(sol.work)
            .with_extra("threshold", sol.threshold)
            .with_extra("probes", sol.probes as f64)
            .with_extra("k", cfg.k as f64)
            .with_config_echo(cfg))
    }
}

/// Shared adapter for the swap-based local search under either objective.
fn local_search_run(
    solver: &(impl Solver + ?Sized),
    objective: ClusterObjective,
    inst: &ClusterInstance,
    cfg: &RunConfig,
) -> Run {
    let ls_cfg = LocalSearchConfig::from(cfg);
    let sol = parallel_local_search(inst, cfg.k, objective, &ls_cfg);
    let assignment = inst.center_assignment(&sol.centers);
    Run::new(Solver::name(solver), ProblemKind::KClustering)
        .with_guarantee(Solver::guarantee(solver))
        .with_instance_size(inst.n(), inst.n() * inst.n())
        .with_cost(sol.cost)
        .with_selected(sol.centers)
        .with_assignment(assignment)
        .with_rounds(sol.rounds, 0)
        .with_work(sol.work)
        .with_extra("initial_cost", sol.initial_cost)
        .with_extra("k", cfg.k as f64)
        .with_config_echo(cfg)
}

/// The parallel swap-based local search for k-median (Section 7) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMedianLocalSearchSolver;

impl Solver for KMedianLocalSearchSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kmedian-ls"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        5.0
    }

    fn paper_ref(&self) -> &str {
        "Section 7, Theorem 7.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        Ok(local_search_run(self, ClusterObjective::KMedian, inst, cfg))
    }
}

/// The parallel swap-based local search for k-means (Section 7) behind the
/// unified API.
#[derive(Debug, Clone, Copy, Default)]
pub struct KMeansLocalSearchSolver;

impl Solver for KMeansLocalSearchSolver {
    type Instance = ClusterInstance;
    type Config = RunConfig;

    fn name(&self) -> &str {
        "kmeans-ls"
    }

    fn problem(&self) -> ProblemKind {
        ProblemKind::KClustering
    }

    fn guarantee(&self) -> f64 {
        81.0
    }

    fn paper_ref(&self) -> &str {
        "Section 7, Theorem 7.1"
    }

    fn solve(&self, inst: &ClusterInstance, cfg: &RunConfig) -> Result<Run, String> {
        Ok(local_search_run(self, ClusterObjective::KMeans, inst, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};

    fn tiny() -> ClusterInstance {
        gen::clustering(GenParams::planted(24, 24, 4).with_seed(2))
    }

    #[test]
    fn kcenter_adapter_matches_free_function() {
        let inst = tiny();
        let cfg = RunConfig::new(0.1).with_seed(6).with_k(4);
        let direct = crate::kcenter::parallel_kcenter(&inst, 4, 6, cfg.policy);
        let run = KCenterSolver.solve(&inst, &cfg).expect("feasible");
        assert_eq!(run.cost, direct.radius);
        assert_eq!(run.selected, direct.centers);
        assert_eq!(run.lower_bound, direct.threshold);
        run.validate().expect("valid envelope");
    }

    #[test]
    fn clustering_adapters_produce_valid_runs() {
        let inst = tiny();
        let cfg = RunConfig::new(0.2).with_seed(1).with_k(3);
        for run in [
            KCenterSolver.solve(&inst, &cfg).expect("feasible"),
            KMedianLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
            KMeansLocalSearchSolver
                .solve(&inst, &cfg)
                .expect("feasible"),
        ] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
            assert_eq!(run.problem, ProblemKind::KClustering);
            assert!(run.selected.len() <= 3);
            assert_eq!(run.assignment.len(), inst.n());
        }
    }

    #[test]
    fn local_search_config_projection() {
        let rc = RunConfig::new(0.4).with_seed(11).with_max_rounds(77);
        let ls = LocalSearchConfig::from(&rc);
        assert_eq!(ls.epsilon, 0.4);
        assert_eq!(ls.seed, 11);
        assert_eq!(ls.max_rounds, 77);
    }
}
