//! # parfaclo-kclustering
//!
//! Parallel k-clustering algorithms from *Blelloch & Tangwongsan (SPAA 2010)*:
//!
//! * [`kcenter`] — the parallel Hochbaum–Shmoys 2-approximation for **k-center**
//!   (Section 6.1, Theorem 6.1): binary search over the sorted distance set, with the
//!   dominator-set algorithm `MaxDom` as the feasibility probe.
//! * [`local_search`] — the parallel swap-based local search (Section 7, Theorem 7.1)
//!   for **k-median** (`5 + ε`) and **k-means** (`81 + ε`): every candidate swap is
//!   evaluated in parallel per round, the best improving swap (by at least a
//!   `(1 − β/k)` factor, `β = ε/(1+ε)`) is applied, and the initial solution comes from
//!   the k-center algorithm so that only `O(k log n / ε)` rounds are needed.
//!
//! Both record round counts and work in [`parfaclo_matrixops::CostMeter`] so the
//! experiment harness can compare against the paper's `O((n log n)²)` and
//! `O(k²(n−k)n log n)` bounds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kcenter;
pub mod local_search;
pub mod solvers;

pub use kcenter::{
    parallel_kcenter, parallel_kcenter_derived, parallel_kcenter_sketched, parallel_kcenter_with,
    KCenterSolution,
};
pub use local_search::{
    parallel_kmeans, parallel_kmedian, ClusterObjective, KClusterSolution, LocalSearchConfig,
};
pub use solvers::{KCenterSolver, KMeansLocalSearchSolver, KMedianLocalSearchSolver};
