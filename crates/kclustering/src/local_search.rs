//! Parallel local search for k-median and k-means (Section 7, Theorem 7.1).
//!
//! The sequential single-swap local search is parallelised at the level of one
//! local-search step: all `k·(n−k)` candidate swaps are evaluated **simultaneously in
//! parallel**, each in `O(n)` work using the precomputed closest / second-closest center
//! of every node, and the best swap is applied if it improves the objective by at least
//! a `(1 − β/k)` factor (`β = ε/(1+ε)`). Two further ingredients bound the number of
//! rounds by `O(k log(n)/ε)`:
//!
//! * the initial solution comes from the parallel k-center 2-approximation of Section
//!   6.1, which is an `O(n)`-approximation for k-median / k-means, and
//! * the improvement threshold ensures geometric progress.
//!
//! The guarantees match the sequential local search: `5 + ε` for k-median and `81 + ε`
//! for k-means (Arya et al. / Gupta–Tangwongsan).

use crate::kcenter::parallel_kcenter;
use parfaclo_matrixops::{CostMeter, CostReport, ExecPolicy};
use parfaclo_metric::{ClusterInstance, DistanceOracle, NodeId};
use parfaclo_trace as trace;
use rayon::prelude::*;

/// Which objective the local search optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterObjective {
    /// Sum of distances to the closest center (k-median).
    KMedian,
    /// Sum of squared distances to the closest center (k-means).
    KMeans,
}

impl ClusterObjective {
    /// Transforms a raw distance into its contribution to the objective.
    #[inline]
    pub fn cost_of(self, d: f64) -> f64 {
        match self {
            ClusterObjective::KMedian => d,
            ClusterObjective::KMeans => d * d,
        }
    }

    /// The approximation factor the local search guarantees for this objective (before
    /// the `+ ε`).
    pub fn guarantee(self) -> f64 {
        match self {
            ClusterObjective::KMedian => 5.0,
            ClusterObjective::KMeans => 81.0,
        }
    }
}

/// Configuration for the parallel local search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// The ε of the `(1 − β/k)` improvement threshold and of the `5 + ε` guarantee.
    pub epsilon: f64,
    /// Seed for the k-center initialisation.
    pub seed: u64,
    /// Execution policy for the swap evaluation and the initialisation.
    pub policy: ExecPolicy,
    /// Defensive cap on the number of local-search rounds.
    pub max_rounds: usize,
}

impl LocalSearchConfig {
    /// A configuration with the given ε and defaults for everything else.
    ///
    /// # Panics
    /// Panics if `epsilon <= 0`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        LocalSearchConfig {
            epsilon,
            seed: 0,
            policy: ExecPolicy::Parallel,
            max_rounds: 1_000_000,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the execution policy.
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig::new(0.1)
    }
}

/// Result of the parallel local search.
#[derive(Debug, Clone)]
pub struct KClusterSolution {
    /// Final centers (exactly `min(k, n)` of them, sorted ascending).
    pub centers: Vec<NodeId>,
    /// Final objective value (weighted, when the instance carries per-node
    /// weights).
    pub cost: f64,
    /// Objective value of the k-center-based initial solution.
    pub initial_cost: f64,
    /// Number of improving swaps applied (= number of local-search rounds).
    pub rounds: usize,
    /// Work counters accumulated over the run (including the initialisation).
    pub work: CostReport,
}

/// For every node, its closest and second-closest center (indices into `centers`) and
/// the corresponding distances.
fn closest_two(
    inst: &ClusterInstance,
    centers: &[NodeId],
    policy: ExecPolicy,
) -> Vec<(usize, f64, f64)> {
    let n = inst.n();
    let oracle = inst.distances();
    // Each node's center distances are gathered in one blocked-kernel
    // oracle call, then walked in the same ascending center order (and with
    // the same strict comparisons) as a per-element loop would — identical
    // best/second values and indices.
    let scan = |dists: &[f64]| -> (usize, f64, f64) {
        let mut best = (usize::MAX, f64::INFINITY);
        let mut second = f64::INFINITY;
        for (ci, &d) in dists.iter().enumerate() {
            if d < best.1 {
                second = best.1;
                best = (ci, d);
            } else if d < second {
                second = d;
            }
        }
        (best.0, best.1, second)
    };
    let mut out = vec![(usize::MAX, f64::INFINITY, f64::INFINITY); n];
    let fill = |base: usize, seg: &mut [(usize, f64, f64)], buf: &mut [f64]| {
        for (o, slot) in seg.iter_mut().enumerate() {
            oracle.row_gather(base + o, centers, buf);
            *slot = scan(buf);
        }
    };
    if policy.run_parallel(n * centers.len()) {
        let chunk = rayon::deterministic_chunk_len(n, 64);
        out.par_chunks_mut(chunk).enumerate().for_each(|(ci, seg)| {
            let mut buf = vec![0.0; centers.len()];
            fill(ci * chunk, seg, &mut buf);
        });
    } else {
        let mut buf = vec![0.0; centers.len()];
        fill(0, &mut out, &mut buf);
    }
    out
}

/// Runs the parallel local search for the given objective.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn parallel_local_search(
    inst: &ClusterInstance,
    k: usize,
    objective: ClusterObjective,
    cfg: &LocalSearchConfig,
) -> KClusterSolution {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    let meter = CostMeter::new();
    let k = k.min(n);

    // ---- Initial solution: the parallel k-center 2-approximation ----------------------
    let kc = parallel_kcenter(inst, k, cfg.seed, cfg.policy);
    let mut centers: Vec<NodeId> = kc.centers;
    // k-center may return fewer than k centers when nodes coincide; pad with arbitrary
    // distinct nodes so exactly k centers are maintained (harmless: extra centers never
    // increase the objective).
    for v in 0..n {
        if centers.len() >= k {
            break;
        }
        if !centers.contains(&v) {
            centers.push(v);
        }
    }

    // Per-node weights (coreset cell populations) scale each node's term;
    // an unweighted instance multiplies by 1.0, which is bitwise identity,
    // so the historical unweighted outputs are byte-for-byte unchanged.
    let eval = |centers: &[NodeId]| -> f64 {
        (0..n)
            .map(|j| {
                let d = inst.closest_center(j, centers).unwrap().1;
                inst.weight(j) * objective.cost_of(d)
            })
            .sum()
    };
    let initial_cost = eval(&centers);
    let mut cost = initial_cost;

    let beta = cfg.epsilon / (1.0 + cfg.epsilon);
    let threshold = 1.0 - beta / k as f64;
    let mut rounds = 0usize;

    loop {
        assert!(
            rounds <= cfg.max_rounds,
            "parallel local search exceeded {} rounds",
            cfg.max_rounds
        );
        // Precompute closest / second-closest centers for every node.
        meter.add_primitive((n * k) as u64);
        let nearest = closest_two(inst, &centers, cfg.policy);

        // Evaluate every swap (drop centers[pos], add candidate) in parallel.
        meter.add_primitive((k * n * n) as u64);
        let in_centers: Vec<bool> = {
            let mut v = vec![false; n];
            for &c in &centers {
                v[c] = true;
            }
            v
        };
        let candidates: Vec<NodeId> = (0..n).filter(|&v| !in_centers[v]).collect();
        // One candidate's distance column serves all k of its swaps: the
        // column is filled once through the oracle's blocked kernels
        // (instead of k redundant per-element passes), then each dropped
        // position sums the same `keep.min(d)` terms in the same ascending
        // node order as a per-pair loop would — identical values, and the
        // best-swap comparator below is total on (cost, pos, add), so the
        // changed enumeration order cannot change the chosen swap.
        let eval_add = |&add: &NodeId| -> Vec<(usize, NodeId, f64)> {
            let col = inst.distances().col_to_vec(add);
            (0..centers.len())
                .map(|pos| {
                    let mut sum = 0.0;
                    for (j, &dj) in col.iter().enumerate() {
                        let (ci, d1, d2) = nearest[j];
                        let keep = if ci == pos { d2 } else { d1 };
                        sum += inst.weight(j) * objective.cost_of(keep.min(dj));
                    }
                    (pos, add, sum)
                })
                .collect()
        };
        let swaps: Vec<(usize, NodeId, f64)> = if cfg.policy.run_parallel(k * candidates.len() * n)
        {
            candidates
                .par_iter()
                .flat_map_iter(|add| eval_add(add).into_iter())
                .collect()
        } else {
            candidates.iter().flat_map(eval_add).collect()
        };

        // Best swap, deterministic tie-breaking.
        let best = swaps.iter().min_by(|a, b| {
            a.2.partial_cmp(&b.2)
                .unwrap()
                .then(a.0.cmp(&b.0))
                .then(a.1.cmp(&b.1))
        });
        match best {
            Some(&(pos, add, new_cost)) if new_cost < threshold * cost => {
                centers[pos] = add;
                cost = new_cost;
                rounds += 1;
                meter.add_round();
                // Swap-round frontier = candidate nodes the sweep evaluated.
                trace::round(rounds as u64, || candidates.len() as u64, &meter);
            }
            _ => break,
        }
    }

    centers.sort_unstable();
    let mut work = meter.report();
    // Fold in the k-center initialisation work.
    work.element_ops += kc.work.element_ops;
    work.primitive_calls += kc.work.primitive_calls;
    work.sort_calls += kc.work.sort_calls;
    work.rounds += kc.work.rounds;

    KClusterSolution {
        centers,
        cost,
        initial_cost,
        rounds,
        work,
    }
}

/// Parallel local search for **k-median** (`5 + ε`-approximation).
pub fn parallel_kmedian(
    inst: &ClusterInstance,
    k: usize,
    cfg: &LocalSearchConfig,
) -> KClusterSolution {
    parallel_local_search(inst, k, ClusterObjective::KMedian, cfg)
}

/// Parallel local search for **k-means** (`81 + ε`-approximation in general metrics).
pub fn parallel_kmeans(
    inst: &ClusterInstance,
    k: usize,
    cfg: &LocalSearchConfig,
) -> KClusterSolution {
    parallel_local_search(inst, k, ClusterObjective::KMeans, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds::{self, ClusterObjective as BfObjective};
    use parfaclo_seq_baselines::local_search_kmedian;

    #[test]
    fn kmedian_within_guarantee_on_small_instances() {
        for seed in 0..6 {
            let inst = gen::clustering(GenParams::uniform_square(11, 11).with_seed(seed));
            for k in 1..4 {
                let sol = parallel_kmedian(&inst, k, &LocalSearchConfig::new(0.1).with_seed(seed));
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, BfObjective::KMedian);
                assert!(
                    sol.cost <= (5.0 + 0.1) * opt + 1e-6,
                    "seed {seed} k {k}: {} vs opt {opt}",
                    sol.cost
                );
                assert!(sol.cost >= opt - 1e-9);
                assert_eq!(sol.centers.len(), k);
            }
        }
    }

    #[test]
    fn kmeans_within_guarantee_on_small_instances() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(10, 10).with_seed(seed));
            let sol = parallel_kmeans(&inst, 2, &LocalSearchConfig::new(0.2).with_seed(seed));
            let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 2, BfObjective::KMeans);
            assert!(
                sol.cost <= (81.0 + 0.2) * opt + 1e-6,
                "seed {seed}: {} vs opt {opt}",
                sol.cost
            );
            assert!(sol.cost >= opt - 1e-9);
        }
    }

    #[test]
    fn planted_clusters_are_found() {
        let inst = gen::clustering(GenParams::planted(36, 36, 4).with_seed(8));
        let sol = parallel_kmedian(&inst, 4, &LocalSearchConfig::new(0.1));
        // Every node is within distance 2 of its blob's members, so a correct clustering
        // costs at most 2n = 72; a wrong clustering pays ≥ 48 for a whole missed blob.
        assert!(sol.cost <= 72.0, "cost {}", sol.cost);
    }

    #[test]
    fn local_search_never_worse_than_initialisation() {
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::gaussian_clusters(30, 30, 5).with_seed(seed));
            let sol = parallel_kmedian(&inst, 5, &LocalSearchConfig::new(0.1).with_seed(seed));
            assert!(sol.cost <= sol.initial_cost + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn rounds_are_bounded_by_theory() {
        let inst = gen::clustering(GenParams::uniform_square(40, 40).with_seed(3));
        let eps = 0.2;
        let k = 4;
        let sol = parallel_kmedian(&inst, k, &LocalSearchConfig::new(eps).with_seed(3));
        // Theorem 7.1 / Arya et al.: O(log_{1/(1-β/k)}(initial/opt)) rounds; bound the
        // ratio crudely by initial/final (final ≥ opt).
        let beta = eps / (1.0 + eps);
        let per_round = 1.0 / (1.0 - beta / k as f64);
        let bound = (sol.initial_cost / sol.cost.max(1e-12)).ln() / per_round.ln() + 2.0;
        assert!(
            (sol.rounds as f64) <= bound.max(2.0),
            "rounds {} exceed bound {bound}",
            sol.rounds
        );
    }

    #[test]
    fn comparable_to_sequential_local_search() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(18, 18).with_seed(seed));
            let par = parallel_kmedian(&inst, 3, &LocalSearchConfig::new(0.1).with_seed(seed));
            let seq = local_search_kmedian(&inst, 3, 0.1);
            // Both are (5+ε)-approximations; they should be within that factor of each
            // other (and typically nearly equal).
            assert!(par.cost <= 5.1 * seq.cost + 1e-6, "seed {seed}");
            assert!(seq.cost <= 5.1 * par.cost + 1e-6, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_and_policy_independent() {
        let inst = gen::clustering(GenParams::uniform_square(22, 22).with_seed(5));
        let a = parallel_kmedian(
            &inst,
            3,
            &LocalSearchConfig::new(0.15)
                .with_seed(9)
                .with_policy(ExecPolicy::Sequential),
        );
        let b = parallel_kmedian(
            &inst,
            3,
            &LocalSearchConfig::new(0.15)
                .with_seed(9)
                .with_policy(ExecPolicy::Parallel),
        );
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn k_geq_n_gives_zero_cost() {
        let inst = gen::clustering(GenParams::uniform_square(5, 5).with_seed(1));
        let sol = parallel_kmedian(&inst, 8, &LocalSearchConfig::new(0.1));
        assert_eq!(sol.centers.len(), 5);
        assert_eq!(sol.cost, 0.0);
    }

    #[test]
    fn k_of_one() {
        let inst = gen::clustering(GenParams::line(9, 9));
        let sol = parallel_kmedian(&inst, 1, &LocalSearchConfig::new(0.05));
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 1, BfObjective::KMedian);
        assert!(sol.cost <= 5.05 * opt + 1e-9);
        assert_eq!(sol.centers.len(), 1);
    }

    #[test]
    fn work_counters_populated() {
        let inst = gen::clustering(GenParams::uniform_square(20, 20).with_seed(2));
        let sol = parallel_kmedian(&inst, 3, &LocalSearchConfig::new(0.1));
        assert!(sol.work.element_ops > 0);
        assert!(sol.work.primitive_calls > 0);
    }

    #[test]
    fn unit_weights_are_bitwise_identical_to_unweighted() {
        let base = gen::clustering(GenParams::uniform_square(20, 20).with_seed(4));
        let unit = base.clone().with_weights(vec![1.0; 20]);
        let cfg = LocalSearchConfig::new(0.1).with_seed(4);
        for objective in [ClusterObjective::KMedian, ClusterObjective::KMeans] {
            let a = parallel_local_search(&base, 3, objective, &cfg);
            let b = parallel_local_search(&unit, 3, objective, &cfg);
            assert_eq!(a.centers, b.centers);
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn heavy_weight_attracts_a_center() {
        let base = gen::clustering(GenParams::uniform_square(20, 20).with_seed(4));
        let mut w = vec![1.0; 20];
        w[7] = 1e6;
        let heavy = parallel_kmedian(
            &base.clone().with_weights(w),
            3,
            &LocalSearchConfig::new(0.1).with_seed(4),
        );
        let d7 = heavy
            .centers
            .iter()
            .map(|&c| base.dist(7, c))
            .fold(f64::INFINITY, f64::min);
        assert!(d7 <= 1.0, "heavy node left uncovered at distance {d7}");
    }

    #[test]
    fn objective_helpers() {
        assert_eq!(ClusterObjective::KMedian.cost_of(3.0), 3.0);
        assert_eq!(ClusterObjective::KMeans.cost_of(3.0), 9.0);
        assert_eq!(ClusterObjective::KMedian.guarantee(), 5.0);
        assert_eq!(ClusterObjective::KMeans.guarantee(), 81.0);
    }
}
