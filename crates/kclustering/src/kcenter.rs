//! Parallel k-center (Section 6.1, Theorem 6.1).
//!
//! Hochbaum & Shmoys observed that k-center reduces to a bottleneck search: for a
//! candidate radius `α`, build the threshold graph `H_α` (nodes adjacent when within
//! distance `α`) and compute a maximal dominator set; if it has at most `k` nodes then
//! `2α` is an achievable radius, and the smallest feasible `α` in the sorted distance
//! set certifies a 2-approximation. The paper parallelises the probe with the in-place
//! `MaxDom` algorithm of Section 3 and keeps the binary search over the `O(n²)` distinct
//! distances, giving `O((n log n)²)` work overall.

use parfaclo_bucket::{BucketMapping, RadiusDeriver};
use parfaclo_dominator::{max_dom, ThresholdGraph};
use parfaclo_graph::GraphBackend;
use parfaclo_matrixops::{CostMeter, CostReport, ExecPolicy};
use parfaclo_metric::{ClusterInstance, DistanceOracle, NodeId};
use parfaclo_trace as trace;

/// Result of the parallel k-center algorithm.
#[derive(Debug, Clone)]
pub struct KCenterSolution {
    /// The chosen centers (at most `k`).
    pub centers: Vec<NodeId>,
    /// The achieved radius `max_j d(j, centers)`.
    pub radius: f64,
    /// The threshold distance `d_t` the search settled on. With the exact
    /// radius deriver the 2-approximation guarantee is `radius <= 2 * d_t`
    /// and `d_t <= opt`; with the sketch deriver `d_t` is the smallest
    /// *sampled* feasible candidate, which may exceed `opt`.
    pub threshold: f64,
    /// A certified lower bound on the optimal radius: the largest probed
    /// threshold whose dominator set had more than `k` nodes (`k + 1` points
    /// pairwise further apart than any achievable radius), or the settled
    /// threshold itself on the exact path (where it is the smallest feasible
    /// member of the complete distance set). 0.0 when nothing infeasible was
    /// probed and the exact certificate is unavailable.
    pub lower_bound: f64,
    /// Number of feasibility probes (each probe is one `MaxDom` run).
    pub probes: usize,
    /// Total Luby rounds across all probes.
    pub luby_rounds: usize,
    /// Work counters accumulated over the run.
    pub work: CostReport,
}

/// Runs the parallel Hochbaum–Shmoys k-center algorithm on the dense graph
/// backend (the paper's native representation).
///
/// Deterministic for a fixed `seed`. Equivalent to
/// [`parallel_kcenter_with`] with [`GraphBackend::Dense`]; kept as the
/// historical entry point for callers that never leave the dense regime.
///
/// # Panics
/// Panics if `k == 0`, the instance is empty, or the instance exceeds the
/// dense graph backend's size cap (use [`parallel_kcenter_with`] with
/// [`GraphBackend::Csr`] for such instances).
pub fn parallel_kcenter(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
) -> KCenterSolution {
    parallel_kcenter_with(inst, k, seed, policy, GraphBackend::Dense)
        .expect("dense k-center within size caps")
}

/// Runs the parallel Hochbaum–Shmoys k-center algorithm with an explicit
/// threshold-graph representation for the feasibility probes.
///
/// Each binary-search probe builds the threshold graph `H_α` in the
/// requested representation and runs `MaxDom` on it; the selected backend
/// never changes the result — centers, radius, probes and work counters are
/// identical across backends — it only changes the memory the probes touch
/// (`n²` bits dense vs `O(n + m)` CSR).
///
/// Deterministic for a fixed `seed`.
///
/// # Errors
/// Returns `Err` when the requested representation cannot be built — the
/// dense backend refuses adjacency matrices beyond its 4 GiB cap and points
/// at `--graph csr` — or when deriving the candidate radii (a sort of all
/// n² pairwise distances) would exceed the oracle's 4 GiB scratch cap.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn parallel_kcenter_with(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    graph: GraphBackend,
) -> Result<KCenterSolution, String> {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    let meter = CostMeter::new();

    if n <= k {
        return Ok(KCenterSolution {
            centers: (0..n).collect(),
            radius: 0.0,
            threshold: 0.0,
            lower_bound: 0.0,
            probes: 0,
            luby_rounds: 0,
            work: meter.report(),
        });
    }

    // The candidate radii are the distinct pairwise distances, sorted.
    // Deriving them materialises all n² distances, so past the oracle's
    // 4 GiB scratch cap the run is refused with an explanation instead of
    // exhausting memory.
    let distances = {
        let _span = trace::span("derive-radii", Some(&meter));
        let distances = inst.distances().try_sorted_distinct_values().map_err(|e| {
            format!("{e} — or sample the candidate radii with --radius-deriver sketch")
        })?;
        meter.add_sort(inst.distances().len() as u64);
        distances
    };

    // Binary search for the smallest threshold whose dominator set has at most k nodes.
    let probe_span = trace::span("probe-search", Some(&meter));
    let mut lo = 0usize;
    let mut hi = distances.len() - 1;
    let mut probes = 0usize;
    let mut luby_rounds = 0usize;
    let mut best: Option<(usize, Vec<NodeId>)> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        probes += 1;
        // Probe frontier = candidate radii still in the search range.
        trace::round(probes as u64, || (hi - lo + 1) as u64, &meter);
        let g = ThresholdGraph::build(inst.distances(), distances[mid], graph)?;
        meter.add_primitive((n * n) as u64);
        let dom = max_dom(
            &g,
            seed ^ (mid as u64).wrapping_mul(0x9E37_79B9),
            policy,
            &meter,
        );
        luby_rounds += dom.rounds;
        if dom.selected.len() <= k {
            best = Some((mid, dom.selected));
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }

    let (t_idx, centers) = match best {
        Some(found) => found,
        None => {
            // The largest threshold makes the whole graph one clique-square, so the
            // dominator set is a single node — always feasible.
            let g = ThresholdGraph::build(inst.distances(), *distances.last().unwrap(), graph)?;
            let dom = max_dom(&g, seed, policy, &meter);
            (distances.len() - 1, dom.selected)
        }
    };
    drop(probe_span);

    let radius = inst.kcenter_cost(&centers);
    Ok(KCenterSolution {
        centers,
        radius,
        threshold: distances[t_idx],
        // The smallest feasible member of the complete distance set is at
        // most the optimal radius (which is itself a feasible member).
        lower_bound: distances[t_idx],
        probes,
        luby_rounds,
        work: meter.report(),
    })
}

/// Runs the parallel k-center algorithm with an explicit radius deriver.
///
/// [`RadiusDeriver::Exact`] is [`parallel_kcenter_with`] verbatim — the binary
/// search runs over the complete sorted distinct distance set, the exact
/// 2-approximation of Theorem 6.1, and the run is refused past the oracle's
/// 4 GiB scratch cap. [`RadiusDeriver::Sketch`] derives candidate radii from a
/// deterministic O(√m)-ish sample instead (see [`parallel_kcenter_sketched`]),
/// lifting k-center to instances whose full distance set cannot be
/// materialised; the guarantee weakens to `radius ≤ 2·t` for a settled
/// threshold `t` within one geometric sub-bucket (a few percent) of the
/// smallest sampled feasible candidate.
pub fn parallel_kcenter_derived(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    graph: GraphBackend,
    deriver: RadiusDeriver,
) -> Result<KCenterSolution, String> {
    match deriver {
        RadiusDeriver::Exact => parallel_kcenter_with(inst, k, seed, policy, graph),
        RadiusDeriver::Sketch => parallel_kcenter_sketched(inst, k, seed, policy, graph),
    }
}

/// Number of sample nodes the sketch deriver draws candidate radii from.
const SKETCH_SAMPLE: usize = 1024;

/// Runs the parallel k-center algorithm with sampled candidate radii.
///
/// Instead of sorting all `n²` pairwise distances (refused beyond the 4 GiB
/// scratch cap), the candidate set is the pairwise distances of a
/// deterministic evenly-spaced sample of [`SKETCH_SAMPLE`] nodes, plus a
/// diameter cap `2·max_j d(0, j)` (by the triangle inequality no threshold
/// above the diameter can be infeasible, so the search space always contains
/// a feasible candidate). Feasibility probing is coarse-to-fine in two
/// geometric levels: the maxima of the **octave** buckets
/// ([`BucketMapping::Geometric`] with zero mantissa bits) the sorted
/// candidates fall into are probed ascending until one is feasible, and a
/// binary search over the mantissa-refined sub-bucket maxima inside that
/// octave settles the threshold to within one sub-bucket (a few percent) of
/// the infeasible frontier. Probing ascending keeps every threshold graph the
/// search builds within a constant factor of the settled one — on sparse CSR
/// backends a probe's cost is its graph's edge count, so the classic midpoint
/// binary search (whose first probe is the median candidate) would
/// materialise enormous graphs on large instances — and stopping at
/// sub-bucket granularity caps the number of expensive near-frontier probes
/// at `log₂` of the per-octave refinement, instead of `log₂(candidates)`.
///
/// Deterministic for a fixed `seed` at any thread count and backend: the
/// sample is value-independent, candidates are sorted, and each probe mixes
/// the candidate index into the `MaxDom` seed exactly like the exact path.
///
/// # Errors
/// Returns `Err` when the requested graph representation cannot be built.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn parallel_kcenter_sketched(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    graph: GraphBackend,
) -> Result<KCenterSolution, String> {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    let meter = CostMeter::new();

    if n <= k {
        return Ok(KCenterSolution {
            centers: (0..n).collect(),
            radius: 0.0,
            threshold: 0.0,
            lower_bound: 0.0,
            probes: 0,
            luby_rounds: 0,
            work: meter.report(),
        });
    }

    // Evenly spaced sample (the full node set when it fits): value-independent,
    // so deterministic under every backend.
    let derive_span = trace::span("derive-radii", Some(&meter));
    let s = n.min(SKETCH_SAMPLE);
    let sample: Vec<usize> = if s == n {
        (0..n).collect()
    } else {
        (0..s).map(|i| i * (n - 1) / (s - 1)).collect()
    };
    let mut candidates: Vec<f64> = Vec::with_capacity(s * s + 1);
    let mut row = vec![0.0f64; s];
    for &r in &sample {
        inst.distances().row_gather(r, &sample, &mut row);
        candidates.extend(row.iter().copied().filter(|d| *d > 0.0));
    }
    meter.add_primitive((s * s) as u64);

    // Diameter cap: every node is within max_j d(0, j) of node 0, so by the
    // triangle inequality twice that covers the true diameter and is always
    // feasible (the threshold graph is complete, MaxDom selects one node).
    let mut full_row = vec![0.0f64; n];
    inst.distances().row_range_into(0, 0, &mut full_row);
    meter.add_primitive(n as u64);
    let reach = full_row.iter().copied().fold(0.0f64, f64::max);
    candidates.push(2.0 * reach);

    candidates.sort_unstable_by(f64::total_cmp);
    candidates.dedup();
    meter.add_sort(candidates.len() as u64);
    drop(derive_span);

    let probe_span = trace::span("probe-search", Some(&meter));
    let mut probes = 0usize;
    let mut luby_rounds = 0usize;
    let mut infeasible_below = 0.0f64;
    let mut best: Option<(usize, Vec<NodeId>)> = None;
    let probe = |idx: usize, luby_rounds: &mut usize| -> Result<Option<Vec<NodeId>>, String> {
        let g = ThresholdGraph::build(inst.distances(), candidates[idx], graph)?;
        meter.add_primitive((n * n) as u64);
        let dom = max_dom(
            &g,
            seed ^ (idx as u64).wrapping_mul(0x9E37_79B9),
            policy,
            &meter,
        );
        *luby_rounds += dom.rounds;
        Ok((dom.selected.len() <= k).then_some(dom.selected))
    };

    // Coarse pass: probe each octave bucket's largest candidate ascending
    // until one is feasible; everything in earlier octaves is then known
    // infeasible, so the refinement below only searches inside the winning
    // octave (every remaining probe stays within 2× the settled threshold,
    // which is what bounds the probe graphs' edge counts).
    let coarse = BucketMapping::Geometric { mantissa_bits: 0 };
    let mut lo = 0usize;
    let mut hi = candidates.len() - 1;
    let mut idx = 0usize;
    while idx < candidates.len() {
        let bucket = coarse.bucket_of(candidates[idx]);
        let mut last = idx;
        while last + 1 < candidates.len() && coarse.bucket_of(candidates[last + 1]) == bucket {
            last += 1;
        }
        probes += 1;
        // Probe frontier = candidates not yet ruled out by the coarse pass.
        trace::round(probes as u64, || (candidates.len() - idx) as u64, &meter);
        match probe(last, &mut luby_rounds)? {
            Some(centers) => {
                best = Some((last, centers));
                lo = idx;
                hi = last;
                break;
            }
            None => {
                infeasible_below = candidates[last];
                idx = last + 1;
            }
        }
    }

    // Refinement pass: bisect over the maxima of the mantissa-refined
    // sub-buckets inside the winning octave (the coarse pass already
    // certified `hi` feasible). Stopping at sub-bucket granularity — a few
    // percent of the threshold value — caps the count of expensive
    // near-frontier probes at log₂ of the refinement factor; descending to
    // per-candidate bisection would pay that near-frontier graph cost
    // log₂(candidates-in-octave) times for no meaningful precision gain.
    if best.is_some() && lo < hi {
        let fine = BucketMapping::geometric_default();
        let mut maxima: Vec<usize> = Vec::new();
        let mut i = lo;
        while i <= hi {
            let bucket = fine.bucket_of(candidates[i]);
            let mut last = i;
            while last < hi && fine.bucket_of(candidates[last + 1]) == bucket {
                last += 1;
            }
            maxima.push(last);
            i = last + 1;
        }
        let (mut blo, mut bhi) = (0usize, maxima.len() - 1);
        // maxima[bhi] == hi, the octave probe already certified feasible.
        while blo < bhi {
            let mid = (blo + bhi) / 2;
            probes += 1;
            // Probe frontier = sub-bucket maxima still in the bisection range.
            trace::round(probes as u64, || (bhi - blo + 1) as u64, &meter);
            match probe(maxima[mid], &mut luby_rounds)? {
                Some(centers) => {
                    best = Some((maxima[mid], centers));
                    bhi = mid;
                }
                None => {
                    infeasible_below = infeasible_below.max(candidates[maxima[mid]]);
                    blo = mid + 1;
                }
            }
        }
    }

    let (t_idx, centers) = match best {
        Some(found) => found,
        None => {
            // Unreachable thanks to the diameter cap, but keep the exact
            // path's defensive fallback: the largest candidate is feasible.
            let last = candidates.len() - 1;
            probes += 1;
            trace::round(probes as u64, || 1, &meter);
            let g = ThresholdGraph::build(inst.distances(), candidates[last], graph)?;
            let dom = max_dom(&g, seed, policy, &meter);
            luby_rounds += dom.rounds;
            (last, dom.selected)
        }
    };
    drop(probe_span);

    let radius = inst.kcenter_cost(&centers);
    Ok(KCenterSolution {
        centers,
        radius,
        threshold: candidates[t_idx],
        // A threshold with more than k dominators witnesses k + 1 points
        // pairwise further apart than it, so it strictly lower-bounds the
        // optimal radius; the sampled feasible threshold itself may overshoot
        // the optimum and is NOT a valid certificate.
        lower_bound: infeasible_below,
        probes,
        luby_rounds,
        work: meter.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds::{self, ClusterObjective};
    use parfaclo_seq_baselines::{gonzalez_kcenter, hochbaum_shmoys_kcenter};

    #[test]
    fn planted_clusters_are_recovered() {
        let inst = gen::clustering(GenParams::planted(48, 48, 6).with_seed(1));
        let sol = parallel_kcenter(&inst, 6, 0, ExecPolicy::Sequential);
        assert!(sol.centers.len() <= 6);
        // Blobs have radius 1 and separation 50; any valid 2-approximation has radius
        // at most 2·2 = 4, and the dominator-set structure typically achieves ≤ 2.
        assert!(sol.radius <= 4.0 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn two_approximation_vs_brute_force() {
        for seed in 0..6 {
            let inst = gen::clustering(GenParams::uniform_square(13, 13).with_seed(seed));
            for k in 1..4 {
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
                let sol = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
                assert!(
                    sol.radius <= 2.0 * opt + 1e-9,
                    "seed {seed} k {k}: {} vs opt {opt}",
                    sol.radius
                );
                assert!(sol.centers.len() <= k);
                // The chosen threshold is itself a lower bound on the optimum.
                assert!(sol.threshold <= opt + 1e-9, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn radius_within_twice_threshold() {
        // The structural guarantee behind the 2-approximation: the returned radius is at
        // most twice the feasibility threshold found by the binary search.
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::gaussian_clusters(30, 30, 4).with_seed(seed));
            let sol = parallel_kcenter(&inst, 4, seed, ExecPolicy::Parallel);
            assert!(
                sol.radius <= 2.0 * sol.threshold + 1e-9,
                "seed {seed}: radius {} threshold {}",
                sol.radius,
                sol.threshold
            );
        }
    }

    #[test]
    fn comparable_to_sequential_baselines() {
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::uniform_square(40, 40).with_seed(seed));
            let k = 5;
            let par = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
            let gonz = gonzalez_kcenter(&inst, k);
            let hs = hochbaum_shmoys_kcenter(&inst, k);
            // All three are 2-approximations of the same optimum, so no one of them can
            // be more than twice as bad as another.
            let lb = lower_bounds::kcenter_lower_bound(&inst, k);
            for r in [par.radius, gonz.radius, hs.radius] {
                assert!(r <= 2.0 * (2.0 * lb) + 1e-9 || lb == 0.0);
            }
            assert!(par.radius <= 2.0 * gonz.radius + 1e-9);
        }
    }

    #[test]
    fn probes_are_logarithmic_in_distance_count() {
        let inst = gen::clustering(GenParams::uniform_square(50, 50).with_seed(7));
        let sol = parallel_kcenter(&inst, 4, 7, ExecPolicy::Parallel);
        let num_distances = inst.distances().sorted_distinct_values().len();
        let bound = (num_distances as f64).log2().ceil() as usize + 2;
        assert!(
            sol.probes <= bound,
            "probes {} exceed log bound {bound}",
            sol.probes
        );
        assert!(sol.work.element_ops > 0);
    }

    #[test]
    fn k_geq_n_selects_everything() {
        let inst = gen::clustering(GenParams::uniform_square(6, 6).with_seed(2));
        let sol = parallel_kcenter(&inst, 10, 0, ExecPolicy::Sequential);
        assert_eq!(sol.centers.len(), 6);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_policy() {
        let inst = gen::clustering(GenParams::uniform_square(25, 25).with_seed(4));
        let a = parallel_kcenter(&inst, 3, 11, ExecPolicy::Sequential);
        let b = parallel_kcenter(&inst, 3, 11, ExecPolicy::Parallel);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.radius, b.radius);
    }

    #[test]
    fn dense_and_csr_probes_agree() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(22, 22).with_seed(seed));
            let dense =
                parallel_kcenter_with(&inst, 3, seed, ExecPolicy::Parallel, GraphBackend::Dense)
                    .expect("dense feasible");
            let csr =
                parallel_kcenter_with(&inst, 3, seed, ExecPolicy::Parallel, GraphBackend::Csr)
                    .expect("csr feasible");
            assert_eq!(dense.centers, csr.centers, "seed {seed}");
            assert_eq!(dense.radius, csr.radius, "seed {seed}");
            assert_eq!(dense.threshold, csr.threshold, "seed {seed}");
            assert_eq!(dense.probes, csr.probes, "seed {seed}");
            assert_eq!(dense.luby_rounds, csr.luby_rounds, "seed {seed}");
            assert_eq!(dense.work, csr.work, "seed {seed}: work counters diverge");
        }
    }

    #[test]
    fn sketch_deriver_is_deterministic_and_backend_invariant() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(60, 60).with_seed(seed));
            let a = parallel_kcenter_sketched(
                &inst,
                4,
                seed,
                ExecPolicy::Sequential,
                GraphBackend::Dense,
            )
            .expect("dense feasible");
            let b =
                parallel_kcenter_sketched(&inst, 4, seed, ExecPolicy::Parallel, GraphBackend::Csr)
                    .expect("csr feasible");
            assert_eq!(a.centers, b.centers, "seed {seed}");
            assert_eq!(a.radius, b.radius, "seed {seed}");
            assert_eq!(a.threshold, b.threshold, "seed {seed}");
            assert_eq!(a.lower_bound, b.lower_bound, "seed {seed}");
            assert_eq!(a.probes, b.probes, "seed {seed}");
        }
    }

    #[test]
    fn sketch_radius_bounded_and_lower_bound_valid() {
        // The sketch's settled threshold may overshoot opt, but the structural
        // guarantee radius ≤ 2·threshold must hold, and the reported lower
        // bound (largest infeasible probe) must never exceed opt.
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::uniform_square(14, 14).with_seed(seed));
            for k in 1..4 {
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
                let sol = parallel_kcenter_sketched(
                    &inst,
                    k,
                    seed,
                    ExecPolicy::Sequential,
                    GraphBackend::Dense,
                )
                .expect("feasible");
                assert!(
                    sol.radius <= 2.0 * sol.threshold + 1e-9,
                    "seed {seed} k {k}: radius {} threshold {}",
                    sol.radius,
                    sol.threshold
                );
                assert!(
                    sol.lower_bound <= opt + 1e-9,
                    "seed {seed} k {k}: lower bound {} exceeds opt {opt}",
                    sol.lower_bound
                );
                assert!(sol.centers.len() <= k);
            }
        }
    }

    #[test]
    fn sketch_stays_competitive_with_exact_on_full_sample() {
        // With n ≤ SKETCH_SAMPLE the sample covers every positive pairwise
        // distance, but the probe *sequence* still differs from the exact
        // path (and maximal dominator sets make feasibility non-monotone in
        // the threshold), so the two searches may settle on different
        // feasible candidates. The sketch must stay within the same
        // constant-factor regime.
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::gaussian_clusters(40, 40, 5).with_seed(seed));
            let exact =
                parallel_kcenter_with(&inst, 5, seed, ExecPolicy::Parallel, GraphBackend::Dense)
                    .expect("exact feasible");
            let sketch = parallel_kcenter_sketched(
                &inst,
                5,
                seed,
                ExecPolicy::Parallel,
                GraphBackend::Dense,
            )
            .expect("sketch feasible");
            assert!(
                sketch.radius <= 2.0 * exact.radius + 1e-9,
                "seed {seed}: sketch radius {} vs exact {}",
                sketch.radius,
                exact.radius
            );
            assert!(
                sketch.threshold <= 4.0 * exact.threshold + 1e-9 || exact.threshold == 0.0,
                "seed {seed}: sketch threshold {} vs exact {}",
                sketch.threshold,
                exact.threshold
            );
            assert!(sketch.radius <= 2.0 * sketch.threshold + 1e-9);
        }
    }

    #[test]
    fn derived_exact_is_bit_identical_to_historical_path() {
        for seed in 0..3 {
            let inst = gen::clustering(GenParams::uniform_square(25, 25).with_seed(seed));
            let a = parallel_kcenter_with(&inst, 3, seed, ExecPolicy::Parallel, GraphBackend::Csr)
                .expect("feasible");
            let b = parallel_kcenter_derived(
                &inst,
                3,
                seed,
                ExecPolicy::Parallel,
                GraphBackend::Csr,
                RadiusDeriver::Exact,
            )
            .expect("feasible");
            assert_eq!(a.centers, b.centers);
            assert_eq!(a.threshold.to_bits(), b.threshold.to_bits());
            assert_eq!(a.lower_bound.to_bits(), b.lower_bound.to_bits());
            assert_eq!(a.probes, b.probes);
            assert_eq!(a.work, b.work);
        }
    }

    #[test]
    fn line_metric_radius() {
        // Nodes at 0..11 with k = 2: optimal radius is ceil(11/4) = 2.75 → 3 at integer
        // positions (centers at 3 and 9 give radius 3 exactly); accept ≤ 2·opt.
        let inst = gen::clustering(GenParams::line(12, 12));
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 2, ClusterObjective::KCenter);
        let sol = parallel_kcenter(&inst, 2, 1, ExecPolicy::Sequential);
        assert!(sol.radius <= 2.0 * opt + 1e-9);
    }
}
