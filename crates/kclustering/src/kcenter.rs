//! Parallel k-center (Section 6.1, Theorem 6.1).
//!
//! Hochbaum & Shmoys observed that k-center reduces to a bottleneck search: for a
//! candidate radius `α`, build the threshold graph `H_α` (nodes adjacent when within
//! distance `α`) and compute a maximal dominator set; if it has at most `k` nodes then
//! `2α` is an achievable radius, and the smallest feasible `α` in the sorted distance
//! set certifies a 2-approximation. The paper parallelises the probe with the in-place
//! `MaxDom` algorithm of Section 3 and keeps the binary search over the `O(n²)` distinct
//! distances, giving `O((n log n)²)` work overall.

use parfaclo_dominator::{max_dom, ThresholdGraph};
use parfaclo_graph::GraphBackend;
use parfaclo_matrixops::{CostMeter, CostReport, ExecPolicy};
use parfaclo_metric::{ClusterInstance, DistanceOracle, NodeId};

/// Result of the parallel k-center algorithm.
#[derive(Debug, Clone)]
pub struct KCenterSolution {
    /// The chosen centers (at most `k`).
    pub centers: Vec<NodeId>,
    /// The achieved radius `max_j d(j, centers)`.
    pub radius: f64,
    /// The threshold distance `d_t` the binary search settled on; the 2-approximation
    /// guarantee is `radius <= 2 * d_t` and `d_t <= opt`.
    pub threshold: f64,
    /// Number of binary-search probes (each probe is one `MaxDom` run).
    pub probes: usize,
    /// Total Luby rounds across all probes.
    pub luby_rounds: usize,
    /// Work counters accumulated over the run.
    pub work: CostReport,
}

/// Runs the parallel Hochbaum–Shmoys k-center algorithm on the dense graph
/// backend (the paper's native representation).
///
/// Deterministic for a fixed `seed`. Equivalent to
/// [`parallel_kcenter_with`] with [`GraphBackend::Dense`]; kept as the
/// historical entry point for callers that never leave the dense regime.
///
/// # Panics
/// Panics if `k == 0`, the instance is empty, or the instance exceeds the
/// dense graph backend's size cap (use [`parallel_kcenter_with`] with
/// [`GraphBackend::Csr`] for such instances).
pub fn parallel_kcenter(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
) -> KCenterSolution {
    parallel_kcenter_with(inst, k, seed, policy, GraphBackend::Dense)
        .expect("dense k-center within size caps")
}

/// Runs the parallel Hochbaum–Shmoys k-center algorithm with an explicit
/// threshold-graph representation for the feasibility probes.
///
/// Each binary-search probe builds the threshold graph `H_α` in the
/// requested representation and runs `MaxDom` on it; the selected backend
/// never changes the result — centers, radius, probes and work counters are
/// identical across backends — it only changes the memory the probes touch
/// (`n²` bits dense vs `O(n + m)` CSR).
///
/// Deterministic for a fixed `seed`.
///
/// # Errors
/// Returns `Err` when the requested representation cannot be built — the
/// dense backend refuses adjacency matrices beyond its 4 GiB cap and points
/// at `--graph csr` — or when deriving the candidate radii (a sort of all
/// n² pairwise distances) would exceed the oracle's 4 GiB scratch cap.
///
/// # Panics
/// Panics if `k == 0` or the instance is empty.
pub fn parallel_kcenter_with(
    inst: &ClusterInstance,
    k: usize,
    seed: u64,
    policy: ExecPolicy,
    graph: GraphBackend,
) -> Result<KCenterSolution, String> {
    let n = inst.n();
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= 1, "instance must be non-empty");
    let meter = CostMeter::new();

    if n <= k {
        return Ok(KCenterSolution {
            centers: (0..n).collect(),
            radius: 0.0,
            threshold: 0.0,
            probes: 0,
            luby_rounds: 0,
            work: meter.report(),
        });
    }

    // The candidate radii are the distinct pairwise distances, sorted.
    // Deriving them materialises all n² distances, so past the oracle's
    // 4 GiB scratch cap the run is refused with an explanation instead of
    // exhausting memory.
    let distances = inst.distances().try_sorted_distinct_values()?;
    meter.add_sort(inst.distances().len() as u64);

    // Binary search for the smallest threshold whose dominator set has at most k nodes.
    let mut lo = 0usize;
    let mut hi = distances.len() - 1;
    let mut probes = 0usize;
    let mut luby_rounds = 0usize;
    let mut best: Option<(usize, Vec<NodeId>)> = None;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        probes += 1;
        let g = ThresholdGraph::build(inst.distances(), distances[mid], graph)?;
        meter.add_primitive((n * n) as u64);
        let dom = max_dom(
            &g,
            seed ^ (mid as u64).wrapping_mul(0x9E37_79B9),
            policy,
            &meter,
        );
        luby_rounds += dom.rounds;
        if dom.selected.len() <= k {
            best = Some((mid, dom.selected));
            if mid == 0 {
                break;
            }
            hi = mid - 1;
        } else {
            lo = mid + 1;
        }
    }

    let (t_idx, centers) = match best {
        Some(found) => found,
        None => {
            // The largest threshold makes the whole graph one clique-square, so the
            // dominator set is a single node — always feasible.
            let g = ThresholdGraph::build(inst.distances(), *distances.last().unwrap(), graph)?;
            let dom = max_dom(&g, seed, policy, &meter);
            (distances.len() - 1, dom.selected)
        }
    };

    let radius = inst.kcenter_cost(&centers);
    Ok(KCenterSolution {
        centers,
        radius,
        threshold: distances[t_idx],
        probes,
        luby_rounds,
        work: meter.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfaclo_metric::gen::{self, GenParams};
    use parfaclo_metric::lower_bounds::{self, ClusterObjective};
    use parfaclo_seq_baselines::{gonzalez_kcenter, hochbaum_shmoys_kcenter};

    #[test]
    fn planted_clusters_are_recovered() {
        let inst = gen::clustering(GenParams::planted(48, 48, 6).with_seed(1));
        let sol = parallel_kcenter(&inst, 6, 0, ExecPolicy::Sequential);
        assert!(sol.centers.len() <= 6);
        // Blobs have radius 1 and separation 50; any valid 2-approximation has radius
        // at most 2·2 = 4, and the dominator-set structure typically achieves ≤ 2.
        assert!(sol.radius <= 4.0 + 1e-9, "radius {}", sol.radius);
    }

    #[test]
    fn two_approximation_vs_brute_force() {
        for seed in 0..6 {
            let inst = gen::clustering(GenParams::uniform_square(13, 13).with_seed(seed));
            for k in 1..4 {
                let (_, opt) =
                    lower_bounds::brute_force_kclustering(&inst, k, ClusterObjective::KCenter);
                let sol = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
                assert!(
                    sol.radius <= 2.0 * opt + 1e-9,
                    "seed {seed} k {k}: {} vs opt {opt}",
                    sol.radius
                );
                assert!(sol.centers.len() <= k);
                // The chosen threshold is itself a lower bound on the optimum.
                assert!(sol.threshold <= opt + 1e-9, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn radius_within_twice_threshold() {
        // The structural guarantee behind the 2-approximation: the returned radius is at
        // most twice the feasibility threshold found by the binary search.
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::gaussian_clusters(30, 30, 4).with_seed(seed));
            let sol = parallel_kcenter(&inst, 4, seed, ExecPolicy::Parallel);
            assert!(
                sol.radius <= 2.0 * sol.threshold + 1e-9,
                "seed {seed}: radius {} threshold {}",
                sol.radius,
                sol.threshold
            );
        }
    }

    #[test]
    fn comparable_to_sequential_baselines() {
        for seed in 0..5 {
            let inst = gen::clustering(GenParams::uniform_square(40, 40).with_seed(seed));
            let k = 5;
            let par = parallel_kcenter(&inst, k, seed, ExecPolicy::Sequential);
            let gonz = gonzalez_kcenter(&inst, k);
            let hs = hochbaum_shmoys_kcenter(&inst, k);
            // All three are 2-approximations of the same optimum, so no one of them can
            // be more than twice as bad as another.
            let lb = lower_bounds::kcenter_lower_bound(&inst, k);
            for r in [par.radius, gonz.radius, hs.radius] {
                assert!(r <= 2.0 * (2.0 * lb) + 1e-9 || lb == 0.0);
            }
            assert!(par.radius <= 2.0 * gonz.radius + 1e-9);
        }
    }

    #[test]
    fn probes_are_logarithmic_in_distance_count() {
        let inst = gen::clustering(GenParams::uniform_square(50, 50).with_seed(7));
        let sol = parallel_kcenter(&inst, 4, 7, ExecPolicy::Parallel);
        let num_distances = inst.distances().sorted_distinct_values().len();
        let bound = (num_distances as f64).log2().ceil() as usize + 2;
        assert!(
            sol.probes <= bound,
            "probes {} exceed log bound {bound}",
            sol.probes
        );
        assert!(sol.work.element_ops > 0);
    }

    #[test]
    fn k_geq_n_selects_everything() {
        let inst = gen::clustering(GenParams::uniform_square(6, 6).with_seed(2));
        let sol = parallel_kcenter(&inst, 10, 0, ExecPolicy::Sequential);
        assert_eq!(sol.centers.len(), 6);
        assert_eq!(sol.radius, 0.0);
    }

    #[test]
    fn deterministic_for_fixed_seed_and_policy() {
        let inst = gen::clustering(GenParams::uniform_square(25, 25).with_seed(4));
        let a = parallel_kcenter(&inst, 3, 11, ExecPolicy::Sequential);
        let b = parallel_kcenter(&inst, 3, 11, ExecPolicy::Parallel);
        assert_eq!(a.centers, b.centers);
        assert_eq!(a.radius, b.radius);
    }

    #[test]
    fn dense_and_csr_probes_agree() {
        for seed in 0..4 {
            let inst = gen::clustering(GenParams::uniform_square(22, 22).with_seed(seed));
            let dense =
                parallel_kcenter_with(&inst, 3, seed, ExecPolicy::Parallel, GraphBackend::Dense)
                    .expect("dense feasible");
            let csr =
                parallel_kcenter_with(&inst, 3, seed, ExecPolicy::Parallel, GraphBackend::Csr)
                    .expect("csr feasible");
            assert_eq!(dense.centers, csr.centers, "seed {seed}");
            assert_eq!(dense.radius, csr.radius, "seed {seed}");
            assert_eq!(dense.threshold, csr.threshold, "seed {seed}");
            assert_eq!(dense.probes, csr.probes, "seed {seed}");
            assert_eq!(dense.luby_rounds, csr.luby_rounds, "seed {seed}");
            assert_eq!(dense.work, csr.work, "seed {seed}: work counters diverge");
        }
    }

    #[test]
    fn line_metric_radius() {
        // Nodes at 0..11 with k = 2: optimal radius is ceil(11/4) = 2.75 → 3 at integer
        // positions (centers at 3 and 9 give radius 3 exactly); accept ≤ 2·opt.
        let inst = gen::clustering(GenParams::line(12, 12));
        let (_, opt) = lower_bounds::brute_force_kclustering(&inst, 2, ClusterObjective::KCenter);
        let sol = parallel_kcenter(&inst, 2, 1, ExecPolicy::Sequential);
        assert!(sol.radius <= 2.0 * opt + 1e-9);
    }
}
