//! The measurement subsystem: a workload-matrix benchmark runner, the
//! versioned `parfaclo.bench.v2` artifact, and the baseline comparator.
//!
//! The paper's claims are quantitative, so performance has to be a tested
//! property: [`run_matrix`] sweeps a (solver × workload × backend × thread
//! count) matrix with warmup and repeated trials, summarising each cell as a
//! [`parfaclo_api::TrialStats`] plus memory and meter charges, and
//! self-certifying determinism by byte-comparing every trial's canonical
//! JSON against the first. [`BenchArtifact`] serialises the result with a
//! machine fingerprint; [`compare`] diffs two artifacts cell-by-cell and
//! classifies each as improved / unchanged / regressed against a threshold,
//! which is what the CI `perf-smoke` job gates on.

use crate::runner::{run_solver_cached, GenSpec, InstanceCache};
use parfaclo_api::json::{JsonObject, JsonValue};
use parfaclo_api::{Backend, Coreset, GraphBackend, Registry, Run, RunConfig, TrialStats};
use parfaclo_matrixops::{CostReport, ExecPolicy};

/// Schema tag of the matrix-benchmark artifact; bump on shape changes.
/// (`parfaclo.bench.v1` was the speedup artifact of the removed
/// `suite --emit-bench` path: one-shot threads=1 vs threads=N wall-clocks
/// with no trial statistics. Parsing rejects it with a pointer here.)
pub const BENCH_V2_SCHEMA: &str = "parfaclo.bench.v2";

/// Where the measurements were taken: enough to judge whether two artifacts
/// are comparable at all (a laptop baseline vs a CI runner is apples to
/// oranges; the comparator prints both fingerprints so the reader can tell).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineFingerprint {
    /// Logical CPUs visible to the process.
    pub cpus: usize,
    /// `git` commit hash the binary was run against (`unknown` outside a
    /// repository).
    pub commit: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl MachineFingerprint {
    /// Detects the current machine: CPU count, best-effort `git rev-parse
    /// HEAD`, and the compile-time OS/arch constants.
    pub fn detect() -> Self {
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        MachineFingerprint {
            cpus: std::thread::available_parallelism().map_or(1, |p| p.get()),
            commit,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        JsonObject::new()
            .uint("cpus", self.cpus as u64)
            .string("commit", &self.commit)
            .string("os", &self.os)
            .string("arch", &self.arch)
            .build()
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let string = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("fingerprint missing string field '{key}'"))
        };
        Ok(MachineFingerprint {
            cpus: value
                .get("cpus")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| "fingerprint missing field 'cpus'".to_string())?
                as usize,
            commit: string("commit")?,
            os: string("os")?,
            arch: string("arch")?,
        })
    }

    /// One-line human-readable form for table headers. The commit is
    /// abbreviated by characters, not bytes — artifact files are
    /// user-editable, so the field is not guaranteed to be a hex hash.
    pub fn describe(&self) -> String {
        let short: String = self.commit.chars().take(12).collect();
        format!(
            "{} cpus, {}/{}, commit {short}",
            self.cpus, self.os, self.arch
        )
    }
}

/// The solver-configuration slice that changes what a cell *measures* (as
/// opposed to the sweep dimensions, which are part of each cell's key).
/// Stored once per artifact — [`run_matrix`] applies one configuration to
/// every cell — and checked by [`compare`]: artifacts measured under
/// different configurations are never joined, because a seed or `k` change
/// alters the instances and the work several-fold.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Generator / solver seed.
    pub seed: u64,
    /// Solver ε.
    pub epsilon: f64,
    /// Centers for the clustering/dominator solvers.
    pub k: usize,
    /// Execution policy label (`seq` / `par` / `tuned:<grain>`).
    pub policy: String,
    /// Round-bounding preprocessing enabled.
    pub preprocess: bool,
    /// Greedy subselection vote enabled.
    pub subselection: bool,
    /// Explicit dominator threshold (`None` derives from the instance).
    pub threshold: Option<f64>,
    /// Event-engine label (`scan` / `bucket`). The engines are
    /// byte-equivalent but charge work differently and have different
    /// latency profiles, so artifacts measured under different engines are
    /// never joined.
    pub engine: String,
    /// k-center radius-deriver label (`exact` / `sketch`). The sketch
    /// probes different thresholds, so it is a measurement-relevant knob.
    pub radius_deriver: String,
}

impl BenchConfig {
    /// Projects the measurement-relevant fields out of a [`RunConfig`].
    pub fn from_run_config(cfg: &RunConfig) -> Self {
        BenchConfig {
            seed: cfg.seed,
            epsilon: cfg.epsilon,
            k: cfg.k,
            policy: match cfg.policy {
                ExecPolicy::Sequential => "seq".to_string(),
                ExecPolicy::Parallel => "par".to_string(),
                ExecPolicy::Tuned { grain } => format!("tuned:{grain}"),
            },
            preprocess: cfg.preprocess,
            subselection: cfg.subselection,
            threshold: cfg.threshold,
            engine: cfg.engine.as_str().to_string(),
            radius_deriver: cfg.radius_deriver.as_str().to_string(),
        }
    }

    fn to_json_value(&self) -> JsonValue {
        JsonObject::new()
            .uint("seed", self.seed)
            .number("epsilon", self.epsilon)
            .uint("k", self.k as u64)
            .string("policy", &self.policy)
            .bool("preprocess", self.preprocess)
            .bool("subselection", self.subselection)
            .field(
                "threshold",
                match self.threshold {
                    Some(t) => JsonValue::Number(t),
                    None => JsonValue::Null,
                },
            )
            .string("engine", &self.engine)
            .string("radius_deriver", &self.radius_deriver)
            .build()
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let missing = |key: &str| format!("bench config missing field '{key}'");
        Ok(BenchConfig {
            seed: value
                .get("seed")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("seed"))?,
            epsilon: value
                .get("epsilon")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| missing("epsilon"))?,
            k: value
                .get("k")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| missing("k"))? as usize,
            policy: value
                .get("policy")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| missing("policy"))?
                .to_string(),
            preprocess: value
                .get("preprocess")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| missing("preprocess"))?,
            subselection: value
                .get("subselection")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| missing("subselection"))?,
            threshold: match value.get("threshold") {
                None => return Err(missing("threshold")),
                Some(JsonValue::Null) => None,
                Some(v) => Some(v.as_f64().ok_or_else(|| missing("threshold"))?),
            },
            // Optional on parse: artifacts written before the event-engine /
            // radius-deriver knobs existed were all measured under the
            // then-only scan/exact paths.
            engine: match value.get("engine") {
                None => "scan".to_string(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| "bench config field 'engine' must be a string".to_string())?
                    .to_string(),
            },
            radius_deriver: match value.get("radius_deriver") {
                None => "exact".to_string(),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        "bench config field 'radius_deriver' must be a string".to_string()
                    })?
                    .to_string(),
            },
        })
    }
}

/// The benchmark matrix: every combination of solver, workload, backend and
/// thread count becomes one measured cell.
#[derive(Debug, Clone)]
pub struct BenchMatrix {
    /// Registry names of the solvers to measure.
    pub solvers: Vec<String>,
    /// Workload entries. A bare workload name (`uniform`, `clustered`,
    /// `grid`, `line`, `planted`) is measured at the matrix's `n`/`nf`; the
    /// `large`/`xlarge` presets and explicit `name:key=value` specs keep
    /// their own dimensions.
    pub workloads: Vec<String>,
    /// Client/node count bare workload names are measured at.
    pub n: usize,
    /// Candidate-facility count for bare workload names.
    pub nf: usize,
    /// Distance backends to sweep.
    pub backends: Vec<Backend>,
    /// Threshold-graph representations to sweep. Only the graph-touching
    /// solvers (see [`solver_uses_graph`]) fan out over this axis — the
    /// facility-location solvers never build a threshold graph, so sweeping
    /// them over graph backends would duplicate identical cells.
    pub graphs: Vec<GraphBackend>,
    /// Coreset settings to sweep. Only the clustering solvers (see
    /// [`solver_uses_coreset`]) fan out over this axis — the
    /// facility-location and dominator solvers ignore the knob, so sweeping
    /// them over coresets would duplicate identical cells.
    pub coresets: Vec<Coreset>,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Untimed warmup runs per cell (page in the instance, warm the
    /// allocator and the thread pool).
    pub warmup: usize,
    /// Timed trials per cell.
    pub trials: usize,
}

impl Default for BenchMatrix {
    /// The committed-baseline matrix: one solver per problem family plus the
    /// second facility-location algorithm, two workloads, all three distance
    /// backends, both graph backends (swept only on the graph-touching
    /// solvers `kcenter` and `maxdom`), threads {1, 4} — small enough to run
    /// in seconds, wide enough to touch every layer (solver families,
    /// generator presets, every oracle backend, both threshold-graph
    /// representations, pool sizes). `n = 128` deliberately exceeds the
    /// spatial planner's flat-scan cutoff (64), so the spatial cells
    /// exercise — and byte-certify — the real grid index, not the fallback.
    fn default() -> Self {
        BenchMatrix {
            solvers: ["greedy", "primal-dual", "kcenter", "maxdom"]
                .map(String::from)
                .to_vec(),
            workloads: ["uniform", "clustered"].map(String::from).to_vec(),
            n: 128,
            nf: 64,
            backends: vec![Backend::Dense, Backend::Implicit, Backend::Spatial],
            graphs: vec![GraphBackend::Dense, GraphBackend::Csr],
            coresets: vec![Coreset::Off],
            threads: vec![1, 4],
            warmup: 1,
            trials: 3,
        }
    }
}

/// Whether a registry solver builds a threshold graph — and therefore
/// whether the bench matrix's graph axis applies to it. The dominator
/// family thresholds the instance directly; k-center builds a threshold
/// graph per feasibility probe. Everything else never touches a graph, so
/// sweeping graph backends over it would measure identical cells twice.
pub fn solver_uses_graph(name: &str) -> bool {
    matches!(name, "maxdom" | "mis" | "kcenter")
}

/// Whether a registry solver consults the [`RunConfig::coreset`] knob — and
/// therefore whether the bench matrix's coreset axis applies to it. The
/// knob belongs to the k-clustering family (hierarchical coreset solve);
/// every other solver ignores it, so sweeping coresets over it would
/// measure identical cells twice.
pub fn solver_uses_coreset(name: &str) -> bool {
    matches!(name, "kcenter" | "kmedian-ls" | "kmeans-ls")
}

impl BenchMatrix {
    /// Number of cells the matrix will measure: graph-touching solvers fan
    /// out over the graph axis, coreset-aware solvers over the coreset
    /// axis; the rest contribute one cell per (workload, backend, thread)
    /// combination.
    pub fn cells(&self) -> usize {
        let solver_cells: usize = self
            .solvers
            .iter()
            .map(|s| {
                let graphs = if solver_uses_graph(s) {
                    self.graphs.len()
                } else {
                    1
                };
                let coresets = if solver_uses_coreset(s) {
                    self.coresets.len()
                } else {
                    1
                };
                graphs * coresets
            })
            .sum();
        solver_cells * self.workloads.len() * self.backends.len() * self.threads.len()
    }

    fn validate(&self) -> Result<(), String> {
        if self.solvers.is_empty()
            || self.workloads.is_empty()
            || self.backends.is_empty()
            || self.graphs.is_empty()
            || self.coresets.is_empty()
            || self.threads.is_empty()
        {
            return Err("bench matrix has an empty dimension".to_string());
        }
        if self.trials == 0 {
            return Err("bench needs at least one trial per cell".to_string());
        }
        Ok(())
    }
}

/// One measured cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Registry name of the solver.
    pub solver: String,
    /// Workload the instance was generated from.
    pub workload: String,
    /// Instance client/node count.
    pub n: usize,
    /// Instance candidate-facility count.
    pub nf: usize,
    /// Blob count of the clustered/planted generators (the generator
    /// default for the other workloads).
    pub clusters: usize,
    /// Distance backend the instance was served by.
    pub backend: Backend,
    /// Threshold-graph representation the cell ran under (always `Dense`
    /// for solvers that never build a threshold graph).
    pub graph: GraphBackend,
    /// Coreset setting the cell ran under (always `Off` for solvers that
    /// ignore the knob).
    pub coreset: Coreset,
    /// Worker threads the cell ran on.
    pub threads: usize,
    /// Wall-clock statistics over the timed trials.
    pub stats: TrialStats,
    /// The oracle's memory estimate for the instance.
    pub memory_bytes: u64,
    /// Meter charges of one trial (identical across trials by the
    /// determinism contract — asserted via `deterministic`).
    pub work: CostReport,
    /// Whether every trial's canonical JSON was byte-identical to the
    /// first's (self-certifying determinism check).
    pub deterministic: bool,
    /// Per-phase median wall-clock milliseconds over the timed trials
    /// (from each trial `Run`'s `phase_wall_ms` timing metadata), in
    /// first-encounter order. Lets the comparator say *which phase* of a
    /// regressed cell slowed down. Empty for artifacts written before
    /// phase attribution existed — optional on parse, like `graph` and
    /// `coreset`.
    pub phases: Vec<(String, f64)>,
}

impl BenchRecord {
    /// The identity of the cell — what the comparator joins on: solver,
    /// workload, both instance dimensions, backend and thread count. Cells
    /// measured on differently-shaped instances must never be compared as
    /// if they were the same workload.
    pub fn key(&self) -> String {
        let mut key = format!(
            "{}/{}:n={},nf={},c={}/{}:t={}/g={}",
            self.solver,
            self.workload,
            self.n,
            self.nf,
            self.clusters,
            self.backend.as_str(),
            self.threads,
            self.graph.as_str()
        );
        // Appended only when set, so the keys of every cell measured before
        // the coreset axis existed — including all committed baselines —
        // stay byte-identical and keep joining.
        if self.coreset != Coreset::Off {
            key.push_str(&format!("/cs={}", self.coreset));
        }
        key
    }

    fn to_json_value(&self) -> JsonValue {
        let mut obj = JsonObject::new()
            .string("solver", &self.solver)
            .string("workload", &self.workload)
            .uint("n", self.n as u64)
            .uint("nf", self.nf as u64)
            .uint("clusters", self.clusters as u64)
            .string("backend", self.backend.as_str())
            .string("graph", self.graph.as_str())
            .string("coreset", &self.coreset.as_string())
            .uint("threads", self.threads as u64)
            .field("wall_ms", self.stats.to_json_value())
            .uint("memory_bytes", self.memory_bytes)
            .field(
                "work",
                JsonObject::new()
                    .uint("element_ops", self.work.element_ops)
                    .uint("primitive_calls", self.work.primitive_calls)
                    .uint("sort_calls", self.work.sort_calls)
                    .uint("rounds", self.work.rounds)
                    .build(),
            )
            .bool("deterministic", self.deterministic);
        // Omitted when empty so artifacts from solvers without phase
        // attribution stay byte-identical to the pre-phases spelling.
        if !self.phases.is_empty() {
            let mut ph = JsonObject::new();
            for (name, ms) in &self.phases {
                ph = ph.number(name, *ms);
            }
            obj = obj.field("phases", ph.build());
        }
        obj.build()
    }

    fn from_json_value(value: &JsonValue) -> Result<Self, String> {
        let uint = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("bench record missing integer field '{key}'"))
        };
        let work_obj = value
            .get("work")
            .ok_or_else(|| "bench record missing field 'work'".to_string())?;
        Ok(BenchRecord {
            solver: value
                .get("solver")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "bench record missing field 'solver'".to_string())?
                .to_string(),
            workload: value
                .get("workload")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "bench record missing field 'workload'".to_string())?
                .to_string(),
            n: uint(value, "n")? as usize,
            nf: uint(value, "nf")? as usize,
            clusters: uint(value, "clusters")? as usize,
            backend: value
                .get("backend")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "bench record missing field 'backend'".to_string())?
                .parse()?,
            // Optional on parse: artifacts written before the graph axis
            // existed measured under the then-only dense representation.
            graph: match value.get("graph") {
                None => GraphBackend::Dense,
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| "bench record field 'graph' must be a string".to_string())?
                    .parse()?,
            },
            // Optional on parse: artifacts written before the coreset axis
            // existed all measured the full-instance path.
            coreset: match value.get("coreset") {
                None => Coreset::Off,
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| "bench record field 'coreset' must be a string".to_string())?
                    .parse()?,
            },
            threads: uint(value, "threads")? as usize,
            stats: TrialStats::from_json_value(
                value
                    .get("wall_ms")
                    .ok_or_else(|| "bench record missing field 'wall_ms'".to_string())?,
            )?,
            memory_bytes: uint(value, "memory_bytes")?,
            work: CostReport {
                element_ops: uint(work_obj, "element_ops")?,
                primitive_calls: uint(work_obj, "primitive_calls")?,
                sort_calls: uint(work_obj, "sort_calls")?,
                rounds: uint(work_obj, "rounds")?,
            },
            deterministic: value
                .get("deterministic")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| "bench record missing field 'deterministic'".to_string())?,
            // Optional on parse: artifacts written before phase attribution
            // existed carry no per-phase medians.
            phases: match value.get("phases") {
                None => Vec::new(),
                Some(JsonValue::Object(fields)) => fields
                    .iter()
                    .map(|(name, v)| {
                        v.as_f64()
                            .map(|ms| (name.clone(), ms))
                            .ok_or_else(|| format!("bench record phase '{name}' must be a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(_) => return Err("bench record field 'phases' must be an object".to_string()),
            },
        })
    }
}

/// A complete benchmark artifact: schema tag, machine fingerprint, the
/// solver configuration shared by every cell, and one record per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Where the measurements were taken.
    pub fingerprint: MachineFingerprint,
    /// The solver configuration every cell was measured under.
    pub config: BenchConfig,
    /// Warmup runs each cell performed before timing.
    pub warmup: usize,
    /// One record per matrix cell.
    pub records: Vec<BenchRecord>,
}

impl BenchArtifact {
    /// Serialises the artifact under the `parfaclo.bench.v2` schema.
    pub fn to_json(&self) -> String {
        let rows: Vec<JsonValue> = self
            .records
            .iter()
            .map(BenchRecord::to_json_value)
            .collect();
        JsonObject::new()
            .string("schema", BENCH_V2_SCHEMA)
            .field("machine", self.fingerprint.to_json_value())
            .field("config", self.config.to_json_value())
            .uint("warmup", self.warmup as u64)
            .field("records", JsonValue::Array(rows))
            .build()
            .to_string()
    }

    /// Parses an artifact, rejecting documents whose schema tag is not
    /// exactly `parfaclo.bench.v2` (in particular the older
    /// `parfaclo.bench.v1` speedup artifact).
    pub fn parse(text: &str) -> Result<BenchArtifact, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "artifact has no 'schema' field".to_string())?;
        if schema != BENCH_V2_SCHEMA {
            return Err(format!(
                "artifact schema is '{schema}', expected '{BENCH_V2_SCHEMA}' \
                 (regenerate the baseline with `parfaclo bench --out <path> --force`)"
            ));
        }
        let fingerprint = MachineFingerprint::from_json_value(
            doc.get("machine")
                .ok_or_else(|| "artifact missing 'machine' fingerprint".to_string())?,
        )?;
        let config = BenchConfig::from_json_value(
            doc.get("config")
                .ok_or_else(|| "artifact missing 'config' section".to_string())?,
        )?;
        let warmup = doc
            .get("warmup")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| "artifact missing 'warmup'".to_string())? as usize;
        let records = doc
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "artifact missing 'records' array".to_string())?
            .iter()
            .map(BenchRecord::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchArtifact {
            fingerprint,
            config,
            warmup,
            records,
        })
    }
}

/// Resolves the matrix's workload entries into concrete generator specs:
/// bare workload names inherit the matrix's `n`/`nf`; the `large`/`xlarge`
/// presets and explicit `name:key=value` specs keep their own dimensions.
/// Duplicate resolved specs are an error — they would produce cells with
/// identical keys, which the comparator would double-join.
fn resolve_workloads(matrix: &BenchMatrix) -> Result<Vec<GenSpec>, String> {
    let mut specs: Vec<GenSpec> = Vec::with_capacity(matrix.workloads.len());
    for entry in &matrix.workloads {
        let raw = entry.trim();
        let mut spec = GenSpec::parse(raw)?;
        // Bare name: no explicit options and not a preset alias (presets
        // resolve to a different workload string, e.g. large → uniform).
        if !raw.contains(':') && spec.workload.eq_ignore_ascii_case(raw) {
            spec.n = matrix.n;
            spec.nf = matrix.nf;
        }
        if spec.seed.is_some() {
            return Err(format!(
                "workload entry '{raw}' carries its own seed; the bench matrix uses \
                 one seed for every cell (set it via the run seed), because per-cell \
                 seeds are invisible to the comparator's cell keys"
            ));
        }
        if let Some(dup) = specs.iter().find(|s| **s == spec) {
            return Err(format!(
                "duplicate workload entry '{raw}' in the bench matrix \
                 (resolves to {}:n={},nf={}, same as an earlier entry)",
                dup.workload, dup.n, dup.nf
            ));
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Median of a non-empty sample vector (same definition as
/// [`TrialStats::from_samples`]): middle element, or the mean of the two
/// middle elements when even.
fn median(mut samples: Vec<f64>) -> f64 {
    debug_assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Runs the full matrix under one base [`RunConfig`]: per cell, `warmup`
/// untimed runs then `trials` timed runs, each trial byte-compared
/// (canonical JSON) against the first. The base configuration supplies
/// seed, ε, `k`, policy and the ablation knobs (recorded in the artifact's
/// `config` section); its backend/threads fields are overridden per cell by
/// the sweep dimensions.
///
/// Returns the artifact plus one representative [`Run`] per cell (the first
/// trial's, with the cell's [`TrialStats`] attached) for table display.
/// Errors if any cell violates the determinism contract, names an unknown
/// solver, or the matrix is degenerate.
pub fn run_matrix(
    registry: &Registry,
    matrix: &BenchMatrix,
    base: &RunConfig,
) -> Result<(BenchArtifact, Vec<Run>), String> {
    matrix.validate()?;
    let specs = resolve_workloads(matrix)?;
    let mut records = Vec::with_capacity(matrix.cells());
    let mut runs = Vec::with_capacity(matrix.cells());
    for spec in &specs {
        let workload = &spec.workload;
        for &backend in &matrix.backends {
            let mut cache = InstanceCache::new(spec, base.seed, backend);
            for solver in &matrix.solvers {
                let graphs: &[GraphBackend] = if solver_uses_graph(solver) {
                    &matrix.graphs
                } else {
                    &[GraphBackend::Dense]
                };
                let coresets: &[Coreset] = if solver_uses_coreset(solver) {
                    &matrix.coresets
                } else {
                    &[Coreset::Off]
                };
                for &graph in graphs {
                    for &coreset in coresets {
                        for &threads in &matrix.threads {
                            let cfg = base
                                .clone()
                                .with_backend(backend)
                                .with_graph(graph)
                                .with_coreset(coreset)
                                .with_threads(threads);
                            for _ in 0..matrix.warmup {
                                run_solver_cached(registry, solver, &mut cache, &cfg)?;
                            }
                            let mut samples = Vec::with_capacity(matrix.trials);
                            let mut phase_samples: Vec<(String, Vec<f64>)> = Vec::new();
                            let mut first: Option<Run> = None;
                            let mut deterministic = true;
                            for _ in 0..matrix.trials {
                                let run = run_solver_cached(registry, solver, &mut cache, &cfg)?;
                                samples.push(run.wall_ms);
                                for (name, ms) in &run.phase_wall_ms {
                                    match phase_samples.iter_mut().find(|(n, _)| n == name) {
                                        Some((_, v)) => v.push(*ms),
                                        None => phase_samples.push((name.clone(), vec![*ms])),
                                    }
                                }
                                match &first {
                                    None => first = Some(run),
                                    Some(f) => {
                                        deterministic &= f.canonical_json() == run.canonical_json();
                                    }
                                }
                            }
                            let first = first.expect("trials >= 1 checked in validate");
                            if !deterministic {
                                return Err(format!(
                                    "solver '{solver}' on workload '{workload}' \
                                     (backend {}, graph {}, coreset {coreset}, threads \
                                     {threads}) produced different canonical JSON across \
                                     trials — determinism contract violated",
                                    backend.as_str(),
                                    graph.as_str()
                                ));
                            }
                            let stats = TrialStats::from_samples(&samples);
                            records.push(BenchRecord {
                                solver: solver.clone(),
                                workload: workload.clone(),
                                n: spec.n,
                                nf: spec.nf,
                                clusters: spec.clusters,
                                backend,
                                graph,
                                coreset,
                                threads: first.threads,
                                stats: stats.clone(),
                                memory_bytes: first.memory_bytes,
                                work: first.work,
                                deterministic,
                                phases: phase_samples
                                    .into_iter()
                                    .map(|(name, walls)| (name, median(walls)))
                                    .collect(),
                            });
                            runs.push(first.with_trials(stats));
                        }
                    }
                }
            }
        }
    }
    Ok((
        BenchArtifact {
            fingerprint: MachineFingerprint::detect(),
            config: BenchConfig::from_run_config(base),
            warmup: matrix.warmup,
            records,
        },
        runs,
    ))
}

/// One joined (baseline, current) cell in a comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Cell identity (see [`BenchRecord::key`]).
    pub key: String,
    /// Baseline median wall-clock (ms).
    pub baseline_ms: f64,
    /// Current median wall-clock (ms).
    pub current_ms: f64,
    /// Per-phase medians joined by name: `(phase, baseline_ms,
    /// current_ms)`, in the current record's order. Empty when either side
    /// predates phase attribution.
    pub phases: Vec<(String, f64, f64)>,
}

impl ComparisonRow {
    /// Slowdown ratio `current / baseline`: `> 1` is slower than baseline,
    /// `< 1` is faster. Infinite when the baseline median was 0 and the
    /// current one is not.
    pub fn ratio(&self) -> f64 {
        if self.baseline_ms > 0.0 {
            self.current_ms / self.baseline_ms
        } else if self.current_ms > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// The phases slower than baseline by more than `threshold_pct`
    /// percent, worst first: `(phase, ratio)`. This is how the comparator
    /// answers *which phase* of a regressed cell slowed down. Phases under
    /// 1% of the cell's baseline median are ignored — a 5x blowup of a
    /// microsecond-scale phase is noise, not a verdict.
    pub fn phase_regressions(&self, threshold_pct: f64) -> Vec<(&str, f64)> {
        let floor = self.baseline_ms / 100.0;
        let mut out: Vec<(&str, f64)> = self
            .phases
            .iter()
            .filter(|(_, base, _)| *base > floor)
            .map(|(name, base, cur)| (name.as_str(), cur / base))
            .filter(|(_, ratio)| *ratio > 1.0 + threshold_pct / 100.0)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    /// The single worst-shifting phase past the threshold, if any.
    pub fn worst_phase(&self, threshold_pct: f64) -> Option<(&str, f64)> {
        self.phase_regressions(threshold_pct).into_iter().next()
    }

    /// Human verdict against a regression threshold in percent.
    pub fn verdict(&self, threshold_pct: f64) -> &'static str {
        let ratio = self.ratio();
        if ratio > 1.0 + threshold_pct / 100.0 {
            "REGRESSED"
        } else if ratio < 1.0 / (1.0 + threshold_pct / 100.0) {
            "improved"
        } else {
            "ok"
        }
    }
}

/// The result of diffing two artifacts cell-by-cell.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Cells present in both artifacts, in the current artifact's order.
    pub rows: Vec<ComparisonRow>,
    /// Cell keys present only in the baseline (workload dropped/renamed, or
    /// the current run measured a narrower matrix).
    pub missing: Vec<String>,
    /// Cell keys present only in the current artifact.
    pub added: Vec<String>,
}

impl ComparisonReport {
    /// The cells slower than baseline by more than `threshold_pct` percent.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&ComparisonRow> {
        self.rows
            .iter()
            .filter(|row| row.verdict(threshold_pct) == "REGRESSED")
            .collect()
    }

    /// Geometric-mean slowdown ratio over the joined cells (1.0 when there
    /// are none) — the one-number summary printed under the table.
    pub fn geomean_ratio(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .rows
            .iter()
            .map(|r| r.ratio().max(f64::MIN_POSITIVE).ln())
            .sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

/// Joins two artifacts on cell identity and compares median wall-clocks.
///
/// Errors when the artifacts were measured under different solver
/// configurations (seed, ε, `k`, policy, ablation knobs): the cells would
/// join on identical keys while describing different instances and
/// different work, so any ratio would be meaningless. Cells only on one
/// side are reported (never silently dropped), not treated as regressions:
/// a baseline regenerated on a wider matrix must not fail CI runs that
/// measure a subset.
pub fn compare(
    baseline: &BenchArtifact,
    current: &BenchArtifact,
) -> Result<ComparisonReport, String> {
    if baseline.config != current.config {
        return Err(format!(
            "artifacts were measured under different configurations and cannot be \
             compared: baseline {:?} vs current {:?} \
             (re-run with matching --seed/--eps/--k/--policy/ablation flags, or \
             regenerate the baseline)",
            baseline.config, current.config
        ));
    }
    let mut rows = Vec::new();
    let mut added = Vec::new();
    for cur in &current.records {
        match baseline.records.iter().find(|b| b.key() == cur.key()) {
            Some(base) => rows.push(ComparisonRow {
                key: cur.key(),
                baseline_ms: base.stats.median_ms,
                current_ms: cur.stats.median_ms,
                phases: cur
                    .phases
                    .iter()
                    .filter_map(|(name, cur_ms)| {
                        base.phases
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, base_ms)| (name.clone(), *base_ms, *cur_ms))
                    })
                    .collect(),
            }),
            None => added.push(cur.key()),
        }
    }
    let missing = baseline
        .records
        .iter()
        .filter(|b| !current.records.iter().any(|c| c.key() == b.key()))
        .map(|b| b.key())
        .collect();
    Ok(ComparisonReport {
        rows,
        missing,
        added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::standard_registry;

    fn record(solver: &str, workload: &str, median_ms: f64) -> BenchRecord {
        BenchRecord {
            solver: solver.to_string(),
            workload: workload.to_string(),
            n: 64,
            nf: 32,
            clusters: 8,
            backend: Backend::Dense,
            graph: GraphBackend::Dense,
            coreset: Coreset::Off,
            threads: 1,
            stats: TrialStats {
                trials: 3,
                min_ms: median_ms * 0.9,
                median_ms,
                mean_ms: median_ms,
                stddev_ms: median_ms * 0.05,
            },
            memory_bytes: 64 * 32 * 8,
            work: CostReport {
                element_ops: 1000,
                primitive_calls: 10,
                sort_calls: 2,
                rounds: 4,
            },
            deterministic: true,
            phases: Vec::new(),
        }
    }

    fn artifact(records: Vec<BenchRecord>) -> BenchArtifact {
        BenchArtifact {
            fingerprint: MachineFingerprint {
                cpus: 4,
                commit: "deadbeef".to_string(),
                os: "linux".to_string(),
                arch: "x86_64".to_string(),
            },
            config: BenchConfig::from_run_config(&RunConfig::new(0.1).with_seed(5).with_k(3)),
            warmup: 1,
            records,
        }
    }

    #[test]
    fn artifact_json_round_trips() {
        let art = artifact(vec![
            record("greedy", "uniform", 2.5),
            record("kcenter", "clustered", 1.25),
        ]);
        let text = art.to_json();
        assert!(text.contains(BENCH_V2_SCHEMA));
        assert!(text.contains("\"machine\""));
        assert!(text.contains("\"element_ops\":1000"));
        let back = BenchArtifact::parse(&text).unwrap();
        assert_eq!(back, art);
    }

    #[test]
    fn schema_version_mismatch_is_rejected() {
        let v1 = r#"{"schema":"parfaclo.bench.v1","records":[]}"#;
        let err = BenchArtifact::parse(v1).unwrap_err();
        assert!(
            err.contains("parfaclo.bench.v1") && err.contains(BENCH_V2_SCHEMA),
            "error should name both schemas: {err}"
        );
        assert!(BenchArtifact::parse("{}").is_err());
        assert!(BenchArtifact::parse("not json").is_err());
    }

    #[test]
    fn comparator_classifies_improvement_and_regression() {
        let base = artifact(vec![
            record("greedy", "uniform", 10.0),
            record("kcenter", "uniform", 10.0),
            record("maxdom", "uniform", 10.0),
        ]);
        let cur = artifact(vec![
            record("greedy", "uniform", 4.0),   // 2.5x faster
            record("kcenter", "uniform", 10.5), // noise
            record("maxdom", "uniform", 30.0),  // 3x slower
        ]);
        let report = compare(&base, &cur).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert!(report.missing.is_empty() && report.added.is_empty());
        assert_eq!(report.rows[0].verdict(50.0), "improved");
        assert_eq!(report.rows[1].verdict(50.0), "ok");
        assert_eq!(report.rows[2].verdict(50.0), "REGRESSED");
        let regressions = report.regressions(50.0);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].key.starts_with("maxdom/"));
        // A generous-enough threshold accepts the 3x slowdown.
        assert!(report.regressions(250.0).is_empty());
        assert!((report.rows[2].ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn phases_field_round_trips_and_is_optional_on_parse() {
        let mut rec = record("greedy", "uniform", 10.0);
        rec.phases = vec![
            ("orders-build".to_string(), 2.5),
            ("star-rounds".to_string(), 6.0),
        ];
        let art = artifact(vec![rec]);
        let text = art.to_json();
        assert!(text.contains("\"phases\":{\"orders-build\":2.5,\"star-rounds\":6.0}"));
        let back = BenchArtifact::parse(&text).unwrap();
        assert_eq!(back, art);

        // Empty phases are omitted from the JSON and parse back as empty —
        // the pre-phases artifact spelling keeps parsing.
        let bare = artifact(vec![record("greedy", "uniform", 10.0)]);
        let text = bare.to_json();
        assert!(!text.contains("\"phases\""));
        assert_eq!(BenchArtifact::parse(&text).unwrap(), bare);
    }

    #[test]
    fn comparator_names_the_regressed_phase() {
        let mut base_rec = record("greedy", "uniform", 10.0);
        base_rec.phases = vec![
            ("orders-build".to_string(), 4.0),
            ("star-rounds".to_string(), 5.0),
            ("finalize".to_string(), 0.05), // under the 1% noise floor
        ];
        let mut cur_rec = record("greedy", "uniform", 21.0);
        cur_rec.phases = vec![
            ("orders-build".to_string(), 4.2),
            ("star-rounds".to_string(), 16.0), // 3.2x — the culprit
            ("finalize".to_string(), 0.5),     // 10x but noise-scale
        ];
        let report = compare(&artifact(vec![base_rec]), &artifact(vec![cur_rec])).unwrap();
        let row = &report.rows[0];
        assert_eq!(row.verdict(50.0), "REGRESSED");
        let culprits = row.phase_regressions(50.0);
        assert_eq!(culprits.len(), 1, "{culprits:?}");
        assert_eq!(culprits[0].0, "star-rounds");
        assert!((culprits[0].1 - 3.2).abs() < 1e-12);
        assert_eq!(row.worst_phase(50.0), Some(("star-rounds", 3.2)));
        // orders-build moved 5% — under the gate, not a phase regression.
        assert!(row
            .phase_regressions(50.0)
            .iter()
            .all(|(n, _)| *n != "orders-build"));
    }

    #[test]
    fn comparator_tolerates_phaseless_sides() {
        // Baseline predates phase attribution: the join yields no phases
        // and phase-level verdicts stay silent rather than erroring.
        let base_rec = record("greedy", "uniform", 10.0);
        let mut cur_rec = record("greedy", "uniform", 30.0);
        cur_rec.phases = vec![("star-rounds".to_string(), 25.0)];
        let report = compare(&artifact(vec![base_rec]), &artifact(vec![cur_rec])).unwrap();
        let row = &report.rows[0];
        assert_eq!(row.verdict(50.0), "REGRESSED");
        assert!(row.phases.is_empty());
        assert_eq!(row.worst_phase(0.0), None);
    }

    #[test]
    fn run_matrix_records_per_phase_medians() {
        let registry = standard_registry();
        let matrix = BenchMatrix {
            solvers: vec!["greedy".to_string()],
            workloads: vec!["uniform".to_string()],
            n: 24,
            nf: 12,
            backends: vec![Backend::Dense],
            graphs: vec![GraphBackend::Dense],
            coresets: vec![Coreset::Off],
            threads: vec![1],
            warmup: 0,
            trials: 3,
        };
        let base = RunConfig::new(0.1).with_seed(5).with_k(3);
        let (artifact, _) = run_matrix(&registry, &matrix, &base).unwrap();
        let rec = &artifact.records[0];
        let names: Vec<&str> = rec.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"star-rounds"),
            "greedy cell should attribute its round loop: {names:?}"
        );
        assert!(rec
            .phases
            .iter()
            .all(|(_, ms)| ms.is_finite() && *ms >= 0.0));
        // And phased records survive the artifact round trip.
        let back = BenchArtifact::parse(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
    }

    #[test]
    fn comparator_reports_missing_and_added_cells() {
        let base = artifact(vec![
            record("greedy", "uniform", 10.0),
            record("greedy", "clustered", 10.0),
        ]);
        let cur = artifact(vec![
            record("greedy", "uniform", 10.0),
            record("greedy", "grid", 10.0),
        ]);
        let report = compare(&base, &cur).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(
            report.missing,
            vec![record("greedy", "clustered", 0.0).key()]
        );
        assert_eq!(report.added, vec![record("greedy", "grid", 0.0).key()]);
        // Missing cells are informational, never regressions.
        assert!(report.regressions(0.0).is_empty());
    }

    #[test]
    fn comparator_handles_zero_baselines_and_geomean() {
        let base = artifact(vec![record("greedy", "uniform", 0.0)]);
        let mut cur = artifact(vec![record("greedy", "uniform", 5.0)]);
        let report = compare(&base, &cur).unwrap();
        assert_eq!(report.rows[0].ratio(), f64::INFINITY);
        assert_eq!(report.rows[0].verdict(400.0), "REGRESSED");

        cur.records[0].stats.median_ms = 0.0;
        let report = compare(&base, &cur).unwrap();
        assert_eq!(report.rows[0].ratio(), 1.0, "0 vs 0 is unchanged");

        let base = artifact(vec![
            record("a", "uniform", 10.0),
            record("b", "uniform", 10.0),
        ]);
        let cur = artifact(vec![
            record("a", "uniform", 20.0),
            record("b", "uniform", 5.0),
        ]);
        let report = compare(&base, &cur).unwrap();
        assert!((report.geomean_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_matrix_measures_and_self_certifies() {
        let registry = standard_registry();
        let matrix = BenchMatrix {
            solvers: vec!["greedy".to_string(), "kcenter".to_string()],
            workloads: vec!["uniform".to_string()],
            n: 24,
            nf: 12,
            backends: vec![Backend::Dense],
            graphs: vec![GraphBackend::Dense],
            coresets: vec![Coreset::Off],
            threads: vec![1, 2],
            warmup: 1,
            trials: 3,
        };
        let base = RunConfig::new(0.1).with_seed(5).with_k(3);
        let (artifact, runs) = run_matrix(&registry, &matrix, &base).unwrap();
        assert_eq!(artifact.records.len(), matrix.cells());
        assert_eq!(runs.len(), matrix.cells());
        for rec in &artifact.records {
            assert!(rec.deterministic, "{} not byte-deterministic", rec.key());
            assert_eq!(rec.stats.trials, 3);
            assert!(rec.stats.min_ms <= rec.stats.median_ms + 1e-12);
            assert!(rec.work.element_ops > 0, "{} charged no work", rec.key());
        }
        for run in &runs {
            assert_eq!(run.trials.as_ref().map(|t| t.trials), Some(3));
        }
        // Self-comparison: same artifact on both sides has no regressions
        // at any threshold, ratio exactly 1 per cell.
        let report = compare(&artifact, &artifact).unwrap();
        assert_eq!(report.rows.len(), matrix.cells());
        assert!(report.regressions(0.0).is_empty());
        assert!(report.rows.iter().all(|r| r.ratio() == 1.0));
        // And the serialised artifact round-trips.
        let back = BenchArtifact::parse(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
    }

    #[test]
    fn run_matrix_rejects_degenerate_input() {
        let registry = standard_registry();
        let empty = BenchMatrix {
            solvers: Vec::new(),
            ..BenchMatrix::default()
        };
        assert!(run_matrix(&registry, &empty, &RunConfig::default()).is_err());

        let zero_trials = BenchMatrix {
            trials: 0,
            ..BenchMatrix::default()
        };
        assert!(run_matrix(&registry, &zero_trials, &RunConfig::default()).is_err());

        let bad_workload = BenchMatrix {
            workloads: vec!["mystery".to_string()],
            ..BenchMatrix::default()
        };
        assert!(run_matrix(&registry, &bad_workload, &RunConfig::default()).is_err());

        let bad_solver = BenchMatrix {
            solvers: vec!["ghost".to_string()],
            workloads: vec!["uniform".to_string()],
            ..BenchMatrix::default()
        };
        assert!(run_matrix(&registry, &bad_solver, &RunConfig::default()).is_err());
    }

    #[test]
    fn default_matrix_spans_the_layers() {
        let m = BenchMatrix::default();
        // greedy + primal-dual contribute one cell each; kcenter + maxdom
        // fan out over both graph backends: (2·1 + 2·2) solver-graph combos.
        assert_eq!(m.cells(), (2 + 2 * 2) * 2 * 3 * 2);
        assert!(m.backends.contains(&Backend::Implicit));
        assert!(m.backends.contains(&Backend::Spatial));
        assert!(m.graphs.contains(&GraphBackend::Csr));
        // Coresets are opt-in: the default axis is the full-instance path
        // only, so committed baselines keep their historical cell count.
        assert_eq!(m.coresets, vec![Coreset::Off]);
        assert!(m.threads.contains(&1) && m.threads.len() > 1);
    }

    #[test]
    fn coreset_axis_sweeps_only_clustering_solvers() {
        let registry = standard_registry();
        let matrix = BenchMatrix {
            solvers: vec!["greedy".to_string(), "kmedian-ls".to_string()],
            workloads: vec!["uniform".to_string()],
            n: 48,
            nf: 24,
            backends: vec![Backend::Dense],
            graphs: vec![GraphBackend::Dense],
            coresets: vec![Coreset::Off, Coreset::Eps(0.25)],
            threads: vec![1],
            warmup: 0,
            trials: 2,
        };
        let base = RunConfig::new(0.1).with_seed(5).with_k(3);
        let (artifact, _) = run_matrix(&registry, &matrix, &base).unwrap();
        assert_eq!(artifact.records.len(), matrix.cells());
        assert_eq!(matrix.cells(), 3, "greedy x1 + kmedian-ls x2 coresets");
        let greedy: Vec<_> = artifact
            .records
            .iter()
            .filter(|r| r.solver == "greedy")
            .collect();
        assert_eq!(greedy.len(), 1, "non-clustering solver must not fan out");
        assert_eq!(greedy[0].coreset, Coreset::Off);
        let kmedian: Vec<_> = artifact
            .records
            .iter()
            .filter(|r| r.solver == "kmedian-ls")
            .collect();
        assert_eq!(kmedian.len(), 2);
        assert_ne!(kmedian[0].key(), kmedian[1].key());
        assert!(kmedian.iter().any(|r| r.coreset == Coreset::Eps(0.25)));
        // The coreset cell key carries the axis; the off cell's key is the
        // historical (pre-axis) spelling, so old baselines keep joining.
        let off = kmedian.iter().find(|r| r.coreset == Coreset::Off).unwrap();
        assert!(!off.key().contains("cs="), "{}", off.key());
        let eps = kmedian.iter().find(|r| r.coreset != Coreset::Off).unwrap();
        assert!(eps.key().ends_with("/cs=eps:0.25"), "{}", eps.key());
        // And the artifact with coreset cells round-trips.
        let back = BenchArtifact::parse(&artifact.to_json()).unwrap();
        assert_eq!(back, artifact);
    }

    #[test]
    fn graph_axis_sweeps_only_graph_solvers() {
        let registry = standard_registry();
        let matrix = BenchMatrix {
            solvers: vec!["greedy".to_string(), "maxdom".to_string()],
            workloads: vec!["uniform".to_string()],
            n: 24,
            nf: 12,
            backends: vec![Backend::Dense],
            graphs: vec![GraphBackend::Dense, GraphBackend::Csr],
            coresets: vec![Coreset::Off],
            threads: vec![1],
            warmup: 0,
            trials: 1,
        };
        let base = RunConfig::new(0.1).with_seed(5).with_k(3);
        let (artifact, _) = run_matrix(&registry, &matrix, &base).unwrap();
        assert_eq!(artifact.records.len(), matrix.cells());
        assert_eq!(matrix.cells(), 3, "greedy x1 + maxdom x2 graphs");
        let greedy: Vec<_> = artifact
            .records
            .iter()
            .filter(|r| r.solver == "greedy")
            .collect();
        assert_eq!(greedy.len(), 1, "non-graph solver must not fan out");
        assert_eq!(greedy[0].graph, GraphBackend::Dense);
        let maxdom: Vec<_> = artifact
            .records
            .iter()
            .filter(|r| r.solver == "maxdom")
            .collect();
        assert_eq!(maxdom.len(), 2);
        assert_ne!(maxdom[0].key(), maxdom[1].key());
        assert!(maxdom.iter().any(|r| r.graph == GraphBackend::Csr));
        // The representations do identical algorithmic work — only wall
        // clock and memory may differ.
        assert_eq!(maxdom[0].work, maxdom[1].work);
    }

    #[test]
    fn comparator_rejects_mismatched_configurations() {
        let base = artifact(vec![record("greedy", "uniform", 10.0)]);
        let mut cur = artifact(vec![record("greedy", "uniform", 10.0)]);
        cur.config.seed = 99;
        let err = compare(&base, &cur).unwrap_err();
        assert!(err.contains("different configurations"), "{err}");

        let mut cur = artifact(vec![record("greedy", "uniform", 10.0)]);
        cur.config.k = 7;
        assert!(compare(&base, &cur).is_err(), "k change must not join");

        // Identical configurations compare fine.
        let cur = artifact(vec![record("greedy", "uniform", 10.0)]);
        assert!(compare(&base, &cur).is_ok());
    }

    #[test]
    fn bench_config_round_trips_and_is_required() {
        let cfg = BenchConfig::from_run_config(
            &RunConfig::new(0.25)
                .with_seed(3)
                .with_k(5)
                .with_policy(ExecPolicy::Tuned { grain: 64 })
                .with_threshold(1.5)
                .with_preprocess(false),
        );
        assert_eq!(cfg.policy, "tuned:64");
        let back = BenchConfig::from_json_value(
            &JsonValue::parse(&cfg.to_json_value().to_string()).unwrap(),
        )
        .unwrap();
        assert_eq!(back, cfg);
        // An artifact without a config section is rejected at parse time.
        let art = artifact(vec![]);
        let stripped = art
            .to_json()
            .replace(&format!(",\"config\":{}", art.config.to_json_value()), "");
        let err = BenchArtifact::parse(&stripped).unwrap_err();
        assert!(err.contains("config"), "{err}");
    }

    #[test]
    fn workload_resolution_keeps_preset_dimensions_and_rejects_duplicates() {
        let matrix = BenchMatrix {
            workloads: vec![
                "uniform".to_string(),
                "large".to_string(),
                "clustered:n=128".to_string(),
            ],
            ..BenchMatrix::default()
        };
        let specs = resolve_workloads(&matrix).unwrap();
        // Bare name: matrix dimensions.
        assert_eq!((specs[0].n, specs[0].nf), (128, 64));
        // Preset: its own dimensions, not silently shrunk to the matrix's.
        assert_eq!(specs[1].workload, "uniform");
        assert_eq!((specs[1].n, specs[1].nf), (100_000, 100));
        // Explicit spec: its own dimensions.
        assert_eq!((specs[2].workload.as_str(), specs[2].n), ("clustered", 128));

        // Duplicates — textual or after resolution — are rejected.
        for dup in [
            vec!["uniform".to_string(), "uniform".to_string()],
            vec!["uniform".to_string(), "uniform:n=128,nf=64".to_string()],
        ] {
            let matrix = BenchMatrix {
                workloads: dup.clone(),
                ..BenchMatrix::default()
            };
            let err = resolve_workloads(&matrix).unwrap_err();
            assert!(err.contains("duplicate"), "{dup:?}: {err}");
        }
    }
}
