//! Shared harness code for the `parfaclo` experiment binaries and Criterion benches.
//!
//! Each experiment binary (`exp_e1_*` … `exp_e10_*`) regenerates one row-set of
//! `EXPERIMENTS.md`: it sweeps the workloads/parameters listed in DESIGN.md's experiment
//! index, runs the relevant algorithms, and prints an aligned plain-text table to
//! stdout. The Criterion benches in `benches/` measure wall-clock time for the same
//! code paths.
//!
//! Everything here is deterministic given the seeds embedded in the binaries, so the
//! tables in `EXPERIMENTS.md` can be reproduced exactly with
//! `cargo run -p parfaclo-bench --release --bin <experiment>`.

#![warn(missing_docs)]

use std::time::Instant;

/// A fixed-width plain-text table printer used by every experiment binary.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table with the given column headers and prints the header row.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let t = Table { headers, widths };
        t.print_header();
        t
    }

    fn print_header(&self) {
        let cells: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", cells.join("  "));
        println!("{}", "-".repeat(cells.join("  ").len()));
    }

    /// Prints one row; the number of cells must match the number of headers.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        let cells: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", cells.join("  "));
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Times a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// The standard square sizes (`nc = nf = s`) used by the size sweeps.
pub fn size_sweep() -> Vec<usize> {
    vec![16, 32, 64, 128]
}

/// `log_{1+eps}(x)`.
pub fn log1p_eps(x: f64, eps: f64) -> f64 {
    x.ln() / (1.0 + eps).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert!((log1p_eps(8.0, 1.0) - 3.0).abs() < 1e-12);
        let (v, ms) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert!(!size_sweep().is_empty());
    }
}
