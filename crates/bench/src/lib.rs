//! Harness for the unified `parfaclo` runner and the Criterion benches.
//!
//! This crate owns the pieces that need visibility over every algorithm
//! crate at once:
//!
//! * [`registry`] — assembly of the full solver [`parfaclo_api::Registry`]
//!   (`standard_registry()`), the entry point for the CLI, the benches and
//!   the cross-crate conformance tests;
//! * [`runner`] — the engine behind the `parfaclo` binary: `--gen` spec
//!   parsing, instance construction, solver dispatch, JSON emission;
//! * the `parfaclo` binary itself (`src/bin/parfaclo.rs`), which replaces
//!   the ten historical `exp_e*` experiment binaries with one driver
//!   (`run` / `suite` / `ablation` / `list`) emitting a single JSON run
//!   schema for every experiment;
//! * the [`Table`] plain-text printer and the SIGPIPE helper shared by
//!   the binary and the examples.
//!
//! Everything is deterministic given the seeds passed on the command line,
//! so any experiment table can be reproduced exactly from its JSON record's
//! `seed`/`epsilon`/generator fields.

#![warn(missing_docs)]

pub mod bench;
pub mod registry;
pub mod runner;

pub use registry::standard_registry;

/// Restores the default SIGPIPE disposition so piping a binary into
/// `head`/`grep` terminates it quietly instead of panicking on a
/// broken-pipe write (Rust installs SIG_IGN before `main`). Call first
/// thing in `main` of every CLI/example binary.
#[cfg(unix)]
pub fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

/// No-op on non-unix targets.
#[cfg(not(unix))]
pub fn reset_sigpipe() {}

/// A fixed-width plain-text table printer used by every experiment binary.
pub struct Table {
    headers: Vec<String>,
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table with the given column headers and prints the header row.
    pub fn new(headers: &[&str]) -> Self {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10)).collect();
        let t = Table { headers, widths };
        t.print_header();
        t
    }

    fn print_header(&self) {
        let cells: Vec<String> = self
            .headers
            .iter()
            .zip(&self.widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        println!("{}", cells.join("  "));
        println!("{}", "-".repeat(cells.join("  ").len()));
    }

    /// Prints one row; the number of cells must match the number of headers.
    pub fn row(&self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        let cells: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", cells.join("  "));
    }
}
