//! Assembly of the full solver registry.
//!
//! `parfaclo-bench` is the one crate that depends on every algorithm crate,
//! so it owns the wiring: [`standard_registry`] registers every solver in
//! the workspace — the three parallel facility-location algorithms of the
//! paper plus the local-search extension, the parallel k-clustering
//! algorithms, the dominator-set routines, and the sequential baselines —
//! under their stable names. The `parfaclo` CLI, the Criterion benches and
//! the cross-crate conformance tests all start from here.

use parfaclo_api::Registry;
use parfaclo_core::solvers::{
    FlLocalSearchSolver, GreedySolver, LpRoundingSolver, PrimalDualSolver,
};
use parfaclo_dominator::solvers::{MaxDomSolver, MisSolver};
use parfaclo_kclustering::solvers::{
    KCenterSolver, KMeansLocalSearchSolver, KMedianLocalSearchSolver,
};
use parfaclo_seq_baselines::solvers::{
    GonzalezSolver, HochbaumShmoysSolver, JainVaziraniSolver, JmsGreedySolver, SeqKMedianSolver,
};

/// Every solver in the workspace, registered under its stable name.
///
/// Names (by family):
///
/// * facility location (parallel): `greedy`, `primal-dual`, `lp-rounding`,
///   `local-search-fl`
/// * facility location (sequential baselines): `jms-greedy`, `jain-vazirani`
/// * k-clustering (parallel): `kcenter`, `kmedian-ls`, `kmeans-ls`
/// * k-clustering (sequential baselines): `gonzalez`, `hs-kcenter`,
///   `kmedian-seq`
/// * dominator sets: `maxdom`, `mis`
pub fn standard_registry() -> Registry {
    let mut registry = Registry::new();
    // Parallel facility location (the paper's core).
    registry.register(Box::new(GreedySolver));
    registry.register(Box::new(PrimalDualSolver));
    registry.register(Box::new(LpRoundingSolver));
    registry.register(Box::new(FlLocalSearchSolver));
    // Sequential facility-location baselines.
    registry.register(Box::new(JmsGreedySolver));
    registry.register(Box::new(JainVaziraniSolver));
    // Parallel k-clustering.
    registry.register(Box::new(KCenterSolver));
    registry.register(Box::new(KMedianLocalSearchSolver));
    registry.register(Box::new(KMeansLocalSearchSolver));
    // Sequential k-clustering baselines.
    registry.register(Box::new(GonzalezSolver));
    registry.register(Box::new(HochbaumShmoysSolver));
    registry.register(Box::new(SeqKMedianSolver));
    // Dominator sets.
    registry.register(Box::new(MaxDomSolver));
    registry.register(Box::new(MisSolver));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_names_are_registered() {
        let registry = standard_registry();
        for name in [
            "greedy",
            "primal-dual",
            "lp-rounding",
            "kcenter",
            "kmedian-ls",
            "maxdom",
        ] {
            assert!(registry.get(name).is_some(), "solver '{name}' missing");
        }
        assert!(registry.len() >= 14);
    }

    #[test]
    fn names_are_unique_and_sorted() {
        let registry = standard_registry();
        let names = registry.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted);
    }
}
