//! The engine behind the `parfaclo` CLI: generator-spec parsing, instance
//! construction, solver dispatch and JSON emission.
//!
//! Kept in the library (rather than the binary) so the conformance tests can
//! exercise exactly the code path the CLI runs.

use parfaclo_api::{
    AnyInstance, Backend, BuildError, ProblemKind, Registry, Run, RunConfig, SolveError,
};
use parfaclo_metric::gen::{self, GenParams};

/// A parsed `--gen` specification, e.g. `uniform:n=2000,k=40`.
///
/// Grammar: `<workload>[:key=value[,key=value]*]` with workloads `uniform`,
/// `clustered`, `grid`, `line`, `planted`, the sparse-metric workloads
/// `powerlaw` (power-law cluster sizes — a few heavy hubs, a long singleton
/// tail, `O(n)` threshold-graph edges) and `road` (road-network-like
/// bounded-degree metric), the preset `medium` (uniform, n=2000, nf=64 —
/// big enough that every solver phase does real work, small enough for CI
/// smoke runs), the large presets `large` (uniform, n=100000,
/// nf=100) and `xlarge` (uniform, n=1000000, nf=50) — both sized for the
/// implicit/spatial backends; the dense matrix at these scales is
/// 80 MB–400 MB for facility location and entirely out of reach for square
/// clustering instances — `xxlarge` (uniform, n=10000000, nf=100), which
/// only the spatial backend makes practical (the implicit backend's O(n)
/// sweeps put every structured query at 10M distance evaluations), and the
/// sparse presets `sparse-large` (road, n=100000) and `sparse-xlarge`
/// (powerlaw, n=1000000) — the workloads whose threshold graphs the CSR
/// graph backend (`--graph csr`) handles at scales the dense bit matrix
/// cannot represent — and keys
///
/// * `n` — number of clients / nodes (default 200),
/// * `nf` (alias `k`) — number of candidate facilities for facility-location
///   instances; ignored by clustering instances (default `n / 2`),
/// * `c` — number of blobs for `clustered` / `planted` (default 8),
/// * `seed` — generator seed (defaults to the run seed).
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Workload name (one of the five spatial models).
    pub workload: String,
    /// Number of clients / nodes.
    pub n: usize,
    /// Number of candidate facilities (facility-location instances only).
    pub nf: usize,
    /// Number of blobs (clustered / planted workloads only).
    pub clusters: usize,
    /// Generator seed override; `None` follows the run seed.
    pub seed: Option<u64>,
}

impl GenSpec {
    /// Parses a `--gen` argument.
    pub fn parse(spec: &str) -> Result<GenSpec, String> {
        let (workload, rest) = match spec.split_once(':') {
            Some((w, r)) => (w, r),
            None => (spec, ""),
        };
        let workload = workload.trim().to_lowercase();
        // Large presets expand to a uniform workload at implicit-backend
        // scale; explicit key=value options still override their dimensions.
        let mut out = match workload.as_str() {
            "medium" => GenSpec {
                workload: "uniform".to_string(),
                n: 2_000,
                nf: 64,
                clusters: 8,
                seed: None,
            },
            "large" => GenSpec {
                workload: "uniform".to_string(),
                n: 100_000,
                nf: 100,
                clusters: 8,
                seed: None,
            },
            "xlarge" => GenSpec {
                workload: "uniform".to_string(),
                n: 1_000_000,
                nf: 50,
                clusters: 8,
                seed: None,
            },
            "xxlarge" => GenSpec {
                workload: "uniform".to_string(),
                n: 10_000_000,
                nf: 100,
                clusters: 8,
                seed: None,
            },
            "sparse-large" => GenSpec {
                workload: "road".to_string(),
                n: 100_000,
                nf: 100,
                clusters: 8,
                seed: None,
            },
            "sparse-xlarge" => GenSpec {
                workload: "powerlaw".to_string(),
                n: 1_000_000,
                nf: 50,
                clusters: 8,
                seed: None,
            },
            "uniform" | "clustered" | "grid" | "line" | "planted" | "powerlaw" | "road" => {
                GenSpec {
                    workload,
                    n: 200,
                    nf: 0,
                    clusters: 8,
                    seed: None,
                }
            }
            _ => {
                return Err(format!(
                    "unknown workload '{workload}' \
                     (expected uniform|clustered|grid|line|planted|powerlaw|road\
                     |medium|large|xlarge|xxlarge|sparse-large|sparse-xlarge)"
                ))
            }
        };
        for pair in rest.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                format!("malformed generator option '{pair}' (expected key=value)")
            })?;
            let value = value.trim();
            match key.trim() {
                "n" => out.n = parse_usize(value, "n")?,
                "nf" | "k" => out.nf = parse_usize(value, "nf")?,
                "c" | "clusters" => out.clusters = parse_usize(value, "c")?,
                "seed" => {
                    out.seed = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("invalid seed '{value}'"))?,
                    )
                }
                other => return Err(format!("unknown generator option '{other}'")),
            }
        }
        if out.n == 0 {
            return Err("generator needs n >= 1".to_string());
        }
        if out.nf == 0 {
            out.nf = (out.n / 2).max(1);
        }
        Ok(out)
    }

    /// Materialises the generator parameters, defaulting the seed to
    /// `fallback_seed`.
    pub fn params(&self, fallback_seed: u64) -> GenParams {
        let base = match self.workload.as_str() {
            "uniform" => GenParams::uniform_square(self.n, self.nf),
            "clustered" => GenParams::gaussian_clusters(self.n, self.nf, self.clusters),
            "grid" => GenParams::grid(self.n, self.nf),
            "line" => GenParams::line(self.n, self.nf),
            "planted" => GenParams::planted(self.n, self.nf, self.clusters),
            "powerlaw" => GenParams::power_law(self.n, self.nf),
            "road" => GenParams::road(self.n, self.nf),
            other => unreachable!("workload '{other}' rejected at parse time"),
        };
        base.with_seed(self.seed.unwrap_or(fallback_seed))
    }

    /// Generates the instance variant the given problem family consumes,
    /// under the requested distance backend. The dense path reports
    /// overflowing matrix shapes as a typed error instead of aborting, and
    /// refuses matrices past [`DENSE_BYTES_CAP`] with a pointer at the
    /// point-backed backends (the `xxlarge` preset under the default dense
    /// backend would otherwise attempt an unguarded 8 GB allocation and be
    /// OOM-killed instead of erroring helpfully).
    pub fn instance(
        &self,
        problem: ProblemKind,
        fallback_seed: u64,
        backend: Backend,
    ) -> Result<AnyInstance, BuildError> {
        if backend == Backend::Dense {
            let cols = match problem {
                ProblemKind::FacilityLocation => self.nf,
                ProblemKind::KClustering | ProblemKind::DominatorSet => self.n,
            };
            let bytes = (self.n as u128) * (cols as u128) * 8;
            if bytes > DENSE_BYTES_CAP as u128 {
                return Err(BuildError::DenseBytesExceedCap {
                    rows: self.n,
                    cols,
                    cap_bytes: DENSE_BYTES_CAP,
                });
            }
        }
        let params = self.params(fallback_seed);
        // Under an installed tracer the generator + backend construction
        // shows up as its own top-level phase, outside any solve span.
        let _span = parfaclo_trace::span("instance-build", None);
        match problem {
            ProblemKind::FacilityLocation => {
                gen::build_facility_location(params, backend).map(AnyInstance::Fl)
            }
            ProblemKind::KClustering | ProblemKind::DominatorSet => {
                gen::build_clustering(params, backend).map(AnyInstance::Cluster)
            }
        }
    }
}

/// Largest dense distance matrix the CLI will materialise (4 GiB). The
/// limit lives in the runner, not the metric library: programmatic callers
/// of `try_facility_location` keep the overflow-only check, but a CLI
/// invocation hitting this is virtually always a missing `--backend`
/// choice, not a deliberate half-memory allocation.
pub const DENSE_BYTES_CAP: u64 = 4 << 30;

fn parse_usize(value: &str, key: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("invalid value '{value}' for generator option '{key}'"))
}

/// Lazily generated instance variants for one [`GenSpec`] and backend, so
/// sweeps build each instance once per workload instead of once per solver.
pub struct InstanceCache<'a> {
    spec: &'a GenSpec,
    fallback_seed: u64,
    backend: Backend,
    fl: Option<AnyInstance>,
    cluster: Option<AnyInstance>,
}

impl<'a> InstanceCache<'a> {
    /// Creates an empty cache for the given spec; nothing is generated yet.
    pub fn new(spec: &'a GenSpec, fallback_seed: u64, backend: Backend) -> Self {
        InstanceCache {
            spec,
            fallback_seed,
            backend,
            fl: None,
            cluster: None,
        }
    }

    /// The instance variant the given problem family consumes, generated on
    /// first use. Errors if dense generation is requested at an overflowing
    /// size.
    pub fn get(&mut self, problem: ProblemKind) -> Result<&AnyInstance, BuildError> {
        let (spec, seed, backend) = (self.spec, self.fallback_seed, self.backend);
        let slot = match problem {
            ProblemKind::FacilityLocation => &mut self.fl,
            ProblemKind::KClustering | ProblemKind::DominatorSet => &mut self.cluster,
        };
        if slot.is_none() {
            *slot = Some(spec.instance(problem, seed, backend)?);
        }
        Ok(slot.as_ref().expect("slot filled above"))
    }
}

/// Runs one named solver on a freshly generated instance.
pub fn run_solver(
    registry: &Registry,
    solver: &str,
    spec: &GenSpec,
    cfg: &RunConfig,
) -> Result<Run, String> {
    run_solver_cached(
        registry,
        solver,
        &mut InstanceCache::new(spec, cfg.seed, cfg.backend),
        cfg,
    )
}

/// Runs one named solver, reusing instances already generated in `cache`.
pub fn run_solver_cached(
    registry: &Registry,
    solver: &str,
    cache: &mut InstanceCache<'_>,
    cfg: &RunConfig,
) -> Result<Run, String> {
    let entry = registry.get(solver).ok_or_else(|| {
        format!(
            "no solver named '{solver}'; available: {}",
            registry.names().join(", ")
        )
    })?;
    // Construction failures become `SolveError::Build` here — the registry
    // boundary — so callers see one error type family for "could not build"
    // and "could not solve" alike.
    let inst = cache
        .get(entry.problem())
        .map_err(|e| SolveError::from(e).to_string())?;
    entry.run(inst, cfg).map_err(|e| e.to_string())
}

/// Serialises a batch of runs as a JSON array (one stable schema for all
/// experiments; see [`parfaclo_api::RUN_SCHEMA`]).
pub fn runs_to_json(runs: &[Run]) -> String {
    let mut out = String::from("[");
    for (idx, run) in runs.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(&run.to_json());
    }
    out.push(']');
    out
}

/// One aligned table row summarising a run (pairs with [`table_header`]).
pub fn table_row(run: &Run) -> Vec<String> {
    vec![
        run.solver.clone(),
        run.problem.to_string(),
        run.n.to_string(),
        format!("{:.3}", run.cost),
        format!("{:.3}", run.lower_bound),
        run.certified_ratio()
            .map_or_else(|| "-".to_string(), |r| format!("{r:.3}")),
        run.rounds.to_string(),
        run.work.element_ops.to_string(),
        run.backend.to_string(),
        run.memory_bytes.to_string(),
        run.threads.to_string(),
        format!("{:.2}", run.wall_ms),
    ]
}

/// Header matching [`table_row`].
pub fn table_header() -> Vec<&'static str> {
    vec![
        "solver",
        "problem",
        "n",
        "cost",
        "lower_bnd",
        "ratio",
        "rounds",
        "work",
        "backend",
        "mem_bytes",
        "thr",
        "ms",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::standard_registry;

    #[test]
    fn gen_spec_parses_issue_example() {
        let spec = GenSpec::parse("uniform:n=2000,k=40").unwrap();
        assert_eq!(spec.workload, "uniform");
        assert_eq!(spec.n, 2000);
        assert_eq!(spec.nf, 40);
        assert_eq!(spec.seed, None);
    }

    #[test]
    fn large_presets_parse_and_allow_overrides() {
        let medium = GenSpec::parse("medium").unwrap();
        assert_eq!(medium.workload, "uniform");
        assert_eq!(medium.n, 2_000);
        assert_eq!(medium.nf, 64);
        let large = GenSpec::parse("large").unwrap();
        assert_eq!(large.workload, "uniform");
        assert_eq!(large.n, 100_000);
        assert_eq!(large.nf, 100);
        let xl = GenSpec::parse("xlarge").unwrap();
        assert_eq!(xl.n, 1_000_000);
        assert_eq!(xl.nf, 50);
        let xxl = GenSpec::parse("xxlarge").unwrap();
        assert_eq!(xxl.workload, "uniform");
        assert_eq!(xxl.n, 10_000_000);
        assert_eq!(xxl.nf, 100);
        // Explicit keys override the preset's dimensions.
        let tuned = GenSpec::parse("large:nf=32,seed=9").unwrap();
        assert_eq!(tuned.n, 100_000);
        assert_eq!(tuned.nf, 32);
        assert_eq!(tuned.seed, Some(9));
        let small_xxl = GenSpec::parse("xxlarge:n=1000").unwrap();
        assert_eq!(small_xxl.n, 1000);
        assert_eq!(small_xxl.nf, 100);
    }

    #[test]
    fn implicit_and_spatial_backend_runs_match_dense_byte_for_byte() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=60,nf=24").unwrap();
        let base = RunConfig::new(0.1).with_seed(4).with_k(3);
        for name in ["greedy", "kcenter", "maxdom"] {
            let dense = run_solver(&registry, name, &spec, &base).unwrap();
            for backend in [
                parfaclo_api::Backend::Implicit,
                parfaclo_api::Backend::Spatial,
            ] {
                let other = run_solver(&registry, name, &spec, &base.clone().with_backend(backend))
                    .unwrap();
                assert_eq!(dense.backend, parfaclo_api::Backend::Dense);
                assert_eq!(other.backend, backend);
                assert!(
                    other.memory_bytes < dense.memory_bytes,
                    "{name}/{backend}: {} >= dense {}",
                    other.memory_bytes,
                    dense.memory_bytes
                );
                assert_eq!(
                    dense.canonical_json(),
                    other.canonical_json(),
                    "{name}: {backend} diverged from dense"
                );
            }
        }
    }

    /// The xxlarge-on-default-dense footgun: a matrix past the 4 GiB cap
    /// must come back as a typed error pointing at the point-backed
    /// backends — never as an attempted allocation.
    #[test]
    fn oversized_dense_matrix_is_refused_with_a_backend_pointer() {
        let spec = GenSpec::parse("xxlarge").unwrap();
        let err = spec
            .instance(
                ProblemKind::FacilityLocation,
                0,
                parfaclo_api::Backend::Dense,
            )
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("spatial"),
            "error must point at spatial: {err}"
        );
        assert!(err.contains("GiB"), "error must name the size: {err}");
        // The square clustering matrix trips the cap at much smaller n.
        let spec = GenSpec::parse("uniform:n=30000").unwrap();
        assert!(spec
            .instance(ProblemKind::KClustering, 0, parfaclo_api::Backend::Dense)
            .is_err());
        // The point-backed backends are untouched by the cap (shape check
        // only — no generation at 10M points in a unit test).
        let spec = GenSpec::parse("xxlarge:n=1000").unwrap();
        assert!(spec
            .instance(
                ProblemKind::FacilityLocation,
                0,
                parfaclo_api::Backend::Spatial
            )
            .is_ok());
    }

    #[test]
    fn sparse_presets_parse_with_sparse_workloads() {
        let sl = GenSpec::parse("sparse-large").unwrap();
        assert_eq!(sl.workload, "road");
        assert_eq!(sl.n, 100_000);
        let sxl = GenSpec::parse("sparse-xlarge").unwrap();
        assert_eq!(sxl.workload, "powerlaw");
        assert_eq!(sxl.n, 1_000_000);
        // Bare sparse workloads parse at the default size and generate.
        let spec = GenSpec::parse("powerlaw:n=50").unwrap();
        assert!(spec
            .instance(ProblemKind::DominatorSet, 1, parfaclo_api::Backend::Spatial)
            .is_ok());
        let spec = GenSpec::parse("road:n=50").unwrap();
        assert!(spec
            .instance(
                ProblemKind::DominatorSet,
                1,
                parfaclo_api::Backend::Implicit
            )
            .is_ok());
    }

    #[test]
    fn gen_spec_defaults_and_errors() {
        let spec = GenSpec::parse("planted").unwrap();
        assert_eq!(spec.n, 200);
        assert_eq!(spec.nf, 100);
        assert_eq!(spec.clusters, 8);
        assert!(GenSpec::parse("mystery").is_err());
        assert!(GenSpec::parse("uniform:n=abc").is_err());
        assert!(GenSpec::parse("uniform:n").is_err());
        assert!(GenSpec::parse("uniform:n=0").is_err());
        assert!(GenSpec::parse("uniform:zz=3").is_err());
    }

    #[test]
    fn run_solver_routes_by_problem_kind() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=16,nf=8").unwrap();
        let cfg = RunConfig::new(0.1).with_seed(3).with_k(3);
        let fl = run_solver(&registry, "greedy", &spec, &cfg).unwrap();
        assert_eq!(fl.problem, ProblemKind::FacilityLocation);
        let kc = run_solver(&registry, "kcenter", &spec, &cfg).unwrap();
        assert_eq!(kc.problem, ProblemKind::KClustering);
        let dom = run_solver(&registry, "maxdom", &spec, &cfg).unwrap();
        assert_eq!(dom.problem, ProblemKind::DominatorSet);
        for run in [&fl, &kc, &dom] {
            run.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", run.solver));
        }
    }

    #[test]
    fn unknown_solver_lists_alternatives() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=8").unwrap();
        let err = run_solver(&registry, "ghost", &spec, &RunConfig::default()).unwrap_err();
        assert!(err.contains("greedy"), "error should list names: {err}");
    }

    #[test]
    fn json_batch_is_an_array_of_schema_records() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=10,nf=5").unwrap();
        let cfg = RunConfig::new(0.1).with_seed(1);
        let a = run_solver(&registry, "greedy", &spec, &cfg).unwrap();
        let b = run_solver(&registry, "jms-greedy", &spec, &cfg).unwrap();
        let json = runs_to_json(&[a, b]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches(parfaclo_api::RUN_SCHEMA).count(), 2);
    }

    #[test]
    fn cached_runs_match_uncached_runs() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=14,nf=7").unwrap();
        let cfg = RunConfig::new(0.1).with_seed(9).with_k(3);
        let mut cache = InstanceCache::new(&spec, cfg.seed, cfg.backend);
        for name in ["greedy", "kcenter", "maxdom"] {
            let cached = run_solver_cached(&registry, name, &mut cache, &cfg).unwrap();
            let fresh = run_solver(&registry, name, &spec, &cfg).unwrap();
            assert_eq!(cached.canonical_json(), fresh.canonical_json(), "{name}");
        }
    }

    #[test]
    fn table_shapes_agree() {
        let registry = standard_registry();
        let spec = GenSpec::parse("uniform:n=10,nf=5").unwrap();
        let run = run_solver(&registry, "greedy", &spec, &RunConfig::default()).unwrap();
        assert_eq!(table_row(&run).len(), table_header().len());
    }
}
