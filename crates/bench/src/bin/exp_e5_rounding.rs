//! E5 — Theorem 6.5: given an optimal LP solution, the parallel rounding algorithm is a
//! (4 + ε)-approximation with `O(m log m log_{1+ε} m)` work.
//!
//! The LP relaxation is solved with the `parfaclo-lp` simplex substrate (polynomial but
//! not parallel — exactly the situation the paper describes), so the sweep is limited to
//! sizes the simplex handles quickly. The table reports the LP value, the rounded cost,
//! the certified ratio cost/LP (guarantee 4 + ε), the integral optimum where brute force
//! is feasible, and the number of rounding rounds.

use parfaclo_bench::{f3, timed, Table};
use parfaclo_core::{lp_rounding, FlConfig};
use parfaclo_lp::solve_facility_lp;
use parfaclo_metric::gen::{self, standard_suite};
use parfaclo_metric::lower_bounds;

fn main() {
    println!("E5: parallel LP rounding (guarantee: 4 + eps, vs the LP value)\n");
    let table = Table::new(&[
        "workload", "n_c", "n_f", "eps", "lp_value", "rounded", "ratio", "opt", "rounds", "lp_ms",
    ]);
    for &(nc, nf) in &[(10usize, 6usize), (16, 8), (24, 10)] {
        for wl in standard_suite(nc, nf, 4000 + nc as u64) {
            let inst = gen::facility_location(wl.params);
            let (lp, lp_ms) = timed(|| solve_facility_lp(&inst).expect("lp solve"));
            let opt = if nf <= 12 {
                lower_bounds::brute_force_facility_location(&inst).1
            } else {
                f64::NAN
            };
            for &eps in &[0.1, 0.5] {
                let cfg = FlConfig::new(eps).with_seed(11);
                let out = lp_rounding::parallel_lp_rounding_detailed(&inst, &lp, &cfg, 1.0 / 3.0);
                table.row(&[
                    wl.name.to_string(),
                    nc.to_string(),
                    nf.to_string(),
                    format!("{eps}"),
                    f3(lp.value()),
                    f3(out.solution.cost),
                    f3(out.solution.cost / lp.value()),
                    if opt.is_nan() { "-".into() } else { f3(opt) },
                    out.solution.rounds.to_string(),
                    format!("{lp_ms:.0}"),
                ]);
            }
        }
    }
    println!("\nratio = rounded / LP value; the guarantee is 4 + eps (LP value <= opt).");
}
