//! E2 — Lemma 4.8 and the §4 round bound: the parallel greedy algorithm needs
//! `O(log_{1+ε} m)` outer rounds and `O(log_{1+ε} m)` subselection iterations per round,
//! for `O(m log²_{1+ε} m)` total work.
//!
//! The table reports, per size and ε: measured outer rounds, total subselection
//! iterations, the theoretical `3·log_{1+ε}(m)` budget, and measured element operations
//! divided by `m·log²_{1+ε} m` (which should stay roughly flat across sizes if the
//! bound is tight up to constants).

use parfaclo_bench::{f1, f3, log1p_eps, Table};
use parfaclo_core::{greedy, FlConfig};
use parfaclo_metric::gen::{self, GenParams};

fn main() {
    println!("E2: parallel greedy round and work scaling (bound: O(log_(1+eps) m) rounds)\n");
    let table = Table::new(&[
        "n", "m", "eps", "rounds", "inner", "log_bound", "work", "work/(m*log^2)",
    ]);
    for &size in &[16usize, 32, 64, 128, 256] {
        let inst = gen::facility_location(GenParams::uniform_square(size, size).with_seed(3));
        let m = inst.m() as f64;
        for &eps in &[0.1, 0.5, 1.0] {
            let out = greedy::parallel_greedy_detailed(&inst, &FlConfig::new(eps).with_seed(5));
            let bound = 3.0 * log1p_eps(m, eps);
            let log2 = log1p_eps(m, eps).powi(2);
            table.row(&[
                size.to_string(),
                (size * size).to_string(),
                format!("{eps}"),
                out.solution.rounds.to_string(),
                out.solution.inner_rounds.to_string(),
                f1(bound),
                out.solution.work.element_ops.to_string(),
                f3(out.solution.work.element_ops as f64 / (m * log2)),
            ]);
        }
    }
    println!("\nrounds should stay below log_bound; work/(m*log^2) should stay roughly flat.");
}
