//! E3 — Theorem 5.4: the parallel primal-dual algorithm is a (3 + ε)-approximation with
//! `O(m log_{1+ε} m)` work.
//!
//! The table reports the parallel cost, the sequential Jain–Vazirani cost, the dual
//! lower bound `Σ_j α_j` (certified), the certified ratio (guarantee 3 + ε), the number
//! of iterations against the `3·log_{1+ε} m` budget, and measured work divided by
//! `m·log_{1+ε} m`.

use parfaclo_bench::{f1, f3, log1p_eps, Table};
use parfaclo_core::{primal_dual, FlConfig};
use parfaclo_metric::gen::{self, standard_suite, GenParams};
use parfaclo_seq_baselines::jain_vazirani;

fn main() {
    println!("E3: parallel primal-dual (guarantee: 3 + eps)\n");
    let table = Table::new(&[
        "workload", "n", "eps", "par_cost", "jv_cost", "dual_lb", "ratio", "iters", "iter_bound",
    ]);
    for &size in &[32usize, 64, 128] {
        for wl in standard_suite(size, size / 2, 2000 + size as u64) {
            let inst = gen::facility_location(wl.params);
            let jv = jain_vazirani(&inst);
            for &eps in &[0.05, 0.2] {
                let sol =
                    primal_dual::parallel_primal_dual(&inst, &FlConfig::new(eps).with_seed(3));
                let bound = 3.0 * log1p_eps(inst.m() as f64, eps);
                table.row(&[
                    wl.name.to_string(),
                    size.to_string(),
                    format!("{eps}"),
                    f3(sol.cost),
                    f3(jv.cost),
                    f3(sol.lower_bound),
                    f3(sol.cost / sol.lower_bound),
                    sol.rounds.to_string(),
                    f1(bound),
                ]);
            }
        }
    }

    println!("\nwork scaling (uniform workload):");
    let t2 = Table::new(&["n", "m", "eps", "work", "work/(m*log)"]);
    for &size in &[16usize, 32, 64, 128, 256] {
        let inst = gen::facility_location(GenParams::uniform_square(size, size).with_seed(4));
        let eps = 0.1;
        let sol = primal_dual::parallel_primal_dual(&inst, &FlConfig::new(eps).with_seed(4));
        let m = inst.m() as f64;
        t2.row(&[
            size.to_string(),
            (size * size).to_string(),
            format!("{eps}"),
            sol.work.element_ops.to_string(),
            f3(sol.work.element_ops as f64 / (m * log1p_eps(m, eps))),
        ]);
    }
    println!("\nratio is certified against the dual; iters should stay below iter_bound.");
}
