//! The unified `parfaclo` runner — one binary driving every solver in the
//! workspace through the registry, replacing the ten ad-hoc `exp_e*`
//! experiment binaries. Every subcommand emits the same JSON run schema
//! ([`parfaclo_api::RUN_SCHEMA`]), so results are comparable across solvers
//! and across invocations.
//!
//! ```text
//! parfaclo list
//! parfaclo run --solver greedy --gen uniform:n=2000,k=40 --eps 0.1 --seed 7 --json out.json
//! parfaclo suite --solvers greedy,primal-dual,jms-greedy --size 64 --json suite.json
//! parfaclo ablation --gen uniform:n=128,nf=64 --json ablation.json
//! ```

use parfaclo_api::{Backend, Coreset, GraphBackend, ProblemKind, Registry, Run, RunConfig};
use parfaclo_bench::bench::{compare, run_matrix, BenchArtifact, BenchMatrix};
use parfaclo_bench::runner::{
    run_solver, run_solver_cached, runs_to_json, table_header, table_row, GenSpec, InstanceCache,
};
use parfaclo_bench::{reset_sigpipe, standard_registry, Table};
use parfaclo_matrixops::ExecPolicy;
use parfaclo_trace::{install, InstallGuard, TraceDetail, Tracer};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
parfaclo — unified runner for the Blelloch-Tangwongsan SPAA'10 reproduction

USAGE:
    parfaclo list
        List every registered solver (name, problem, guarantee, paper ref).

    parfaclo run <name> [options]
        Run one solver on a generated instance and print/emit its Run
        record. The solver can be named positionally or via --solver;
        kmedian-local and kmeans-local are accepted as aliases for the
        registry names kmedian-ls and kmeans-ls. Example:
        parfaclo run kmedian-local --gen xxlarge --backend spatial \\
            --coreset eps:0.1

    parfaclo suite [--solvers a,b,c] [options]
        Run a set of solvers (default: all) over the standard workload
        suite. Always sweeps all five workloads; --gen contributes only
        its dimensions (n, nf, c) and seed, not its workload name.
        (The old --emit-bench speedup artifact has been removed; use
        `parfaclo bench --thread-list 1,N --out <path>` instead.)

    parfaclo bench [options]
        The measurement subsystem: run a (solver x workload x backend x
        thread count) matrix with --warmup untimed runs and --trials
        timed trials per cell, recording min/median/mean/stddev
        wall-clock, memory_bytes and the meter's work counters, with a
        self-certifying determinism check (canonical JSON byte-compared
        across trials). --out writes a parfaclo.bench.v2 artifact with
        a machine fingerprint (cpus, commit, os/arch). --baseline diffs
        the fresh measurements against a previously written artifact
        and prints a per-cell speedup/regression table; with
        --fail-on-regress <pct> the exit code is non-zero if any cell
        is slower than baseline by more than <pct> percent.

    parfaclo ablation [options]
        Run the greedy algorithm under every preprocess/subselection
        combination and an epsilon sweep (the old E10 experiment).

OPTIONS:
    --gen <spec>        Generator spec, e.g. uniform:n=2000,k=40
                        (workloads: uniform|clustered|grid|line|planted|
                        powerlaw|road, plus the CI-smoke preset medium
                        (n=2000, nf=64), the implicit-scale presets
                        large (n=100000, nf=100) and xlarge (n=1000000,
                        nf=50), the spatial-scale preset xxlarge
                        (n=10000000, nf=100), and the sparse-graph presets
                        sparse-large (road, n=100000) and sparse-xlarge
                        (powerlaw, n=1000000);
                        keys: n, nf|k, c, seed)          [default: uniform:n=200]
    --backend <b>       Instance distance backend: dense materialises the
                        |C| x |F| matrix (O(m) memory); implicit stores only
                        the points and computes distances on demand
                        (O(|C|+|F|) memory, but every structured query is an
                        O(n) sweep); spatial adds deterministic exact
                        kd-tree/grid indexes over the points so nearest/range
                        queries run sublinearly (O(|C|+|F|) memory — the
                        backend that makes xxlarge practical; the
                        clustering/dominator probes still need O(n²)
                        transients at any backend).
                        Results are byte-identical in all cases [default: dense]
    --graph <g>         Threshold-graph representation for the round-based
                        solvers (maxdom, mis, kcenter): dense materialises
                        the n x n adjacency matrix (refused above 4 GiB);
                        csr builds a compressed-sparse-row graph holding
                        only the edges within the threshold — the
                        representation that makes sparse million-vertex
                        graphs practical. Canonical results are
                        byte-identical either way      [default: dense]
    --event-engine <e>  Round-loop event engine for the facility-location
                        solvers: bucket serves greedy's sorted distance
                        prefixes lazily from deterministic bucket queues
                        and pops primal-dual's open/freeze events instead
                        of rescanning; scan keeps the historical
                        full-presort / per-iteration-rescan paths.
                        Canonical output is byte-identical either way —
                        only the work profile changes    [default: bucket]
    --radius-deriver <d>
                        k-center candidate-radius derivation: exact sorts
                        all n² pairwise distances (the paper's Theorem 6.1
                        search; refused above the 4 GiB scratch cap);
                        sketch derives candidates from a deterministic
                        1024-node sample plus a diameter cap, probing
                        coarse-to-fine — the deriver that lifts k-center
                        to the sparse-large/sparse-xlarge/xlarge presets.
                        sketch may settle on a different (sampled) radius
                        than exact                       [default: exact]
    --coreset <c>       Clustering coreset: off solves on the full
                        instance; eps:<f64> snaps the points to a uniform
                        grid with ceil(1/eps) cells per axis, solves on
                        one lowest-id medoid per occupied cell (weighted
                        by cell population), then assigns every original
                        point in one sweep — the path that lifts the
                        k-clustering solvers to the xxlarge preset. The
                        run reports both the full-set cost (cost) and the
                        coreset-internal cost (extra.coreset_cost).
                        Byte-identical at any thread count and backend;
                        ignored by the facility-location and dominator
                        solvers                          [default: off]
    --eps <f>           Slack parameter epsilon > 0      [default: 0.1]
    --seed <n>          RNG seed                         [default: 0]
    --k <n>             Centers for clustering solvers   [default: 8]
    --threshold <f>     Dominator-set distance threshold [default: median]
    --policy <p>        seq | par | tuned:<grain>        [default: par]
    --threads <n>       Worker threads for the run (pool size);
                        results are identical at any count   [default: ambient]
    --no-preprocess     Disable round-bounding preprocessing (ablation)
    --no-subselection   Disable greedy subselection vote (ablation)
    --size <n>          Suite/bench node count; overrides --gen's n,
                        other --gen keys are kept        [default: 64]
    --solvers <a,b,c>   Suite/bench solver subset        [default: all (suite);
                        greedy,primal-dual,kcenter,maxdom (bench)]
    --json <path>       Also write the run records as a JSON array
    --trace <path>      Record a deterministic span/event trace of the
                        invocation and write it as Chrome trace-event JSON
                        (load via chrome://tracing or Perfetto); a
                        <path>.canonical sidecar holds the timing-free
                        canonical trace (span topology + round events),
                        byte-identical across backends and thread counts.
                        Refuses to overwrite existing files without --force
    --progress          Stream per-round progress events (round number,
                        frontier size, work counter) to stderr as the
                        solvers run
    --force             Allow bench --out and run/bench --trace to
                        overwrite an existing artifact file
    --quiet             Suppress the human-readable table

BENCH OPTIONS (parfaclo bench only):
    --workloads <a,b>   Workload entries: bare names run at --size's
                        dimensions; the large/xlarge/xxlarge presets and
                        name:key=value specs keep their own
                        [default: uniform,clustered]
    --backends <a,b>    Backend subset (dense,implicit,spatial)
                        [default: dense,implicit,spatial]
    --graphs <a,b>      Threshold-graph representations to sweep for the
                        graph-backed solvers (dense,csr); non-graph
                        solvers always run once   [default: dense,csr]
    --coresets <a,b>    Coreset settings to sweep for the k-clustering
                        solvers (off and/or eps:<f64> entries);
                        non-clustering solvers always run once
                        [default: off]
    --thread-list <a,b> Thread counts to sweep           [default: 1,4]
    --warmup <n>        Untimed warmup runs per cell     [default: 1]
    --trials <n>        Timed trials per cell            [default: 3]
    --out <path>        Write the parfaclo.bench.v2 artifact
    --baseline <path>   Compare against a previous artifact
    --fail-on-regress <pct>
                        Exit non-zero if any cell is more than <pct> %
                        slower than the baseline (e.g. 300 = 4x)
";

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Parsed command-line options shared by the subcommands.
struct Options {
    gen: GenSpec,
    /// Whether --gen was passed explicitly (suite honours its dimensions).
    gen_given: bool,
    cfg: RunConfig,
    /// Bare (non-flag) arguments, e.g. the solver name in `parfaclo run
    /// greedy`. Consumed by `run`; rejected by the other subcommands.
    positional: Vec<String>,
    solver: Option<String>,
    solvers: Option<Vec<String>>,
    size: usize,
    /// Whether --size was passed explicitly (overrides --gen's n in suite).
    size_given: bool,
    json: Option<String>,
    /// Chrome-trace output path; also enables the rounds-level tracer.
    trace: Option<String>,
    /// Stream per-round progress events to stderr.
    progress: bool,
    quiet: bool,
    force: bool,
    /// bench: workload subset.
    workloads: Option<Vec<String>>,
    /// bench: backend subset.
    backends: Option<Vec<Backend>>,
    /// bench: threshold-graph representation subset.
    graphs: Option<Vec<GraphBackend>>,
    /// bench: coreset settings to sweep.
    coresets: Option<Vec<Coreset>>,
    /// bench: thread counts to sweep.
    thread_list: Option<Vec<usize>>,
    /// bench: untimed warmup runs per cell.
    warmup: usize,
    /// bench: timed trials per cell.
    trials: usize,
    /// bench: artifact output path.
    out: Option<String>,
    /// bench: baseline artifact to compare against.
    baseline: Option<String>,
    /// bench: regression threshold (percent slower than baseline) that
    /// flips the exit code.
    fail_on_regress: Option<f64>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut gen = GenSpec::parse("uniform:n=200")?;
    let mut gen_given = false;
    let mut cfg = RunConfig::new(0.1).with_k(8);
    let mut positional = Vec::new();
    let mut solver = None;
    let mut solvers = None;
    let mut size = 64usize;
    let mut size_given = false;
    let mut json = None;
    let mut trace = None;
    let mut progress = false;
    let mut quiet = false;
    let mut force = false;
    let mut workloads = None;
    let mut backends = None;
    let mut graphs = None;
    let mut coresets = None;
    let mut thread_list = None;
    let mut warmup = 1usize;
    let mut trials = 3usize;
    let mut out = None;
    let mut baseline = None;
    let mut fail_on_regress = None;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--gen" => {
                gen = GenSpec::parse(value("--gen")?)?;
                gen_given = true;
            }
            "--eps" => {
                let eps: f64 = value("--eps")?
                    .parse()
                    .map_err(|_| "invalid --eps".to_string())?;
                if eps <= 0.0 {
                    return Err("--eps must be positive".to_string());
                }
                cfg.epsilon = eps;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--k" => {
                let k: usize = value("--k")?
                    .parse()
                    .map_err(|_| "invalid --k".to_string())?;
                if k == 0 {
                    return Err("--k must be at least 1".to_string());
                }
                cfg.k = k;
            }
            "--threshold" => {
                cfg.threshold = Some(
                    value("--threshold")?
                        .parse()
                        .map_err(|_| "invalid --threshold".to_string())?,
                )
            }
            "--policy" => {
                cfg.policy = match value("--policy")?.as_str() {
                    "seq" | "sequential" => ExecPolicy::Sequential,
                    "par" | "parallel" => ExecPolicy::Parallel,
                    other => match other.strip_prefix("tuned:").map(str::parse::<usize>) {
                        Some(Ok(grain)) if grain >= 1 => ExecPolicy::Tuned { grain },
                        _ => {
                            return Err(format!("unknown policy '{other}' (seq|par|tuned:<grain>)"))
                        }
                    },
                }
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                cfg.threads = Some(threads);
            }
            "--backend" => cfg.backend = value("--backend")?.parse()?,
            "--graph" => cfg.graph = value("--graph")?.parse()?,
            "--coreset" => cfg.coreset = value("--coreset")?.parse()?,
            "--event-engine" => cfg.engine = value("--event-engine")?.parse()?,
            "--radius-deriver" => cfg.radius_deriver = value("--radius-deriver")?.parse()?,
            "--no-preprocess" => cfg.preprocess = false,
            "--no-subselection" => cfg.subselection = false,
            "--solver" => solver = Some(value("--solver")?.clone()),
            "--solvers" => {
                solvers = Some(
                    value("--solvers")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--size" => {
                size = value("--size")?
                    .parse()
                    .map_err(|_| "invalid --size".to_string())?;
                if size == 0 {
                    return Err("--size must be at least 1".to_string());
                }
                size_given = true;
            }
            "--json" => json = Some(value("--json")?.clone()),
            "--trace" => trace = Some(value("--trace")?.clone()),
            "--progress" => progress = true,
            // Removed in favour of `parfaclo bench` (which measures the same
            // threads=1-vs-N comparison with warmup, repeated trials and a
            // baseline comparator). A hard error beats silently ignoring a
            // flag that used to write artifacts.
            "--emit-bench" => {
                return Err(
                    "--emit-bench has been removed; use `parfaclo bench --thread-list 1,N \
                     --out <path>` for the speedup matrix (it adds warmup, repeated trials \
                     and baseline comparison)"
                        .to_string(),
                )
            }
            "--quiet" => quiet = true,
            "--force" => force = true,
            "--workloads" => {
                workloads = Some(
                    value("--workloads")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--backends" => {
                backends = Some(
                    value("--backends")?
                        .split(',')
                        .map(|s| s.trim().parse::<Backend>())
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "--graphs" => {
                graphs = Some(
                    value("--graphs")?
                        .split(',')
                        .map(|s| s.trim().parse::<GraphBackend>())
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "--coresets" => {
                coresets = Some(
                    value("--coresets")?
                        .split(',')
                        .map(|s| s.trim().parse::<Coreset>())
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "--thread-list" => {
                let list: Vec<usize> = value("--thread-list")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| "invalid --thread-list (expected e.g. 1,4)".to_string())?;
                if list.is_empty() || list.contains(&0) {
                    return Err("--thread-list needs counts >= 1".to_string());
                }
                thread_list = Some(list);
            }
            "--warmup" => {
                warmup = value("--warmup")?
                    .parse()
                    .map_err(|_| "invalid --warmup".to_string())?
            }
            "--trials" => {
                trials = value("--trials")?
                    .parse()
                    .map_err(|_| "invalid --trials".to_string())?;
                if trials == 0 {
                    return Err("--trials must be at least 1".to_string());
                }
            }
            "--out" => out = Some(value("--out")?.clone()),
            "--baseline" => baseline = Some(value("--baseline")?.clone()),
            "--fail-on-regress" => {
                let pct: f64 = value("--fail-on-regress")?
                    .parse()
                    .map_err(|_| "invalid --fail-on-regress".to_string())?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--fail-on-regress must be a non-negative percentage".to_string());
                }
                fail_on_regress = Some(pct);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option '{other}'\n\n{USAGE}"))
            }
            bare => positional.push(bare.to_string()),
        }
    }
    Ok(Options {
        gen,
        gen_given,
        cfg,
        positional,
        solver,
        solvers,
        size,
        size_given,
        json,
        trace,
        progress,
        quiet,
        force,
        workloads,
        backends,
        graphs,
        coresets,
        thread_list,
        warmup,
        trials,
        out,
        baseline,
        fail_on_regress,
    })
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let registry = standard_registry();
    match command.as_str() {
        "list" => cmd_list(&registry),
        "run" => cmd_run(&registry, parse_options(&args[1..])?),
        "suite" => cmd_suite(&registry, parse_options(&args[1..])?),
        "bench" => cmd_bench(&registry, parse_options(&args[1..])?),
        "ablation" => cmd_ablation(&registry, parse_options(&args[1..])?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn cmd_list(registry: &Registry) -> Result<(), String> {
    let table = Table::new(&["name", "problem", "guarantee", "paper"]);
    for solver in registry.iter() {
        table.row(&[
            solver.name().to_string(),
            solver.problem().to_string(),
            solver.guarantee_label(),
            solver.paper_ref().to_string(),
        ]);
    }
    Ok(())
}

fn emit(runs: &[Run], json: Option<&str>, quiet: bool) -> Result<(), String> {
    if !quiet {
        let table = Table::new(&table_header());
        for run in runs {
            table.row(&table_row(run));
        }
    }
    if let Some(path) = json {
        let payload = runs_to_json(runs);
        if path == "-" {
            println!("{payload}");
        } else {
            std::fs::write(path, payload).map_err(|e| format!("writing {path}: {e}"))?;
            if !quiet {
                println!("\nwrote {} run record(s) to {path}", runs.len());
            }
        }
    }
    Ok(())
}

/// A rounds-level tracer installed for the duration of a subcommand, plus
/// the guard that keeps it ambient on this thread.
struct TraceSession {
    tracer: Arc<Tracer>,
    _guard: InstallGuard,
}

/// Installs a rounds-level tracer when `--trace` or `--progress` asked for
/// one; every solve in the subcommand then records its spans and round
/// events into it (instead of the ephemeral per-solve phase tracer).
fn start_trace(opts: &Options) -> Option<TraceSession> {
    if opts.trace.is_none() && !opts.progress {
        return None;
    }
    let mut tracer = Tracer::new(TraceDetail::Rounds);
    if opts.progress {
        tracer = tracer.with_progress();
    }
    let tracer = Arc::new(tracer);
    let guard = install(Arc::clone(&tracer));
    Some(TraceSession {
        tracer,
        _guard: guard,
    })
}

/// Writes the Chrome trace (plus the `<path>.canonical` sidecar) and prints
/// the per-phase summary table. The canonical sidecar carries no
/// timestamps, so it byte-compares across backends and thread counts —
/// that is what the CI determinism check diffs.
fn finish_trace(session: Option<TraceSession>, opts: &Options) -> Result<(), String> {
    let Some(session) = session else {
        return Ok(());
    };
    if !opts.quiet {
        let table = Table::new(&["phase", "count", "wall_ms", "share", "rounds", "work"]);
        for phase in session.tracer.phase_summary() {
            table.row(&[
                phase.name.clone(),
                phase.count.to_string(),
                format!("{:.3}", phase.wall_ms),
                format!("{:.1}%", 100.0 * phase.share),
                phase.rounds.to_string(),
                phase.element_ops.to_string(),
            ]);
        }
    }
    let Some(path) = &opts.trace else {
        return Ok(()); // --progress alone: stream only, nothing to write
    };
    write_artifact(path, &session.tracer.chrome_json(), opts.force, opts.quiet)?;
    let canonical = format!("{path}.canonical");
    write_artifact(
        &canonical,
        &session.tracer.canonical_json(),
        opts.force,
        opts.quiet,
    )
}

/// CLI-level solver-name aliases. The registry requires unique names, so
/// the objective-spelled variants live here: `kmedian-local` and
/// `kmeans-local` name the same swap-based local searches as the registry's
/// `kmedian-ls` / `kmeans-ls`.
fn resolve_solver_alias(name: &str) -> &str {
    match name {
        "kmedian-local" => "kmedian-ls",
        "kmeans-local" => "kmeans-ls",
        other => other,
    }
}

fn cmd_run(registry: &Registry, opts: Options) -> Result<(), String> {
    let solver = match (&opts.solver, opts.positional.as_slice()) {
        (Some(_), [extra, ..]) => {
            return Err(format!(
                "run got both --solver and a positional solver name '{extra}'; pass one"
            ))
        }
        (Some(name), []) => name.clone(),
        (None, [name]) => name.clone(),
        (None, []) => {
            return Err(format!(
                "run needs a solver name (positional or --solver); available: {}",
                registry.names().join(", ")
            ))
        }
        (None, extra) => {
            return Err(format!(
                "run takes one solver name, got {}: {}",
                extra.len(),
                extra.join(", ")
            ))
        }
    };
    let solver = resolve_solver_alias(&solver);
    let trace_session = start_trace(&opts);
    let run = run_solver(registry, solver, &opts.gen, &opts.cfg)?;
    run.validate()
        .map_err(|e| format!("solver '{solver}' produced a structurally invalid run: {e}"))?;
    emit(std::slice::from_ref(&run), opts.json.as_deref(), opts.quiet)?;
    finish_trace(trace_session, &opts)
}

/// The non-`run` subcommands take no bare arguments; a stray one is most
/// likely a typo'd flag value, so fail instead of silently ignoring it.
fn reject_positional(command: &str, opts: &Options) -> Result<(), String> {
    match opts.positional.first() {
        Some(extra) => Err(format!("{command} takes no positional argument '{extra}'")),
        None => Ok(()),
    }
}

fn cmd_suite(registry: &Registry, opts: Options) -> Result<(), String> {
    reject_positional("suite", &opts)?;
    let names: Vec<String> = match &opts.solvers {
        Some(list) => list.clone(),
        None => registry.names().iter().map(|s| s.to_string()).collect(),
    };
    // lp-rounding solves a full LP per instance; keep it out of the default
    // sweep above small sizes so `parfaclo suite` stays interactive. Never
    // drop it silently: announce the exclusion and how to override it.
    //
    // Instance dimensions: --gen's n/nf/clusters are honoured; --size (when
    // given explicitly) overrides the client/node count.
    let n = if opts.size_given {
        opts.size
    } else if opts.gen_given {
        opts.gen.n
    } else {
        opts.size
    };
    let nf = if opts.gen_given {
        opts.gen.nf
    } else {
        (n / 2).max(1)
    };
    let before = names.len();
    let names: Vec<String> = names
        .into_iter()
        .filter(|name| opts.solvers.is_some() || name != "lp-rounding" || n <= 32)
        .collect();
    if names.len() < before && !opts.quiet {
        println!(
            "note: lp-rounding excluded from the default sweep at n > 32 \
             (pass --solvers ...,lp-rounding to force it)"
        );
    }
    // The clustering / dominator solvers need O(n²) transient memory even on
    // the implicit backend (sorted distinct distance sets, n x n threshold
    // graphs), so at implicit-preset scales the default sweep keeps to the
    // facility-location family instead of aborting mid-suite on a multi-GB
    // allocation. Never dropped silently, and an explicit --solvers list
    // always wins.
    const CLUSTER_SWEEP_LIMIT: usize = 4096;
    let before = names.len();
    let names: Vec<String> = names
        .into_iter()
        .filter(|name| {
            opts.solvers.is_some()
                || n <= CLUSTER_SWEEP_LIMIT
                || registry
                    .get(name)
                    .is_some_and(|s| s.problem() == ProblemKind::FacilityLocation)
        })
        .collect();
    if names.len() < before && !opts.quiet {
        println!(
            "note: clustering/dominator solvers excluded from the default sweep at \
             n > {CLUSTER_SWEEP_LIMIT} — their probes need O(n²) transient memory \
             regardless of backend (pass --solvers ... to force them)"
        );
    }
    let workloads = ["uniform", "clustered", "grid", "line", "planted"];
    let trace_session = start_trace(&opts);
    let mut runs = Vec::new();
    for workload in workloads {
        let spec = GenSpec {
            workload: workload.to_string(),
            n,
            nf,
            clusters: opts.gen.clusters,
            seed: opts.gen.seed,
        };
        let mut cache = InstanceCache::new(&spec, opts.cfg.seed, opts.cfg.backend);
        for name in &names {
            runs.push(run_solver_cached(registry, name, &mut cache, &opts.cfg)?);
        }
    }
    if !opts.quiet {
        println!(
            "suite: {} solvers x {} workloads at n = {n}, nf = {nf}\n",
            names.len(),
            workloads.len(),
        );
    }
    emit(&runs, opts.json.as_deref(), opts.quiet)?;
    finish_trace(trace_session, &opts)
}

/// Writes an artifact file, refusing to clobber an existing one unless the
/// user passed `--force` (a silently overwritten baseline is a lost
/// measurement).
fn write_artifact(path: &str, payload: &str, force: bool, quiet: bool) -> Result<(), String> {
    if !force && std::path::Path::new(path).exists() {
        return Err(format!(
            "refusing to overwrite existing artifact '{path}' (pass --force to replace it)"
        ));
    }
    std::fs::write(path, payload).map_err(|e| format!("writing {path}: {e}"))?;
    if !quiet {
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_bench(registry: &Registry, opts: Options) -> Result<(), String> {
    reject_positional("bench", &opts)?;
    // A gate with nothing to gate against is a CI invocation bug, not a
    // no-op: fail loudly instead of exiting green forever.
    if opts.fail_on_regress.is_some() && opts.baseline.is_none() {
        return Err("--fail-on-regress needs --baseline <artifact> to compare against".to_string());
    }
    let mut matrix = BenchMatrix::default();
    if let Some(solvers) = &opts.solvers {
        matrix.solvers = solvers.clone();
    }
    if let Some(workloads) = &opts.workloads {
        matrix.workloads = workloads.clone();
    }
    if let Some(backends) = &opts.backends {
        matrix.backends = backends.clone();
    }
    if let Some(graphs) = &opts.graphs {
        matrix.graphs = graphs.clone();
    }
    if let Some(coresets) = &opts.coresets {
        matrix.coresets = coresets.clone();
    }
    // A bare --coreset would silently apply to every clustering cell while
    // staying invisible in the matrix header; the sweep axis is explicit.
    if opts.coresets.is_none() && opts.cfg.coreset != Coreset::Off {
        matrix.coresets = vec![opts.cfg.coreset];
    }
    // --thread-list defines the sweep; a bare --threads pins the sweep to
    // that single count. Passing both is ambiguous, not silently resolved.
    match (&opts.thread_list, opts.cfg.threads) {
        (Some(_), Some(_)) => {
            return Err(
                "--threads and --thread-list conflict for bench; use --thread-list \
                 to sweep several counts or --threads for a single one"
                    .to_string(),
            )
        }
        (Some(list), None) => matrix.threads = list.clone(),
        (None, Some(n)) => matrix.threads = vec![n],
        (None, None) => {}
    }
    // Same precedence as `suite`: --gen contributes its dimensions, an
    // explicit --size overrides the node count. A --gen seed would be
    // invisible to the comparator's cell keys, so it must come in as the
    // run seed (recorded in the artifact's config section) instead.
    if opts.gen_given {
        if opts.gen.seed.is_some() {
            return Err(
                "--gen seed=... is not supported by bench; pass the seed as --seed \
                 so it is recorded in the artifact's config section"
                    .to_string(),
            );
        }
        matrix.n = opts.gen.n;
        matrix.nf = opts.gen.nf;
    }
    if opts.size_given {
        matrix.n = opts.size;
        if !opts.gen_given {
            matrix.nf = (opts.size / 2).max(1);
        }
    }
    matrix.warmup = opts.warmup;
    matrix.trials = opts.trials;
    let trace_session = start_trace(&opts);

    if !opts.quiet {
        println!(
            "bench: {} solvers x {} workloads x {} backends x {} thread counts \
             (graph solvers x {} graphs, clustering solvers x {} coresets) = \
             {} cells, {} warmup + {} trials each, n = {}, nf = {}\n",
            matrix.solvers.len(),
            matrix.workloads.len(),
            matrix.backends.len(),
            matrix.threads.len(),
            matrix.graphs.len(),
            matrix.coresets.len(),
            matrix.cells(),
            matrix.warmup,
            matrix.trials,
            matrix.n,
            matrix.nf,
        );
    }
    let (artifact, runs) = run_matrix(registry, &matrix, &opts.cfg)?;
    if !opts.quiet {
        let table = Table::new(&[
            "solver",
            "workload",
            "backend",
            "graph",
            "coreset",
            "thr",
            "min_ms",
            "median_ms",
            "mean_ms",
            "stddev",
            "mem_bytes",
            "work",
        ]);
        for rec in &artifact.records {
            table.row(&[
                rec.solver.clone(),
                rec.workload.clone(),
                rec.backend.as_str().to_string(),
                rec.graph.as_str().to_string(),
                rec.coreset.as_string(),
                rec.threads.to_string(),
                format!("{:.3}", rec.stats.min_ms),
                format!("{:.3}", rec.stats.median_ms),
                format!("{:.3}", rec.stats.mean_ms),
                format!("{:.3}", rec.stats.stddev_ms),
                rec.memory_bytes.to_string(),
                rec.work.element_ops.to_string(),
            ]);
        }
        println!(
            "\nall {} cells byte-deterministic across {} trials ({})",
            artifact.records.len(),
            matrix.trials,
            artifact.fingerprint.describe(),
        );
    }
    if let Some(path) = &opts.out {
        write_artifact(path, &artifact.to_json(), opts.force, opts.quiet)?;
    }
    // quiet=true: the bench table above already summarised the cells; emit
    // only handles the --json output here.
    emit(&runs, opts.json.as_deref(), true)?;
    finish_trace(trace_session, &opts)?;
    if let Some(path) = &opts.baseline {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let base = BenchArtifact::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
        let report = compare(&base, &artifact)?;
        // Display verdicts use the gating threshold when given, else a
        // generous default that only flags clear shifts on shared hardware.
        let display_pct = opts.fail_on_regress.unwrap_or(100.0);
        if !opts.quiet {
            println!(
                "\ncomparison vs {path}\n  baseline: {}\n  current:  {}\n",
                base.fingerprint.describe(),
                artifact.fingerprint.describe(),
            );
            let table = Table::new(&["cell", "base_ms", "cur_ms", "ratio", "verdict"]);
            for row in &report.rows {
                table.row(&[
                    row.key.clone(),
                    format!("{:.3}", row.baseline_ms),
                    format!("{:.3}", row.current_ms),
                    format!("{:.3}", row.ratio()),
                    row.verdict(display_pct).to_string(),
                ]);
            }
            // Name the culprit phase for each regressed cell (both sides
            // must carry per-phase medians for the join to be non-empty).
            for row in &report.rows {
                if row.verdict(display_pct) == "REGRESSED" {
                    if let Some((phase, ratio)) = row.worst_phase(display_pct) {
                        println!(
                            "  {}: worst phase '{phase}' ({ratio:.2}x baseline)",
                            row.key
                        );
                    }
                }
            }
            for key in &report.missing {
                println!("missing from current run (in baseline only): {key}");
            }
            for key in &report.added {
                println!("new cell (not in baseline): {key}");
            }
            println!(
                "\ngeomean ratio {:.3} over {} joined cell(s); {} regression(s) past {}%",
                report.geomean_ratio(),
                report.rows.len(),
                report.regressions(display_pct).len(),
                display_pct,
            );
        }
        if let Some(pct) = opts.fail_on_regress {
            let regressions = report.regressions(pct);
            if !regressions.is_empty() {
                let worst = regressions
                    .iter()
                    .map(|r| r.ratio())
                    .fold(f64::NEG_INFINITY, f64::max);
                return Err(format!(
                    "{} cell(s) regressed more than {pct}% vs {path} (worst {:.2}x): {}",
                    regressions.len(),
                    worst,
                    regressions
                        .iter()
                        .map(|r| r.key.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
    }
    Ok(())
}

fn cmd_ablation(registry: &Registry, opts: Options) -> Result<(), String> {
    reject_positional("ablation", &opts)?;
    let trace_session = start_trace(&opts);
    let mut runs = Vec::new();
    // One generated instance serves the whole grid (the knobs and ε vary,
    // the workload and seed do not).
    let mut cache = InstanceCache::new(&opts.gen, opts.cfg.seed, opts.cfg.backend);
    // Knob grid: preprocessing and subselection on/off.
    for &preprocess in &[true, false] {
        for &subselection in &[true, false] {
            let mut cfg = opts.cfg.clone();
            cfg.preprocess = preprocess;
            cfg.subselection = subselection;
            runs.push(run_solver_cached(registry, "greedy", &mut cache, &cfg)?);
        }
    }
    // Epsilon sweep with default knobs.
    for &eps in &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let mut cfg = opts.cfg.clone();
        cfg.epsilon = eps;
        runs.push(run_solver_cached(registry, "greedy", &mut cache, &cfg)?);
        runs.push(run_solver_cached(
            registry,
            "primal-dual",
            &mut cache,
            &cfg,
        )?);
    }
    if !opts.quiet {
        println!("ablation: greedy knob grid (4 combos) + eps sweep (6 values x 2 solvers)\n");
    }
    emit(&runs, opts.json.as_deref(), opts.quiet)?;
    finish_trace(trace_session, &opts)
}
