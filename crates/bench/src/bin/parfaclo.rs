//! The unified `parfaclo` runner — one binary driving every solver in the
//! workspace through the registry, replacing the ten ad-hoc `exp_e*`
//! experiment binaries. Every subcommand emits the same JSON run schema
//! ([`parfaclo_api::RUN_SCHEMA`]), so results are comparable across solvers
//! and across invocations.
//!
//! ```text
//! parfaclo list
//! parfaclo run --solver greedy --gen uniform:n=2000,k=40 --eps 0.1 --seed 7 --json out.json
//! parfaclo suite --solvers greedy,primal-dual,jms-greedy --size 64 --json suite.json
//! parfaclo ablation --gen uniform:n=128,nf=64 --json ablation.json
//! ```

use parfaclo_api::{ProblemKind, Registry, Run, RunConfig};
use parfaclo_bench::runner::{
    measure_speedup, run_solver, run_solver_cached, runs_to_json, speedup_to_json, table_header,
    table_row, GenSpec, InstanceCache, SpeedupRecord,
};
use parfaclo_bench::{reset_sigpipe, standard_registry, Table};
use parfaclo_matrixops::ExecPolicy;
use std::process::ExitCode;

const USAGE: &str = "\
parfaclo — unified runner for the Blelloch-Tangwongsan SPAA'10 reproduction

USAGE:
    parfaclo list
        List every registered solver (name, problem, guarantee, paper ref).

    parfaclo run --solver <name> [options]
        Run one solver on a generated instance and print/emit its Run record.

    parfaclo suite [--solvers a,b,c] [options]
        Run a set of solvers (default: all) over the standard workload
        suite. Always sweeps all five workloads; --gen contributes only
        its dimensions (n, nf, c) and seed, not its workload name.
        With --emit-bench <path>, every solver/workload pair is run at
        threads=1 and threads=N (N from --threads, default: all cores)
        and a parfaclo.bench.v1 speedup artifact is written to <path>;
        the two runs are also checked for byte-identical canonical JSON.

    parfaclo ablation [options]
        Run the greedy algorithm under every preprocess/subselection
        combination and an epsilon sweep (the old E10 experiment).

OPTIONS:
    --gen <spec>        Generator spec, e.g. uniform:n=2000,k=40
                        (workloads: uniform|clustered|grid|line|planted,
                        plus the implicit-scale presets large (n=100000,
                        nf=100) and xlarge (n=1000000, nf=50);
                        keys: n, nf|k, c, seed)          [default: uniform:n=200]
    --backend <b>       Instance distance backend: dense materialises the
                        |C| x |F| matrix (O(m) memory); implicit stores only
                        the points and computes distances on demand
                        (O(|C|+|F|) memory — required for the large presets,
                        which pair with the facility-location solvers; the
                        clustering/dominator probes still need O(n²)
                        transients at any backend).
                        Results are byte-identical either way [default: dense]
    --eps <f>           Slack parameter epsilon > 0      [default: 0.1]
    --seed <n>          RNG seed                         [default: 0]
    --k <n>             Centers for clustering solvers   [default: 8]
    --threshold <f>     Dominator-set distance threshold [default: median]
    --policy <p>        seq | par | tuned:<grain>        [default: par]
    --threads <n>       Worker threads for the run (pool size);
                        results are identical at any count   [default: ambient]
    --no-preprocess     Disable round-bounding preprocessing (ablation)
    --no-subselection   Disable greedy subselection vote (ablation)
    --size <n>          Suite node count; overrides --gen's n,
                        other --gen keys are kept        [default: 64]
    --solvers <a,b,c>   Suite solver subset              [default: all]
    --json <path>       Also write the run records as a JSON array
    --emit-bench <path> (suite only) Write the threads=1 vs threads=N
                        speedup artifact (BENCH_speedup.json)
    --quiet             Suppress the human-readable table
";

fn main() -> ExitCode {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Parsed command-line options shared by the subcommands.
struct Options {
    gen: GenSpec,
    /// Whether --gen was passed explicitly (suite honours its dimensions).
    gen_given: bool,
    cfg: RunConfig,
    solver: Option<String>,
    solvers: Option<Vec<String>>,
    size: usize,
    /// Whether --size was passed explicitly (overrides --gen's n in suite).
    size_given: bool,
    json: Option<String>,
    emit_bench: Option<String>,
    quiet: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut gen = GenSpec::parse("uniform:n=200")?;
    let mut gen_given = false;
    let mut cfg = RunConfig::new(0.1).with_k(8);
    let mut solver = None;
    let mut solvers = None;
    let mut size = 64usize;
    let mut size_given = false;
    let mut json = None;
    let mut emit_bench = None;
    let mut quiet = false;

    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--gen" => {
                gen = GenSpec::parse(value("--gen")?)?;
                gen_given = true;
            }
            "--eps" => {
                let eps: f64 = value("--eps")?
                    .parse()
                    .map_err(|_| "invalid --eps".to_string())?;
                if eps <= 0.0 {
                    return Err("--eps must be positive".to_string());
                }
                cfg.epsilon = eps;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--k" => {
                let k: usize = value("--k")?
                    .parse()
                    .map_err(|_| "invalid --k".to_string())?;
                if k == 0 {
                    return Err("--k must be at least 1".to_string());
                }
                cfg.k = k;
            }
            "--threshold" => {
                cfg.threshold = Some(
                    value("--threshold")?
                        .parse()
                        .map_err(|_| "invalid --threshold".to_string())?,
                )
            }
            "--policy" => {
                cfg.policy = match value("--policy")?.as_str() {
                    "seq" | "sequential" => ExecPolicy::Sequential,
                    "par" | "parallel" => ExecPolicy::Parallel,
                    other => match other.strip_prefix("tuned:").map(str::parse::<usize>) {
                        Some(Ok(grain)) if grain >= 1 => ExecPolicy::Tuned { grain },
                        _ => {
                            return Err(format!("unknown policy '{other}' (seq|par|tuned:<grain>)"))
                        }
                    },
                }
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads".to_string())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                cfg.threads = Some(threads);
            }
            "--backend" => cfg.backend = value("--backend")?.parse()?,
            "--no-preprocess" => cfg.preprocess = false,
            "--no-subselection" => cfg.subselection = false,
            "--solver" => solver = Some(value("--solver")?.clone()),
            "--solvers" => {
                solvers = Some(
                    value("--solvers")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--size" => {
                size = value("--size")?
                    .parse()
                    .map_err(|_| "invalid --size".to_string())?;
                if size == 0 {
                    return Err("--size must be at least 1".to_string());
                }
                size_given = true;
            }
            "--json" => json = Some(value("--json")?.clone()),
            "--emit-bench" => emit_bench = Some(value("--emit-bench")?.clone()),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    Ok(Options {
        gen,
        gen_given,
        cfg,
        solver,
        solvers,
        size,
        size_given,
        json,
        emit_bench,
        quiet,
    })
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        println!("{USAGE}");
        return Ok(());
    };
    let registry = standard_registry();
    match command.as_str() {
        "list" => cmd_list(&registry),
        "run" => cmd_run(&registry, parse_options(&args[1..])?),
        "suite" => cmd_suite(&registry, parse_options(&args[1..])?),
        "ablation" => cmd_ablation(&registry, parse_options(&args[1..])?),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    }
}

fn cmd_list(registry: &Registry) -> Result<(), String> {
    let table = Table::new(&["name", "problem", "guarantee", "paper"]);
    for solver in registry.iter() {
        table.row(&[
            solver.name().to_string(),
            solver.problem().to_string(),
            solver.guarantee_label(),
            solver.paper_ref().to_string(),
        ]);
    }
    Ok(())
}

fn emit(runs: &[Run], json: Option<&str>, quiet: bool) -> Result<(), String> {
    if !quiet {
        let table = Table::new(&table_header());
        for run in runs {
            table.row(&table_row(run));
        }
    }
    if let Some(path) = json {
        let payload = runs_to_json(runs);
        if path == "-" {
            println!("{payload}");
        } else {
            std::fs::write(path, payload).map_err(|e| format!("writing {path}: {e}"))?;
            if !quiet {
                println!("\nwrote {} run record(s) to {path}", runs.len());
            }
        }
    }
    Ok(())
}

fn cmd_run(registry: &Registry, opts: Options) -> Result<(), String> {
    let solver = opts.solver.as_deref().ok_or_else(|| {
        format!(
            "run needs --solver <name>; available: {}",
            registry.names().join(", ")
        )
    })?;
    let run = run_solver(registry, solver, &opts.gen, &opts.cfg)?;
    run.validate()
        .map_err(|e| format!("solver '{solver}' produced a structurally invalid run: {e}"))?;
    emit(std::slice::from_ref(&run), opts.json.as_deref(), opts.quiet)
}

fn cmd_suite(registry: &Registry, opts: Options) -> Result<(), String> {
    let names: Vec<String> = match &opts.solvers {
        Some(list) => list.clone(),
        None => registry.names().iter().map(|s| s.to_string()).collect(),
    };
    // lp-rounding solves a full LP per instance; keep it out of the default
    // sweep above small sizes so `parfaclo suite` stays interactive. Never
    // drop it silently: announce the exclusion and how to override it.
    //
    // Instance dimensions: --gen's n/nf/clusters are honoured; --size (when
    // given explicitly) overrides the client/node count.
    let n = if opts.size_given {
        opts.size
    } else if opts.gen_given {
        opts.gen.n
    } else {
        opts.size
    };
    let nf = if opts.gen_given {
        opts.gen.nf
    } else {
        (n / 2).max(1)
    };
    let before = names.len();
    let names: Vec<String> = names
        .into_iter()
        .filter(|name| opts.solvers.is_some() || name != "lp-rounding" || n <= 32)
        .collect();
    if names.len() < before && !opts.quiet {
        println!(
            "note: lp-rounding excluded from the default sweep at n > 32 \
             (pass --solvers ...,lp-rounding to force it)"
        );
    }
    // The clustering / dominator solvers need O(n²) transient memory even on
    // the implicit backend (sorted distinct distance sets, n x n threshold
    // graphs), so at implicit-preset scales the default sweep keeps to the
    // facility-location family instead of aborting mid-suite on a multi-GB
    // allocation. Never dropped silently, and an explicit --solvers list
    // always wins.
    const CLUSTER_SWEEP_LIMIT: usize = 4096;
    let before = names.len();
    let names: Vec<String> = names
        .into_iter()
        .filter(|name| {
            opts.solvers.is_some()
                || n <= CLUSTER_SWEEP_LIMIT
                || registry
                    .get(name)
                    .is_some_and(|s| s.problem() == ProblemKind::FacilityLocation)
        })
        .collect();
    if names.len() < before && !opts.quiet {
        println!(
            "note: clustering/dominator solvers excluded from the default sweep at \
             n > {CLUSTER_SWEEP_LIMIT} — their probes need O(n²) transient memory \
             regardless of backend (pass --solvers ... to force them)"
        );
    }
    let workloads = ["uniform", "clustered", "grid", "line", "planted"];
    let bench_threads = opts
        .cfg
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()));
    let mut runs = Vec::new();
    let mut records: Vec<SpeedupRecord> = Vec::new();
    for workload in workloads {
        let spec = GenSpec {
            workload: workload.to_string(),
            n,
            nf,
            clusters: opts.gen.clusters,
            seed: opts.gen.seed,
        };
        let mut cache = InstanceCache::new(&spec, opts.cfg.seed, opts.cfg.backend);
        for name in &names {
            if opts.emit_bench.is_some() {
                let (run, record) =
                    measure_speedup(registry, name, &spec, &mut cache, &opts.cfg, bench_threads)?;
                runs.push(run);
                records.push(record);
            } else {
                runs.push(run_solver_cached(registry, name, &mut cache, &opts.cfg)?);
            }
        }
    }
    if !opts.quiet {
        println!(
            "suite: {} solvers x {} workloads at n = {n}, nf = {nf}\n",
            names.len(),
            workloads.len(),
        );
    }
    if let Some(path) = &opts.emit_bench {
        if let Some(bad) = records.iter().find(|r| !r.deterministic) {
            return Err(format!(
                "solver '{}' on workload '{}' produced different results at \
                 threads=1 and threads={} — determinism contract violated",
                bad.solver, bad.workload, bad.threads
            ));
        }
        std::fs::write(path, speedup_to_json(&records))
            .map_err(|e| format!("writing {path}: {e}"))?;
        if !opts.quiet {
            let mean_speedup = records.iter().map(SpeedupRecord::speedup).sum::<f64>()
                / records.len().max(1) as f64;
            println!(
                "wrote {} speedup record(s) to {path} (threads = {bench_threads}, \
                 mean self-relative speedup {mean_speedup:.2}x, all byte-deterministic)\n",
                records.len(),
            );
        }
    }
    emit(&runs, opts.json.as_deref(), opts.quiet)
}

fn cmd_ablation(registry: &Registry, opts: Options) -> Result<(), String> {
    let mut runs = Vec::new();
    // One generated instance serves the whole grid (the knobs and ε vary,
    // the workload and seed do not).
    let mut cache = InstanceCache::new(&opts.gen, opts.cfg.seed, opts.cfg.backend);
    // Knob grid: preprocessing and subselection on/off.
    for &preprocess in &[true, false] {
        for &subselection in &[true, false] {
            let mut cfg = opts.cfg.clone();
            cfg.preprocess = preprocess;
            cfg.subselection = subselection;
            runs.push(run_solver_cached(registry, "greedy", &mut cache, &cfg)?);
        }
    }
    // Epsilon sweep with default knobs.
    for &eps in &[0.01, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let mut cfg = opts.cfg.clone();
        cfg.epsilon = eps;
        runs.push(run_solver_cached(registry, "greedy", &mut cache, &cfg)?);
        runs.push(run_solver_cached(
            registry,
            "primal-dual",
            &mut cache,
            &cfg,
        )?);
    }
    if !opts.quiet {
        println!("ablation: greedy knob grid (4 combos) + eps sweep (6 values x 2 solvers)\n");
    }
    emit(&runs, opts.json.as_deref(), opts.quiet)
}
