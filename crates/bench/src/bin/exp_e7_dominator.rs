//! E7 — Lemma 3.1: `MaxDom(G)` and `MaxUDom(H)` run in `O(log n)` Luby rounds in
//! expectation, doing `O(n²)` (resp. `O(|U||V|)`) work per round, without ever
//! materialising `G²` or `H'`.
//!
//! The table sweeps graph sizes and edge densities and reports the measured number of
//! Luby rounds (averaged over seeds), `log₂ n` for reference, the dominator-set size,
//! and measured work divided by `n² log n`.

use parfaclo_bench::{f1, f3, Table};
use parfaclo_dominator::{max_dom, max_u_dom, BipartiteGraph, DenseGraph};
use parfaclo_matrixops::{CostMeter, ExecPolicy};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_graph(n: usize, p: f64, seed: u64) -> DenseGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = DenseGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(a, b);
            }
        }
    }
    g
}

fn random_bipartite(nu: usize, nv: usize, p: f64, seed: u64) -> BipartiteGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = BipartiteGraph::new(nu, nv);
    for u in 0..nu {
        for v in 0..nv {
            if rng.gen_bool(p) {
                h.add_edge(u, v);
            }
        }
    }
    h
}

fn main() {
    println!("E7: dominator-set substrates (Lemma 3.1: O(log n) rounds, O(n^2 log n) work)\n");
    println!("MaxDom(G) on random G(n, p):");
    let t1 = Table::new(&["n", "p", "avg_rounds", "log2_n", "set_size", "work/(n^2*logn)"]);
    for &n in &[64usize, 128, 256, 512] {
        for &p in &[0.01, 0.05] {
            let mut rounds = 0usize;
            let mut size = 0usize;
            let mut work = 0u64;
            let trials = 5u64;
            for seed in 0..trials {
                let g = random_graph(n, p, seed);
                let meter = CostMeter::new();
                let r = max_dom(&g, seed, ExecPolicy::Parallel, &meter);
                rounds += r.rounds;
                size += r.selected.len();
                work += meter.report().element_ops;
            }
            let denom = (n * n) as f64 * (n as f64).ln();
            t1.row(&[
                n.to_string(),
                format!("{p}"),
                f1(rounds as f64 / trials as f64),
                f1((n as f64).log2()),
                f1(size as f64 / trials as f64),
                f3(work as f64 / trials as f64 / denom),
            ]);
        }
    }

    println!("\nMaxUDom(H) on random bipartite H(n, n/2, p):");
    let t2 = Table::new(&["n_u", "n_v", "p", "avg_rounds", "log2_n", "set_size"]);
    for &nu in &[64usize, 128, 256, 512] {
        let nv = nu / 2;
        for &p in &[0.02, 0.1] {
            let mut rounds = 0usize;
            let mut size = 0usize;
            let trials = 5u64;
            for seed in 0..trials {
                let h = random_bipartite(nu, nv, p, 100 + seed);
                let meter = CostMeter::new();
                let r = max_u_dom(&h, seed, ExecPolicy::Parallel, &meter);
                rounds += r.rounds;
                size += r.selected.len();
            }
            t2.row(&[
                nu.to_string(),
                nv.to_string(),
                format!("{p}"),
                f1(rounds as f64 / trials as f64),
                f1((nu as f64).log2()),
                f1(size as f64 / trials as f64),
            ]);
        }
    }
    println!("\navg_rounds should track log2_n (up to a small constant), not n.");
}
